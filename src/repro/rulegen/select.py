"""Rule selection: Algorithms 1 (Greedy) and 2 (Greedy-Biased) of the paper.

Given candidate rules R over data D with coverage Cov(Ri, D) and confidence
conf(Ri), select up to q rules maximizing covered-title confidence mass.
Algorithm 1 greedily picks argmax |Cov(Ri, D) - Cov(S, D)| * conf(Ri) and
stops when q rules are chosen or no rule adds coverage. Algorithm 2 splits
R at the confidence threshold alpha and exhausts the high-confidence pool
before touching the low-confidence one (analysts prefer high-confidence
rules even at some coverage cost).
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.rule import SequenceRule

# rule_id -> set of covered item/title indices.
CoverageMap = Dict[str, Set[int]]

# (confidence, order, coverage set, payload): the id-free form of a
# candidate rule used by the sharded generator, which selects *before*
# materializing SequenceRule objects. ``order`` is the candidate's creation
# index within its pool and stands in for the rule-id tiebreak: freshly
# generated rule ids ("seq-000123") are zero-padded, so their lexicographic
# order in greedy_select is exactly creation order. The coverage set holds
# row ids, or — with a ``weights`` argument — deduplicated representative
# ids whose weights count the underlying rows (see ``rulegen.corpus``).
Entry = Tuple[float, int, Set[int], Any]


def greedy_select(
    rules: Sequence[SequenceRule],
    coverage: CoverageMap,
    q: int,
) -> List[SequenceRule]:
    """Algorithm 1: Greedy(R, D, q).

    Deterministic: ties on the (new coverage x confidence) objective break
    by higher confidence, then rule id.
    """
    if q < 0:
        raise ValueError(f"q must be non-negative, got {q}")
    selected: List[SequenceRule] = []
    covered: Set[int] = set()
    remaining = list(rules)
    while remaining and len(selected) < q:
        best_rule = None
        best_key: Tuple[float, float, str] = (-1.0, -1.0, "")
        for rule in remaining:
            new_coverage = len(coverage.get(rule.rule_id, set()) - covered)
            key = (new_coverage * rule.confidence, rule.confidence, rule.rule_id)
            if key > best_key:
                best_key = key
                best_rule = rule
        gained = coverage.get(best_rule.rule_id, set()) - covered
        if not gained:
            return selected
        selected.append(best_rule)
        covered |= gained
        remaining.remove(best_rule)
    return selected


def greedy_biased_select(
    rules: Sequence[SequenceRule],
    coverage: CoverageMap,
    q: int,
    alpha: float = 0.7,
) -> Tuple[List[SequenceRule], List[SequenceRule]]:
    """Algorithm 2: Greedy-Biased(R, D, q).

    Returns (high_confidence_selected, low_confidence_selected); the low
    pool is only consulted for titles the high pool left uncovered, and only
    up to the remaining quota.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    high = [rule for rule in rules if rule.confidence >= alpha]
    low = [rule for rule in rules if rule.confidence < alpha]
    selected_high = greedy_select(high, coverage, q)
    selected_low: List[SequenceRule] = []
    if len(selected_high) < q:
        covered_by_high: Set[int] = set()
        for rule in selected_high:
            covered_by_high |= coverage.get(rule.rule_id, set())
        residual_coverage: CoverageMap = {
            rule.rule_id: coverage.get(rule.rule_id, set()) - covered_by_high
            for rule in low
        }
        selected_low = greedy_select(low, residual_coverage, q - len(selected_high))
    return selected_high, selected_low


def greedy_select_entries(
    entries: Sequence[Entry],
    q: int,
    weights: Optional[Sequence[int]] = None,
    totals: Optional[Dict[int, int]] = None,
    covered: Optional[Set[int]] = None,
) -> List[Entry]:
    """Algorithm 1 over id-free :data:`Entry` tuples.

    Step-for-step the same procedure as :func:`greedy_select` — same
    objective, same ``(score, confidence, order)`` tiebreak (``order``
    replaces ``rule_id``; see :data:`Entry`), same stop-on-zero-gain — so
    selecting entries then materializing rules yields exactly the rules
    :func:`greedy_select` would have picked.

    With ``weights``, coverage sets hold representative ids and the
    objective counts ``sum(weights[id] for id in new_ids)`` instead of set
    cardinality. Because each rep's rows are covered all-or-nothing, the
    weighted rep objective equals the row objective exactly, so the same
    entries are selected in the same order — without ever materializing
    the (much larger) row sets. ``totals`` may supply each entry's total
    coverage weight keyed by order index (callers that mined the entries
    already know it as the support count); otherwise it is computed once.

    ``covered`` pre-seeds the covered set (and is consumed — mutated in
    place): selecting against pre-covered ids is identical to selecting
    over per-entry residual coverage sets, without materializing them.
    """
    if q < 0:
        raise ValueError(f"q must be non-negative, got {q}")
    selected: List[Entry] = []
    if q == 0 or not entries:
        return selected
    if covered is None:
        covered = set()
    if weights is not None and totals is None:
        # Per-entry total weight, keyed by the (pool-unique) order index;
        # entries disjoint from the covered set short-circuit to it.
        totals = {
            entry[1]: sum(weights[i] for i in entry[2]) for entry in entries
        }
    # Lazy (CELF-style) greedy: an entry's marginal coverage only shrinks
    # as the covered set grows, so a key computed in an earlier round is
    # an upper bound on the current one. Keep entries in a max-heap under
    # their last-computed key; when the popped top was computed against
    # the *current* covered set it beats every other upper bound and is
    # exactly the argmax the full scan would have found (the
    # ``(value, confidence, order)`` tiebreak rides along in the key).
    by_order = {entry[1]: entry for entry in entries}
    # With a pre-seeded covered set the full-coverage keys are stale
    # upper bounds, not round-0 values — tag them as such so every entry
    # is re-scored against ``covered`` before it can be selected.
    initial_round = -1 if covered else 0
    heap: List[Tuple[float, float, int, int]] = []
    for entry in entries:
        confidence, order, coverage_ids = entry[0], entry[1], entry[2]
        base = totals[order] if weights is not None else len(coverage_ids)
        heap.append((-(base * confidence), -confidence, -order, initial_round))
    heapq.heapify(heap)
    rounds = 0
    while heap and len(selected) < q:
        neg_value, neg_confidence, neg_order, computed_at = heapq.heappop(heap)
        entry = by_order[-neg_order]
        if computed_at != rounds:
            confidence, order, coverage_ids = entry[0], entry[1], entry[2]
            if weights is None:
                new_coverage = len(coverage_ids - covered)
            elif covered.isdisjoint(coverage_ids):
                new_coverage = totals[order]
            else:
                new_coverage = sum(
                    weights[i] for i in coverage_ids if i not in covered
                )
            heapq.heappush(
                heap,
                (-(new_coverage * confidence), neg_confidence, neg_order,
                 rounds),
            )
            continue
        gained = entry[2] - covered
        if not gained:
            return selected
        selected.append(entry)
        covered |= gained
        rounds += 1
    return selected


def greedy_biased_select_entries(
    entries: Sequence[Entry],
    q: int,
    alpha: float = 0.7,
    weights: Optional[Sequence[int]] = None,
    totals: Optional[Dict[int, int]] = None,
) -> Tuple[List[Entry], List[Entry]]:
    """Algorithm 2 over id-free :data:`Entry` tuples.

    Mirrors :func:`greedy_biased_select`: exhaust the high-confidence pool,
    then offer the low pool only the residual coverage and remaining
    quota — by seeding the low-pool selection with the high pool's covered
    ids, which is identical to materializing per-entry residual sets.
    ``weights`` switches both pools to the weighted-rep objective and
    ``totals`` (the full-coverage weights, valid for both pools) skips the
    round-one summing; see :func:`greedy_select_entries`.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    high = [entry for entry in entries if entry[0] >= alpha]
    low = [entry for entry in entries if entry[0] < alpha]
    selected_high = greedy_select_entries(high, q, weights, totals)
    selected_low: List[Entry] = []
    if len(selected_high) < q:
        covered_by_high: Set[int] = set()
        for entry in selected_high:
            covered_by_high |= entry[2]
        selected_low = greedy_select_entries(
            low, q - len(selected_high), weights, totals,
            covered=covered_by_high,
        )
    return selected_high, selected_low
