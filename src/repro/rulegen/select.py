"""Rule selection: Algorithms 1 (Greedy) and 2 (Greedy-Biased) of the paper.

Given candidate rules R over data D with coverage Cov(Ri, D) and confidence
conf(Ri), select up to q rules maximizing covered-title confidence mass.
Algorithm 1 greedily picks argmax |Cov(Ri, D) - Cov(S, D)| * conf(Ri) and
stops when q rules are chosen or no rule adds coverage. Algorithm 2 splits
R at the confidence threshold alpha and exhausts the high-confidence pool
before touching the low-confidence one (analysts prefer high-confidence
rules even at some coverage cost).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.core.rule import SequenceRule

# rule_id -> set of covered item/title indices.
CoverageMap = Dict[str, Set[int]]


def greedy_select(
    rules: Sequence[SequenceRule],
    coverage: CoverageMap,
    q: int,
) -> List[SequenceRule]:
    """Algorithm 1: Greedy(R, D, q).

    Deterministic: ties on the (new coverage x confidence) objective break
    by higher confidence, then rule id.
    """
    if q < 0:
        raise ValueError(f"q must be non-negative, got {q}")
    selected: List[SequenceRule] = []
    covered: Set[int] = set()
    remaining = list(rules)
    while remaining and len(selected) < q:
        best_rule = None
        best_key: Tuple[float, float, str] = (-1.0, -1.0, "")
        for rule in remaining:
            new_coverage = len(coverage.get(rule.rule_id, set()) - covered)
            key = (new_coverage * rule.confidence, rule.confidence, rule.rule_id)
            if key > best_key:
                best_key = key
                best_rule = rule
        gained = coverage.get(best_rule.rule_id, set()) - covered
        if not gained:
            return selected
        selected.append(best_rule)
        covered |= gained
        remaining.remove(best_rule)
    return selected


def greedy_biased_select(
    rules: Sequence[SequenceRule],
    coverage: CoverageMap,
    q: int,
    alpha: float = 0.7,
) -> Tuple[List[SequenceRule], List[SequenceRule]]:
    """Algorithm 2: Greedy-Biased(R, D, q).

    Returns (high_confidence_selected, low_confidence_selected); the low
    pool is only consulted for titles the high pool left uncovered, and only
    up to the remaining quota.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    high = [rule for rule in rules if rule.confidence >= alpha]
    low = [rule for rule in rules if rule.confidence < alpha]
    selected_high = greedy_select(high, coverage, q)
    selected_low: List[SequenceRule] = []
    if len(selected_high) < q:
        covered_by_high: Set[int] = set()
        for rule in selected_high:
            covered_by_high |= coverage.get(rule.rule_id, set())
        residual_coverage: CoverageMap = {
            rule.rule_id: coverage.get(rule.rule_id, set()) - covered_by_high
            for rule in low
        }
        selected_low = greedy_select(low, residual_coverage, q - len(selected_high))
    return selected_high, selected_low
