"""AprioriAll frequent token-sequence mining (Agrawal & Srikant, ICDE '95).

Section 5.2: "we apply the AprioriAll algorithm ... to find all frequent
token sequences in D, where a token sequence s is frequent if its support
(i.e., the percentage of titles in D that contain s) exceeds or is equal to
a minimum support threshold", with containment meaning in-order but not
necessarily contiguous appearance.
"""

from __future__ import annotations

from collections import defaultdict
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.utils.text import contains_word_sequence

Sequence_ = Tuple[str, ...]


def _contains(title_tokens: Sequence[str], candidate: Sequence_) -> bool:
    return contains_word_sequence(title_tokens, candidate)


def exact_min_count(min_support: float, n_titles: int, factor: float = 1.0) -> int:
    """``ceil(min_support * factor * n_titles)`` in exact arithmetic, min 1.

    ``min_support`` is interpreted as the decimal literal it was written as
    (``Fraction(str(...))``), not as the binary float it is stored as:
    ``0.1 * 10`` titles is exactly 1 title, never the float artefact
    ``1.0000000000000002`` whose ceiling silently demands a second title.
    ``factor`` (the sharded miner's lowered local threshold) goes through
    the same exact path so shard thresholds can never round past the
    global one.
    """
    if not 0.0 < min_support <= 1.0:
        raise ValueError(f"min_support must be in (0, 1], got {min_support}")
    if not 0.0 < factor <= 1.0:
        raise ValueError(f"factor must be in (0, 1], got {factor}")
    if n_titles < 0:
        raise ValueError(f"n_titles must be non-negative, got {n_titles}")
    threshold = Fraction(str(min_support))
    if factor != 1.0:
        threshold *= Fraction(str(factor))
    return max(1, -(-(threshold.numerator * n_titles) // threshold.denominator))


def build_postings(
    token_lists: Sequence[Sequence[str]],
) -> Dict[str, Set[int]]:
    """Inverted index: token -> title row ids containing it."""
    postings: Dict[str, Set[int]] = defaultdict(set)
    for row, tokens in enumerate(token_lists):
        for token in tokens:
            postings[token].add(row)
    return postings


def mine_frequent_sequences(
    token_lists: Sequence[Sequence[str]],
    min_support: float,
    max_length: int = 4,
    index: Optional[object] = None,
) -> Dict[Sequence_, int]:
    """All frequent sequences up to ``max_length``, mapped to their counts.

    ``min_support`` is a fraction of ``len(token_lists)``. Level-wise
    candidate generation with Apriori pruning; support counting is
    accelerated by a token -> title inverted index (a candidate can only be
    contained in titles containing all of its tokens).

    ``index`` is an optional prebuilt :class:`repro.rulegen.corpus.CorpusIndex`
    (or anything with a ``row_postings`` mapping) over the *same*
    ``token_lists``; passing one skips the per-call postings build so
    repeated mining over one corpus (quota retries, shard recounts) reuses
    the inverted index.
    """
    if not 0.0 < min_support <= 1.0:
        raise ValueError(f"min_support must be in (0, 1], got {min_support}")
    if max_length < 1:
        raise ValueError(f"max_length must be >= 1, got {max_length}")
    n_titles = len(token_lists)
    if n_titles == 0:
        return {}
    min_count = exact_min_count(min_support, n_titles)

    if index is not None:
        postings = index.row_postings
        if index.n_rows != n_titles:
            raise ValueError(
                f"index covers {index.n_rows} rows, corpus has {n_titles}"
            )
    else:
        postings = build_postings(token_lists)

    frequent: Dict[Sequence_, int] = {}

    # L1.
    current: Dict[Sequence_, Set[int]] = {}
    for token, rows in postings.items():
        if len(rows) >= min_count:
            current[(token,)] = rows
    frequent.update({seq: len(rows) for seq, rows in current.items()})

    length = 1
    while current and length < max_length:
        length += 1
        candidates = _generate_candidates(set(current), length)
        next_level: Dict[Sequence_, Set[int]] = {}
        for candidate in candidates:
            # Rows that contain all tokens — superset of true containment.
            possible = set.intersection(*(postings[t] for t in candidate))
            if len(possible) < min_count:
                continue
            rows = {
                row for row in possible if _contains(token_lists[row], candidate)
            }
            if len(rows) >= min_count:
                next_level[candidate] = rows
        frequent.update({seq: len(rows) for seq, rows in next_level.items()})
        current = next_level
    return frequent


def _generate_candidates(
    previous: Set[Sequence_], length: int
) -> List[Sequence_]:
    """AprioriAll join + prune: s1 ⋈ s2 when s1[1:] == s2[:-1]."""
    by_prefix: Dict[Sequence_, List[Sequence_]] = defaultdict(list)
    for seq in previous:
        by_prefix[seq[:-1]].append(seq)
    candidates: List[Sequence_] = []
    for seq in previous:
        suffix = seq[1:]
        for extension in by_prefix.get(suffix, ()):
            candidate = seq + (extension[-1],)
            if len(candidate) != length:
                continue
            if _all_subsequences_frequent(candidate, previous):
                candidates.append(candidate)
    return sorted(set(candidates))


def _all_subsequences_frequent(
    candidate: Sequence_, previous: Set[Sequence_]
) -> bool:
    """Apriori pruning: every (k-1)-subsequence must be frequent."""
    for drop in range(len(candidate)):
        sub = candidate[:drop] + candidate[drop + 1 :]
        if sub not in previous:
            return False
    return True
