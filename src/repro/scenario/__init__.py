"""Declarative scenario harness (ROADMAP item 4).

YAML scenario specs, a validating loader, a fully deterministic runner
over the ``BatchStream`` → Chimera → executor stack, and per-scenario
health reports. See DESIGN.md §12 for the schema reference and the
determinism contract, and ``src/repro/scenario/library/`` for the
starter scenarios.
"""

from repro.scenario.diff import (
    diff_report_files,
    diff_reports,
    load_report,
    render_diff,
)
from repro.scenario.report import ExitCheck, ScenarioReport, round6
from repro.scenario.runner import ScenarioError, ScenarioRunner, run_scenario, sub_seed
from repro.scenario.spec import (
    DRIFT_OPS,
    EXECUTOR_KINDS,
    ScenarioSpec,
    SpecError,
    load_scenario,
    loads,
)
from repro.scenario.yamlio import YamlError, fallback_load, safe_load

__all__ = [
    "DRIFT_OPS",
    "EXECUTOR_KINDS",
    "ExitCheck",
    "ScenarioError",
    "ScenarioReport",
    "ScenarioRunner",
    "ScenarioSpec",
    "SpecError",
    "YamlError",
    "diff_report_files",
    "diff_reports",
    "fallback_load",
    "load_report",
    "load_scenario",
    "loads",
    "render_diff",
    "round6",
    "run_scenario",
    "safe_load",
    "sub_seed",
]
