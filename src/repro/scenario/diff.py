"""Structural diff between two scenario health reports.

``repro scenario diff a.json b.json`` answers the operator question
"what changed between these two runs?" — a seed bump, a spec tweak, a
code change — without eyeballing two multi-hundred-line JSON files.
The diff is computed on the :meth:`ScenarioReport.to_dict` form, so it
works on any report the runner (or the CI scenario matrix) wrote.

The comparison is intentionally asymmetric-free: every section reports
``left``/``right``/``delta`` so the rendering reads the same whichever
file is the baseline.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

_NUMERIC = (int, float)


def load_report(path: str) -> Dict[str, Any]:
    """Load one report JSON file (the ``to_dict`` form)."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or "scenario" not in data:
        raise ValueError(f"{path} is not a scenario report (no 'scenario' key)")
    return data


def _numeric_deltas(
    left: Dict[str, Any], right: Dict[str, Any]
) -> Dict[str, Dict[str, Any]]:
    """Per-key {left, right, delta} over the union of numeric keys."""
    out: Dict[str, Dict[str, Any]] = {}
    for key in sorted(set(left) | set(right)):
        lv, rv = left.get(key, 0), right.get(key, 0)
        if isinstance(lv, bool) or isinstance(rv, bool):
            if lv != rv:
                out[key] = {"left": lv, "right": rv, "delta": None}
            continue
        if not (isinstance(lv, _NUMERIC) and isinstance(rv, _NUMERIC)):
            continue
        if lv != rv:
            out[key] = {"left": lv, "right": rv, "delta": round(rv - lv, 6)}
    return out


def _count_by(rows: List[Dict[str, Any]], key: str) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for row in rows:
        label = str(row.get(key, "?"))
        counts[label] = counts.get(label, 0) + 1
    return counts


def _incident_rules(rows: List[Dict[str, Any]]) -> List[str]:
    """Every rule id that appears in any incident, sorted + deduped."""
    seen = set()
    for row in rows:
        seen.update(row.get("rule_ids", []))
    return sorted(seen)


def diff_reports(
    left: Dict[str, Any], right: Dict[str, Any]
) -> Dict[str, Any]:
    """Compute the full structural diff between two report dicts."""
    l_inc = left.get("incidents", [])
    r_inc = right.get("incidents", [])
    l_rules_hit = _incident_rules(l_inc)
    r_rules_hit = _incident_rules(r_inc)
    l_checks = {c["name"]: c for c in left.get("exit_checks", [])}
    r_checks = {c["name"]: c for c in right.get("exit_checks", [])}
    check_changes: Dict[str, Dict[str, Any]] = {}
    for name in sorted(set(l_checks) | set(r_checks)):
        lc, rc = l_checks.get(name), r_checks.get(name)
        entry = {
            "left": None if lc is None else {
                "actual": lc["actual"], "passed": lc["passed"]},
            "right": None if rc is None else {
                "actual": rc["actual"], "passed": rc["passed"]},
        }
        if lc is None or rc is None or lc["passed"] != rc["passed"] \
                or lc["actual"] != rc["actual"]:
            check_changes[name] = entry

    return {
        "identity": {
            "scenario": {
                "left": left.get("scenario"), "right": right.get("scenario")},
            "seed": {"left": left.get("seed"), "right": right.get("seed")},
            "executor": {
                "left": left.get("executor"), "right": right.get("executor")},
            "fingerprint": {
                "left": left.get("fingerprint"),
                "right": right.get("fingerprint"),
            },
            "passed": {
                "left": left.get("passed"), "right": right.get("passed")},
        },
        "fired_digest": {
            "left": left.get("fired_digest", ""),
            "right": right.get("fired_digest", ""),
            "match": left.get("fired_digest") == right.get("fired_digest"),
        },
        "totals": _numeric_deltas(
            left.get("totals", {}), right.get("totals", {})),
        "incidents": {
            "count": {"left": len(l_inc), "right": len(r_inc),
                      "delta": len(r_inc) - len(l_inc)},
            "by_kind": {
                "left": _count_by(l_inc, "kind"),
                "right": _count_by(r_inc, "kind"),
            },
            "by_status": {
                "left": _count_by(l_inc, "status"),
                "right": _count_by(r_inc, "status"),
            },
            "rules_only_left": sorted(set(l_rules_hit) - set(r_rules_hit)),
            "rules_only_right": sorted(set(r_rules_hit) - set(l_rules_hit)),
        },
        "alerts": {
            "count": {
                "left": len(left.get("alerts", [])),
                "right": len(right.get("alerts", [])),
                "delta": len(right.get("alerts", []))
                - len(left.get("alerts", [])),
            },
            "by_kind": {
                "left": _count_by(left.get("alerts", []), "kind"),
                "right": _count_by(right.get("alerts", []), "kind"),
            },
        },
        "rules": {
            "summary": _numeric_deltas(
                {k: v for k, v in left.get("rules", {}).items()
                 if isinstance(v, _NUMERIC)},
                {k: v for k, v in right.get("rules", {}).items()
                 if isinstance(v, _NUMERIC)},
            ),
            "per_stage": _numeric_deltas(
                left.get("rules", {}).get("per_stage", {}),
                right.get("rules", {}).get("per_stage", {}),
            ),
        },
        "crowd": _numeric_deltas(
            left.get("crowd", {}), right.get("crowd", {})),
        "faults": _numeric_deltas(
            left.get("faults", {}), right.get("faults", {})),
        "exit_checks": check_changes,
    }


def _fmt_delta(entry: Dict[str, Any]) -> str:
    delta = entry.get("delta")
    if delta is None:
        return f"{entry['left']} -> {entry['right']}"
    sign = "+" if delta > 0 else ""
    return f"{entry['left']} -> {entry['right']} ({sign}{delta:g})"


def render_diff(diff: Dict[str, Any]) -> str:
    """Human-readable rendering of :func:`diff_reports` output."""
    ident = diff["identity"]
    lines: List[str] = []
    same_scenario = ident["scenario"]["left"] == ident["scenario"]["right"]
    header = (
        f"scenario {ident['scenario']['left']}"
        if same_scenario
        else f"scenario {ident['scenario']['left']} vs "
        f"{ident['scenario']['right']}"
    )
    lines.append(header)
    lines.append(
        f"  seed {ident['seed']['left']} vs {ident['seed']['right']} · "
        f"spec {ident['fingerprint']['left']} vs "
        f"{ident['fingerprint']['right']}"
    )
    verdict = lambda p: "PASS" if p else "FAIL"  # noqa: E731
    lines.append(
        f"  verdict: {verdict(ident['passed']['left'])} -> "
        f"{verdict(ident['passed']['right'])}"
    )
    digest = diff["fired_digest"]
    if digest["match"]:
        lines.append(f"  fired digest: MATCH ({digest['left'][:16]}…)")
    else:
        lines.append(
            f"  fired digest: DIFFER "
            f"({digest['left'][:16]}… vs {digest['right'][:16]}…)"
        )
    if diff["totals"]:
        lines.append("  totals:")
        for key, entry in sorted(diff["totals"].items()):
            lines.append(f"    {key}: {_fmt_delta(entry)}")
    else:
        lines.append("  totals: identical")
    inc = diff["incidents"]
    lines.append(f"  incidents: {_fmt_delta(inc['count'])}")
    if inc["rules_only_left"]:
        lines.append(
            "    rules in incidents only on left: "
            + ", ".join(inc["rules_only_left"][:8])
        )
    if inc["rules_only_right"]:
        lines.append(
            "    rules in incidents only on right: "
            + ", ".join(inc["rules_only_right"][:8])
        )
    lines.append(f"  alerts: {_fmt_delta(diff['alerts']['count'])}")
    for section in ("rules", "crowd", "faults"):
        entries = diff[section]
        if section == "rules":
            merged = dict(entries["summary"])
            merged.update(
                {f"per_stage.{k}": v
                 for k, v in entries["per_stage"].items()}
            )
            entries = merged
        if entries:
            lines.append(f"  {section}:")
            for key, entry in sorted(entries.items()):
                lines.append(f"    {key}: {_fmt_delta(entry)}")
    if diff["exit_checks"]:
        lines.append("  exit checks that changed:")
        for name, entry in sorted(diff["exit_checks"].items()):
            def _side(side: Any) -> str:
                if side is None:
                    return "(absent)"
                mark = "ok" if side["passed"] else "FAIL"
                return f"{side['actual']} [{mark}]"
            lines.append(
                f"    {name}: {_side(entry['left'])} -> "
                f"{_side(entry['right'])}"
            )
    else:
        lines.append("  exit checks: identical")
    return "\n".join(lines) + "\n"


def diff_report_files(left_path: str, right_path: str) -> Dict[str, Any]:
    """Load two report files and diff them."""
    return diff_reports(load_report(left_path), load_report(right_path))
