"""The shipped scenario library: discovery and loading.

Scenarios live as YAML files in ``src/repro/scenario/library/``. Each is
a self-contained spec; files tagged ``smoke`` form the fast subset the
CI scenario matrix runs on every push (the full library runs under
``pytest -m slow`` and in ``tests/test_scenario_runner.py``).
"""

from __future__ import annotations

import os
from typing import Dict, List

from repro.scenario.spec import ScenarioSpec, load_scenario

#: The tag marking a scenario as part of the fast CI subset.
SMOKE_TAG = "smoke"


def library_dir() -> str:
    return os.path.join(os.path.dirname(__file__), "library")


def library_paths() -> Dict[str, str]:
    """Scenario name (file stem) → absolute spec path, sorted by name."""
    root = library_dir()
    out: Dict[str, str] = {}
    if not os.path.isdir(root):
        return out
    for entry in sorted(os.listdir(root)):
        if entry.endswith((".yaml", ".yml")):
            out[os.path.splitext(entry)[0]] = os.path.join(root, entry)
    return out


def load_library() -> List[ScenarioSpec]:
    """Load every shipped scenario, sorted by file name."""
    return [load_scenario(path) for path in library_paths().values()]


def load_library_scenario(name: str) -> ScenarioSpec:
    """Load one shipped scenario by its file stem."""
    paths = library_paths()
    if name not in paths:
        known = ", ".join(sorted(paths)) or "(none)"
        raise KeyError(f"unknown library scenario {name!r}; known: {known}")
    return load_scenario(paths[name])
