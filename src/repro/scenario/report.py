"""Per-scenario health reports: JSON + rendered text.

A :class:`ScenarioReport` is the runner's single deliverable: throughput,
the label-precision trajectory, incidents opened/resolved, rule-health
alerts, crowd spend, fault/degradation accounting, and the evaluated exit
conditions — everything the paper's §2.2 "ongoing system requirements"
ask an operator to watch, for one simulated deployment.

Determinism contract: a report is a pure function of (spec, seed). No
wall-clock time appears anywhere — throughput is items per *simulated*
hour, timestamps are :class:`~repro.utils.clock.SimClock` days, floats
are rounded to six digits, and JSON is serialized with sorted keys — so
two runs of the same spec and seed produce byte-identical files
(``tests/test_scenario_determinism.py`` holds the runner to this).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List


def round6(value: float) -> float:
    """The report-wide float policy: 6 digits, negative zero normalized."""
    rounded = round(float(value), 6)
    return 0.0 if rounded == 0 else rounded


@dataclass
class ExitCheck:
    """One evaluated exit condition."""

    name: str
    expected: Any
    actual: Any
    passed: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "expected": self.expected,
            "actual": self.actual,
            "passed": self.passed,
        }


@dataclass
class ScenarioReport:
    """Everything one scenario run produced, in JSON-safe form.

    The runner fills the dict fields with already-rounded, already-sorted
    primitives; this class only assembles, serializes, and renders.
    """

    scenario: str
    seed: int
    fingerprint: str
    executor: str
    passed: bool = True
    totals: Dict[str, Any] = field(default_factory=dict)
    batches: List[Dict[str, Any]] = field(default_factory=list)
    precision_trajectory: List[float] = field(default_factory=list)
    incidents: List[Dict[str, Any]] = field(default_factory=list)
    alerts: List[Dict[str, Any]] = field(default_factory=list)
    drift_events: List[Dict[str, Any]] = field(default_factory=list)
    taxonomy_changes: List[Dict[str, Any]] = field(default_factory=list)
    crowd: Dict[str, Any] = field(default_factory=dict)
    faults: Dict[str, Any] = field(default_factory=dict)
    rules: Dict[str, Any] = field(default_factory=dict)
    repository: Dict[str, Any] = field(default_factory=dict)
    fired_digest: str = ""
    exit_checks: List[ExitCheck] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "fingerprint": self.fingerprint,
            "executor": self.executor,
            "passed": self.passed,
            "totals": self.totals,
            "batches": self.batches,
            "precision_trajectory": self.precision_trajectory,
            "incidents": self.incidents,
            "alerts": self.alerts,
            "drift_events": self.drift_events,
            "taxonomy_changes": self.taxonomy_changes,
            "crowd": self.crowd,
            "faults": self.faults,
            "rules": self.rules,
            "repository": self.repository,
            "fired_digest": self.fired_digest,
            "exit_checks": [check.to_dict() for check in self.exit_checks],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioReport":
        """Rebuild a report from its :meth:`to_dict` form (for re-rendering)."""
        checks = [
            ExitCheck(
                name=entry["name"],
                expected=entry["expected"],
                actual=entry["actual"],
                passed=entry["passed"],
            )
            for entry in data.get("exit_checks", [])
        ]
        return cls(
            scenario=data["scenario"],
            seed=data["seed"],
            fingerprint=data.get("fingerprint", ""),
            executor=data.get("executor", ""),
            passed=data.get("passed", True),
            totals=data.get("totals", {}),
            batches=data.get("batches", []),
            precision_trajectory=data.get("precision_trajectory", []),
            incidents=data.get("incidents", []),
            alerts=data.get("alerts", []),
            drift_events=data.get("drift_events", []),
            taxonomy_changes=data.get("taxonomy_changes", []),
            crowd=data.get("crowd", {}),
            faults=data.get("faults", {}),
            rules=data.get("rules", {}),
            repository=data.get("repository", {}),
            fired_digest=data.get("fired_digest", ""),
            exit_checks=checks,
        )

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, 2-space indent, trailing newline."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def write_json(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())

    # -- rendering ---------------------------------------------------------------

    def render_text(self) -> str:
        """The operator-facing text view of the same report."""
        lines: List[str] = []
        verdict = "PASS" if self.passed else "FAIL"
        lines.append(f"scenario {self.scenario}  [{verdict}]")
        lines.append(
            f"  seed {self.seed} · spec {self.fingerprint} · "
            f"executor {self.executor}"
        )
        totals = self.totals
        lines.append(
            f"  {totals.get('batches', 0)} batches · "
            f"{totals.get('items', 0)} items · "
            f"{totals.get('classified', 0)} classified · "
            f"{totals.get('rejected', 0)} rejected"
        )
        lines.append(
            f"  throughput {totals.get('items_per_sim_hour', 0.0):g} items/sim-hour "
            f"over {totals.get('sim_hours', 0.0):g} simulated hours"
        )
        lines.append(
            f"  precision mean {totals.get('mean_precision', 0.0):.4f} "
            f"final {totals.get('final_precision', 0.0):.4f} · "
            f"coverage final {totals.get('final_coverage', 0.0):.4f}"
        )
        if self.precision_trajectory:
            spark = " ".join(f"{p:.3f}" for p in self.precision_trajectory)
            lines.append(f"  trajectory: {spark}")
        if self.drift_events:
            lines.append(f"  drift events ({len(self.drift_events)}):")
            for event in self.drift_events:
                lines.append(
                    f"    batch {event['at_batch']}: {event['kind']} "
                    f"{event['type']} {event['detail']}"
                )
        if self.taxonomy_changes:
            lines.append(f"  taxonomy changes ({len(self.taxonomy_changes)}):")
            for change in self.taxonomy_changes:
                lines.append(
                    f"    batch {change['at_batch']}: {change['op']} "
                    f"{change['detail']} (invalidated {change['invalidated']}, "
                    f"retargeted {change['retargeted']}, "
                    f"disabled {change['disabled']})"
                )
        if self.incidents:
            lines.append(f"  incidents ({len(self.incidents)}):")
            for incident in self.incidents:
                scope = incident["affected_types"] or incident["rule_ids"]
                lines.append(
                    f"    #{incident['ordinal']} [{incident['kind']}] "
                    f"{incident['status']} @ day {incident['opened_at']:g}: "
                    f"{', '.join(scope) if scope else '(none)'}"
                )
        else:
            lines.append("  incidents: none")
        if self.alerts:
            lines.append(f"  rule-health alerts ({len(self.alerts)}):")
            for alert in self.alerts:
                lines.append(
                    f"    [{alert['kind']}] batch {alert['batch_id']}: "
                    f"{alert['n_rules']} rule(s)"
                )
        if self.crowd:
            exhausted = " (budget exhausted)" if self.crowd.get("exhausted") else ""
            lines.append(
                f"  crowd: {self.crowd.get('evaluations', 0)} evaluation(s), "
                f"{self.crowd.get('answers', 0)} answers, "
                f"spent {self.crowd.get('spent', 0.0):g}{exhausted}"
            )
        if self.faults:
            lines.append(
                f"  faults: {self.faults.get('triggered', 0)} triggered · "
                f"{self.faults.get('degraded_runs', 0)} degraded run(s) · "
                f"{self.faults.get('skipped_items', 0)} item(s) skipped"
            )
        if self.rules:
            lines.append(
                f"  rules: {self.rules.get('final_total', 0)} total · "
                f"{self.rules.get('added', 0)} added · "
                f"{self.rules.get('disabled', 0)} disabled during run"
            )
        if self.repository:
            lines.append(
                f"  repository: {self.repository.get('changes', 0)} logged "
                f"change(s) · {self.repository.get('snapshots', 0)} snapshot(s) · "
                f"{self.repository.get('rollbacks', 0)} rollback(s)"
            )
            for event in self.repository.get("rollback_events", []):
                lines.append(
                    f"    batch {event['at_batch']}: rollback -> "
                    f"{event['name']!r} ({event['flips']} flips, "
                    f"{event['replaced']} replaced, {event['added']} re-added, "
                    f"{event['removed']} removed)"
                )
        lines.append(f"  fired digest: {self.fired_digest}")
        if self.exit_checks:
            lines.append("  exit conditions:")
            for check in self.exit_checks:
                mark = "ok " if check.passed else "FAIL"
                lines.append(
                    f"    [{mark}] {check.name}: expected {check.expected}, "
                    f"got {check.actual}"
                )
        else:
            lines.append("  exit conditions: (none declared)")
        return "\n".join(lines) + "\n"
