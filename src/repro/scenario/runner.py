"""The scenario runner: executes any spec deterministically from its seed.

This is ROADMAP item 4's engine. One :class:`ScenarioRunner` drives the
whole existing stack — ``BatchStream`` → Chimera → an executor-maintained
fired map — through the spec's event schedule: drift operations, taxonomy
splits/merges, mass rule churn, vendor bursts, hot-key skew, fault plans,
the §2.2 incident playbook (detect → scale down → repair → restore), and
crowd evaluation under a budget. The output is a
:class:`~repro.scenario.report.ScenarioReport`.

Determinism contract (property-tested in
``tests/test_scenario_determinism.py``):

* every random draw comes from a ``random.Random`` sub-seeded from
  ``(seed, subsystem-tag)`` via CRC-32, so subsystems cannot perturb each
  other's streams when a spec toggles one of them;
* simulated time only — the wall clock is never read (the partitioned
  executor gets a :class:`~repro.utils.clock.TickClock` and a
  :class:`~repro.testing.faults.VirtualSleeper`);
* rules created by the simulated analyst are re-identified with run-local
  ``scn-*`` ids before entering the pipeline, because
  :mod:`repro.core.rule` hands out process-global ids (two runs in one
  process would otherwise diverge). Incidents are reported by per-run
  ordinal for the same reason.

Together: same spec + same seed ⇒ byte-identical report JSON, fired-map
digest, and incident log, no matter how many runs share the process.
"""

from __future__ import annotations

import hashlib
import json
import random
import time
import zlib
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analyst.analyst import SimulatedAnalyst
from repro.catalog import CatalogGenerator, build_seed_taxonomy, synthesize_types
from repro.catalog.batches import BatchStream, VendorProfile
from repro.catalog.drift import DriftInjector
from repro.catalog.types import ProductType
from repro.chimera.incidents import IncidentManager
from repro.chimera.monitoring import PrecisionMonitor
from repro.chimera.pipeline import Chimera
from repro.core.rule import Rule
from repro.crowd.budget import BudgetExhausted, CrowdBudget
from repro.crowd.tasks import VerificationTask
from repro.crowd.worker import WorkerPool
from repro.evaluation.per_rule import PerRuleCrowdEvaluator
from repro.execution.executor import IndexedExecutor
from repro.execution.parallel import PartitionedExecutor
from repro.maintenance.taxonomy_change import (
    apply_plan,
    plan_for_merge,
    plan_for_split,
)
from repro.observability.quality import QualityTelemetry, RuleHealthTracker
from repro.repository import RuleRepository, bind_chimera
from repro.scenario.report import ExitCheck, ScenarioReport, round6
from repro.scenario.spec import _EXIT_CHECKS, ScenarioSpec, TaxonomyChange
from repro.testing.faults import FaultPlan, VirtualSleeper
from repro.utils.clock import SimClock, TickClock


class ScenarioError(RuntimeError):
    """A spec references the world incorrectly (unknown type, vendor...)."""


def sub_seed(seed: int, tag: str) -> int:
    """A stable per-subsystem seed: CRC-32 of ``"{seed}:{tag}"``.

    Sub-seeding means adding (say) a crowd section to a spec cannot shift
    the stream/analyst/fault randomness — each subsystem owns its stream.
    """
    return zlib.crc32(f"{seed}:{tag}".encode("utf-8"))


def _digest_update(digest, batch_id: str, fired: Dict[str, Sequence[str]]) -> None:
    payload = json.dumps(
        {item: list(rules) for item, rules in fired.items()},
        sort_keys=True, separators=(",", ":"),
    )
    digest.update(batch_id.encode("utf-8"))
    digest.update(payload.encode("utf-8"))


def _safe_templates(product_type: ProductType) -> Tuple[str, ...]:
    """Drop templates whose ``{mod:slot}`` names no longer exist.

    ``DriftInjector.split_type`` copies the old type's templates but gives
    the new types a single ``style`` slot — a template referencing a lost
    slot would crash generation mid-run.
    """
    import re

    kept = []
    slots = set(product_type.modifier_slots)
    for template in product_type.templates:
        referenced = re.findall(r"\{mod:(\w+)\}", template)
        if all(name in slots for name in referenced):
            kept.append(template)
    if not kept:
        kept = ["{mod} {head}", "{mod} {head} {detail}"]
    return tuple(kept)


class ScenarioRunner:
    """Runs one :class:`ScenarioSpec` end to end, deterministically."""

    def __init__(self, spec: ScenarioSpec, seed: Optional[int] = None):
        self.spec = spec
        self.seed = spec.seed if seed is None else seed
        self._rule_seq = 0

    # -- helpers -----------------------------------------------------------------

    def _reid(self, rules: Sequence[Rule], kind: str) -> List[Rule]:
        """Run-local rule ids, immune to the process-global id counter."""
        out = []
        for rule in rules:
            self._rule_seq += 1
            rule.rule_id = f"scn-{kind}-{self._rule_seq:04d}"
            out.append(rule)
        return out

    def _build_fault_plan(self) -> Optional[FaultPlan]:
        faults = self.spec.faults
        if faults.empty:
            return None
        plan = FaultPlan()
        for entry in faults.plan:
            if entry.kind == "crash":
                plan.crash(worker=entry.worker, shard=entry.shard,
                           attempt=entry.attempt)
            elif entry.kind == "hang":
                plan.hang(worker=entry.worker, shard=entry.shard,
                          attempt=entry.attempt)
            else:
                plan.corrupt(worker=entry.worker, shard=entry.shard,
                             attempt=entry.attempt, detail=entry.detail)
        if faults.random_rate:
            seeded = FaultPlan.random_plan(
                sub_seed(self.seed, "faults"),
                n_workers=self.spec.executor.n_workers,
                rate=faults.random_rate,
                spare_workers=faults.random_spare_workers,
            )
            for spec_entry in seeded.specs:
                plan.add(spec_entry)
        return plan

    # -- the run -----------------------------------------------------------------

    def run(self) -> ScenarioReport:
        spec = self.spec
        seed = self.seed

        def sub(tag: str) -> int:
            return sub_seed(seed, tag)

        # -- world setup ---------------------------------------------------------
        clock = SimClock()
        taxonomy = build_seed_taxonomy()
        if spec.catalog.extra_types:
            for product_type in synthesize_types(
                spec.catalog.extra_types, random.Random(sub("types"))
            ):
                taxonomy.add(product_type)
        generator = CatalogGenerator(taxonomy, seed=sub("generator"))
        analyst = SimulatedAnalyst(
            taxonomy,
            clock=clock,
            seed=sub("analyst"),
            rules_per_day=spec.analyst.rules_per_day,
            verification_accuracy=spec.analyst.verification_accuracy,
            labeling_accuracy=spec.analyst.labeling_accuracy,
        )
        chimera = Chimera.build(seed=sub("chimera") % (2 ** 31))
        if spec.catalog.training:
            chimera.add_training(generator.generate_labeled(spec.catalog.training))
            chimera.retrain(min_examples_per_type=spec.catalog.min_examples)
        seed_types = spec.catalog.obvious_rule_types
        if seed_types == ("*",):
            seed_types = tuple(taxonomy.type_names)
        for type_name in seed_types:
            if type_name not in taxonomy:
                raise ScenarioError(
                    f"catalog.obvious_rule_types: unknown type {type_name!r}"
                )
            chimera.add_whitelist_rules(
                self._reid(analyst.obvious_rules(type_name), "wl")
            )

        vendors = [
            VendorProfile(
                name=v.name,
                min_batch=v.min_batch,
                max_batch=v.max_batch,
                departments=v.departments,
                rewrites=dict(v.rewrites),
            )
            for v in spec.traffic.vendors
        ]
        stream = BatchStream(
            generator,
            clock,
            vendors,
            seed=sub("stream"),
            mean_gap_hours=spec.traffic.mean_gap_hours,
        )
        vendor_by_name = {profile.name: profile for profile in stream.vendors}
        drift = DriftInjector(generator, seed=sub("drift"))
        monitor = PrecisionMonitor(
            floor=spec.incidents.monitor_floor,
            window=spec.incidents.monitor_window,
        )

        tracker: Optional[RuleHealthTracker] = None
        if spec.quality.enabled:
            tracker = RuleHealthTracker(
                window=spec.quality.window,
                baseline_batches=spec.quality.baseline_batches,
                precision_floor=spec.quality.precision_floor,
            )
            chimera.enable_quality_telemetry(QualityTelemetry(health=tracker))

        repository: Optional[RuleRepository] = None
        if spec.repository.enabled:
            # In-memory repository bound to all three rule stages: every
            # mutation of the run lands in its audit log (attributed to the
            # scenario unless a tighter scope — e.g. the incident manager's
            # playbook — is open), and the schedule below can snapshot and
            # roll back by name.
            repository = RuleRepository(clock=clock)
            repository.default_author = "scenario"
            bind_chimera(repository, chimera)
        manager = IncidentManager(chimera, repository=repository)

        # -- run state -----------------------------------------------------------
        rules_added = 0
        rules_disabled = 0
        degraded_runs = 0
        skipped_items = 0
        crowd_evals = 0
        crowd_answers = 0
        crowd_exhausted = False
        batch_rows: List[Dict[str, Any]] = []
        precision_trajectory: List[float] = []
        drift_rows: List[Dict[str, Any]] = []
        taxonomy_rows: List[Dict[str, Any]] = []
        error_samples = deque(maxlen=spec.incidents.max_error_samples)
        repair_due: List[List[Any]] = []  # [due_step, incident]
        reenable_at: Dict[int, List[str]] = {}
        state = {"step": 0}

        if tracker is not None and spec.quality.auto_incidents:
            def on_alert(alert) -> None:
                nonlocal rules_disabled
                incident = manager.open_rule_incident(
                    alert.rule_ids,
                    reason=f"[{alert.kind}] batch {alert.batch_id}",
                    at=clock.now,
                )
                if spec.quality.auto_scale_down:
                    manager.scale_down(incident)
                    rules_disabled += sum(
                        len(ids) for ids in incident.disabled_rule_ids.values()
                    )
                    if spec.incidents.repair_after:
                        repair_due.append(
                            [state["step"] + spec.incidents.repair_after, incident]
                        )

            tracker.on_alert.append(on_alert)

        # -- executor ------------------------------------------------------------
        executor_kind = spec.executor.kind
        digest = hashlib.sha256()
        fault_plan = self._build_fault_plan()
        incremental = None
        if executor_kind == "incremental":
            incremental = chimera.track_fired_map("rule-based", batch_stream=stream)

        # -- crowd ---------------------------------------------------------------
        evaluator: Optional[PerRuleCrowdEvaluator] = None
        crowd_budget: Optional[CrowdBudget] = None
        if spec.crowd.at_batches:
            crowd_budget = (
                CrowdBudget(spec.crowd.budget) if spec.crowd.budget else None
            )
            task = VerificationTask(
                WorkerPool(seed=sub("workers")),
                budget=crowd_budget,
                votes_per_pair=spec.crowd.votes_per_pair,
                seed=sub("crowd"),
            )
            evaluator = PerRuleCrowdEvaluator(
                task, sample_per_rule=spec.crowd.sample_per_rule
            )

        # -- schedules -----------------------------------------------------------
        def by_step(entries):
            index: Dict[int, list] = {}
            for entry in entries:
                index.setdefault(entry.at_batch, []).append(entry)
            return index

        drift_at = by_step(spec.drift)
        snap_at = by_step(spec.repository.snapshots)
        rollback_at = by_step(spec.repository.rollbacks)
        snapshots_taken = 0
        rollback_rows: List[Dict[str, Any]] = []
        tax_at = by_step(spec.taxonomy_changes)
        churn_at = by_step(spec.rule_churn)
        scale_at = by_step(spec.scale_ups)
        bursts_at = by_step(spec.traffic.bursts)
        hot_at = by_step(spec.traffic.hot_keys)
        crowd_steps = set(spec.crowd.at_batches)
        churn_rng = random.Random(sub("churn"))

        def repair_and_restore(incident) -> None:
            nonlocal rules_added
            whitelists, blacklists = analyst.patch_rules_for_errors(
                list(error_samples)
            )
            chimera.add_whitelist_rules(self._reid(whitelists, "patch-wl"))
            chimera.add_blacklist_rules(self._reid(blacklists, "patch-bl"))
            added = len(whitelists) + len(blacklists)
            for type_name in incident.affected_types:
                if type_name in taxonomy:
                    refreshed = self._reid(analyst.obvious_rules(type_name), "wl")
                    chimera.add_whitelist_rules(refreshed)
                    added += len(refreshed)
            rules_added += added
            incident.status = "repaired"
            incident.notes.append(f"added {added} repair rules")
            manager.restore(incident)

        # -- wall-clock budget (ROADMAP item 4) ----------------------------------
        # The only place the runner reads the host's real clock. Specs
        # that declare these checks trade report-byte replayability for a
        # latency SLO; wall-free specs are untouched (the measurements
        # never enter the report body, only the declared exit checks).
        run_started = time.perf_counter()
        batch_latencies: List[float] = []
        wall_budget: Optional[float] = None
        for check_name, check_expected in spec.exit.checks:
            if check_name == "max_wall_seconds":
                wall_budget = float(check_expected)

        # -- the event loop ------------------------------------------------------
        for step in range(spec.traffic.batches):
            if (
                wall_budget is not None
                and time.perf_counter() - run_started >= wall_budget
            ):
                # Budget exhausted: stop scheduling batches. Whatever
                # already ran is reported; the max_wall_seconds check
                # passes iff no single batch blew through the budget.
                break
            state["step"] = step

            # repository schedule: snapshots capture the state as this step
            # begins; rollbacks restore a named snapshot via delta ops only
            if repository is not None:
                for event in snap_at.get(step, []):
                    repository.snapshot(
                        event.name, author="scenario",
                        reason=f"scheduled at batch {step}",
                    )
                    snapshots_taken += 1
                for event in rollback_at.get(step, []):
                    result = repository.rollback(
                        event.name, author="scenario",
                        reason=f"scheduled at batch {step}",
                    )
                    rollback_rows.append({
                        "at_batch": step,
                        "name": event.name,
                        "flips": result.flips,
                        "replaced": result.replaced,
                        "added": result.added,
                        "removed": result.removed,
                    })

            # scheduled re-enables from earlier churn
            for rule_id in reenable_at.pop(step, []):
                for ruleset in (
                    chimera.rule_stage.rules,
                    chimera.attr_stage.rules,
                    chimera.filter.rules,
                ):
                    if rule_id in ruleset:
                        ruleset.enable(rule_id)
                        break

            # due incident repairs (scheduled at scale-down time)
            for entry in list(repair_due):
                due_step, incident = entry
                if due_step <= step and incident.status == "scaled-down":
                    repair_and_restore(incident)
                    repair_due.remove(entry)

            # hot-key skew
            for hot in hot_at.get(step, []):
                weights = dict(hot.weights)
                for type_name in weights:
                    if type_name not in taxonomy:
                        raise ScenarioError(
                            f"traffic.hot_keys at batch {step}: "
                            f"unknown type {type_name!r}"
                        )
                event = drift.shift_distribution(weights)
                drift_rows.append({
                    "at_batch": step, "kind": "hot-keys",
                    "type": event.type_name, "detail": event.detail,
                })

            # drift schedule
            for op in drift_at.get(step, []):
                try:
                    if op.op == "extend_slot":
                        event = drift.extend_slot(op.type, op.slot, list(op.phrases))
                    elif op.op == "replace_slot":
                        event = drift.replace_slot(op.type, op.slot, list(op.phrases))
                    elif op.op == "shift_heads":
                        event = drift.shift_head_vocabulary(op.type, list(op.heads))
                    elif op.op == "shift_distribution":
                        event = drift.shift_distribution(dict(op.weights))
                    else:  # surge_department
                        event = drift.surge_department(op.department, op.factor)
                except KeyError as error:
                    raise ScenarioError(
                        f"drift at batch {step}: {error}"
                    ) from error
                drift_rows.append({
                    "at_batch": step, "kind": event.kind,
                    "type": event.type_name, "detail": event.detail,
                })

            # taxonomy changes
            for change in tax_at.get(step, []):
                row = self._apply_taxonomy_change(
                    change, step, drift, generator, taxonomy, chimera, analyst
                )
                rules_disabled += row["disabled"]
                rules_added += row.pop("new_rules")
                taxonomy_rows.append(row)

            # mass rule churn
            for churn in churn_at.get(step, []):
                active = sorted(
                    rule.rule_id
                    for rule in chimera.rule_stage.rules.active_rules()
                )
                count = churn.disable_count or int(
                    round(churn.disable_fraction * len(active))
                )
                count = min(count, len(active))
                chosen = sorted(churn_rng.sample(active, count)) if count else []
                for rule_id in chosen:
                    chimera.rule_stage.rules.disable(rule_id)
                rules_disabled += len(chosen)
                if churn.reenable_after and chosen:
                    reenable_at.setdefault(
                        step + churn.reenable_after, []
                    ).extend(chosen)

            # scale-ups: onboard new types with their obvious rules
            for scale in scale_at.get(step, []):
                new_rules: List[Rule] = []
                for type_name in scale.types:
                    if type_name not in taxonomy:
                        raise ScenarioError(
                            f"scale_ups at batch {step}: "
                            f"unknown type {type_name!r}"
                        )
                    new_rules.extend(analyst.obvious_rules(type_name))
                chimera.add_whitelist_rules(self._reid(new_rules, "wl"))
                rules_added += len(new_rules)

            # produce this step's batches: one scheduled + any bursts
            produced = [stream.next_batch()]
            for burst in bursts_at.get(step, []):
                profile = vendor_by_name[burst.vendor]
                for _ in range(burst.batches):
                    produced.append(stream.next_batch(vendor=profile))

            # classify + monitor + executor maintenance
            for position, batch in enumerate(produced):
                batch_started = time.perf_counter()
                result = chimera.classify_batch(batch.items, batch_id=batch.batch_id)
                precision = result.true_precision()
                coverage = result.coverage
                errors: Dict[str, int] = {}
                for item, label in result.classified_pairs:
                    if item.true_type != label:
                        errors[label] = errors.get(label, 0) + 1
                        error_samples.append((item, label))
                monitor.record(
                    batch.batch_id,
                    clock.now,
                    precision,
                    coverage,
                    len(batch.items),
                    errors_by_type=errors,
                )
                classified = len(result.classified_pairs)
                batch_rows.append({
                    "step": step,
                    "batch_id": batch.batch_id,
                    "vendor": batch.vendor,
                    "burst": position > 0,
                    "arrived_day": round6(batch.arrived_at),
                    "items": len(batch.items),
                    "classified": classified,
                    "declined": len(result.declined),
                    "rejected": len(result.rejected),
                    "coverage": round6(coverage),
                    "precision": round6(precision),
                })
                precision_trajectory.append(round6(precision))

                if executor_kind == "indexed":
                    fired, _stats = IndexedExecutor(
                        chimera.rule_stage.rules.active_rules()
                    ).run(batch.items)
                    _digest_update(digest, batch.batch_id, fired)
                elif executor_kind == "partitioned":
                    executor = PartitionedExecutor(
                        chimera.rule_stage.rules.active_rules(),
                        n_workers=spec.executor.n_workers,
                        fault_plan=fault_plan,
                        sleep=VirtualSleeper(),
                        retry_seed=sub("retry"),
                        clock=TickClock(),
                    )
                    run = executor.run_detailed(batch.items)
                    if run.degraded:
                        degraded_runs += 1
                    skipped_items += len(run.skipped_item_ids)
                    _digest_update(digest, batch.batch_id, run.fired)
                batch_latencies.append(
                    (time.perf_counter() - batch_started) * 1000.0
                )

            # §2.2 detect → scale down (one open quality incident at a time)
            if spec.incidents.auto_scale_down and monitor.degraded():
                open_quality = [
                    incident
                    for incident in manager.incidents
                    if incident.kind == "quality" and incident.status != "closed"
                ]
                if not open_quality:
                    suspects = [
                        name
                        for name, count in monitor.suspect_types(top=2)
                        if count > 0
                    ]
                    if suspects:
                        incident = manager.open_incident(suspects, at=clock.now)
                        manager.scale_down(incident)
                        rules_disabled += sum(
                            len(ids)
                            for ids in incident.disabled_rule_ids.values()
                        )
                        if spec.incidents.repair_after:
                            repair_due.append(
                                [step + spec.incidents.repair_after, incident]
                            )

            # crowd evaluation over this step's traffic
            if step in crowd_steps and evaluator is not None:
                rules = chimera.rule_stage.rules.active_rules()
                step_items = [
                    item for batch in produced for item in batch.items
                ]
                try:
                    crowd_report = evaluator.evaluate(rules, step_items)
                except BudgetExhausted:
                    crowd_exhausted = True
                else:
                    crowd_evals += 1
                    crowd_answers += crowd_report.crowd_answers
                    if tracker is not None:
                        tracker.ingest_precision(
                            crowd_report, batch_id=produced[-1].batch_id
                        )

        # -- wrap up -------------------------------------------------------------
        if executor_kind == "incremental" and incremental is not None:
            _digest_update(digest, "final", incremental.fired_map())
            incremental.detach()

        total_items = sum(row["items"] for row in batch_rows)
        total_classified = sum(row["classified"] for row in batch_rows)
        total_rejected = sum(row["rejected"] for row in batch_rows)
        sim_hours = clock.now * 24.0
        report = ScenarioReport(
            scenario=spec.name,
            seed=seed,
            fingerprint=spec.fingerprint(),
            executor=executor_kind,
        )
        report.batches = batch_rows
        report.precision_trajectory = precision_trajectory
        report.drift_events = drift_rows
        report.taxonomy_changes = taxonomy_rows
        report.totals = {
            "batches": len(batch_rows),
            "items": total_items,
            "classified": total_classified,
            "declined": sum(row["declined"] for row in batch_rows),
            "rejected": total_rejected,
            "sim_days": round6(clock.now),
            "sim_hours": round6(sim_hours),
            "items_per_sim_hour": round6(
                total_items / sim_hours if sim_hours else 0.0
            ),
            "final_precision": precision_trajectory[-1] if precision_trajectory else 1.0,
            "mean_precision": round6(
                sum(precision_trajectory) / len(precision_trajectory)
            ) if precision_trajectory else 1.0,
            "final_coverage": batch_rows[-1]["coverage"] if batch_rows else 0.0,
        }
        report.incidents = [
            {
                "ordinal": ordinal,
                "kind": incident.kind,
                "status": incident.status,
                "opened_at": round6(incident.opened_at),
                "affected_types": sorted(incident.affected_types),
                "rule_ids": sorted(incident.rule_ids),
            }
            for ordinal, incident in enumerate(manager.incidents, start=1)
        ]
        report.alerts = [
            {
                "kind": alert.kind,
                "batch_id": alert.batch_id,
                "n_rules": len(alert.rule_ids),
            }
            for alert in (tracker.alerts if tracker is not None else [])
        ]
        if evaluator is not None:
            report.crowd = {
                "evaluations": crowd_evals,
                "answers": crowd_answers,
                "spent": round6(crowd_budget.spent) if crowd_budget else float(crowd_answers),
                "budget": round6(spec.crowd.budget),
                "exhausted": crowd_exhausted,
            }
        report.faults = {
            "triggered": len(fault_plan.triggered) if fault_plan is not None else 0,
            "degraded_runs": degraded_runs,
            "skipped_items": skipped_items,
        }
        rule_counts = chimera.rule_count()
        report.rules = {
            "per_stage": rule_counts,
            "final_total": sum(rule_counts.values()),
            "added": rules_added,
            "disabled": rules_disabled,
        }
        if repository is not None:
            report.repository = {
                "changes": len(repository.log),
                "namespaces": repository.namespaces(),
                "snapshots": snapshots_taken,
                "rollbacks": len(rollback_rows),
                "rollback_events": rollback_rows,
            }
            repository.close()
        report.fired_digest = digest.hexdigest()[:16]
        report.exit_checks = self._evaluate_exit(
            report, manager, tracker, crowd_exhausted,
            wall_seconds=time.perf_counter() - run_started,
            batch_latencies=batch_latencies,
        )
        report.passed = all(check.passed for check in report.exit_checks)
        return report

    # -- taxonomy changes --------------------------------------------------------

    def _apply_taxonomy_change(
        self, change: TaxonomyChange, step: int, drift, generator,
        taxonomy, chimera, analyst,
    ) -> Dict[str, Any]:
        all_rules = list(chimera.rule_stage.rules) + list(chimera.attr_stage.rules)
        new_rules = 0
        if change.op == "split":
            if change.type not in taxonomy:
                raise ScenarioError(
                    f"taxonomy_changes at batch {step}: "
                    f"unknown type {change.type!r}"
                )
            _event, replacements = drift.split_type(
                change.type,
                {name: list(phrases) for name, phrases in change.into},
            )
            for product_type in replacements:
                product_type.templates = _safe_templates(product_type)
            samples = []
            for product_type in replacements:
                for _ in range(change.sample_items):
                    samples.append(
                        generator.generate_item(type_name=product_type.name)
                    )
            plan = plan_for_split(
                all_rules,
                change.type,
                [product_type.name for product_type in replacements],
                samples,
            )
            disabled = apply_plan(all_rules, plan)
            detail = (
                f"{change.type} -> "
                f"{', '.join(t.name for t in replacements)}"
            )
            if change.write_rules:
                fresh: List[Rule] = []
                for product_type in replacements:
                    fresh.extend(analyst.obvious_rules(product_type.name))
                chimera.add_whitelist_rules(self._reid(fresh, "wl"))
                new_rules = len(fresh)
        else:  # merge
            for type_name in change.types:
                if type_name not in taxonomy:
                    raise ScenarioError(
                        f"taxonomy_changes at batch {step}: "
                        f"unknown type {type_name!r}"
                    )
            parts = [taxonomy.get(name) for name in change.types]
            merged_slots: Dict[str, List[str]] = {}
            for part in parts:
                for slot in sorted(part.modifier_slots):
                    bucket = merged_slots.setdefault(slot, [])
                    for phrase in part.modifier_slots[slot]:
                        if phrase not in bucket:
                            bucket.append(phrase)
            merged = ProductType(
                name=change.merged,
                department=parts[0].department,
                heads=tuple(dict.fromkeys(
                    head for part in parts for head in part.heads
                )),
                modifier_slots={
                    slot: tuple(phrases)
                    for slot, phrases in merged_slots.items()
                },
                brands=tuple(dict.fromkeys(
                    brand for part in parts for brand in part.brands
                )),
                attribute_kinds=dict(parts[0].attribute_kinds),
                templates=parts[0].templates,
                weight=sum(part.weight for part in parts),
            )
            merged.templates = _safe_templates(merged)
            taxonomy.merge_types(list(change.types), merged)
            plan = plan_for_merge(all_rules, change.types, change.merged)
            disabled = apply_plan(all_rules, plan)
            detail = f"{' + '.join(change.types)} -> {change.merged}"
            if change.write_rules:
                fresh = analyst.obvious_rules(change.merged)
                chimera.add_whitelist_rules(self._reid(fresh, "wl"))
                new_rules = len(fresh)
        return {
            "at_batch": step,
            "op": change.op,
            "detail": detail,
            "invalidated": len(plan.invalidated),
            "retargeted": len(plan.retargets),
            "disabled": len(disabled),
            "new_rules": new_rules,
        }

    # -- exit conditions ---------------------------------------------------------

    def _evaluate_exit(
        self,
        report: ScenarioReport,
        manager,
        tracker,
        crowd_exhausted: bool,
        wall_seconds: float = 0.0,
        batch_latencies: Sequence[float] = (),
    ) -> List[ExitCheck]:
        totals = report.totals
        alerts = report.alerts
        actuals: Dict[str, Any] = {
            "min_batches": totals["batches"],
            "min_items": totals["items"],
            "final_precision_at_least": totals["final_precision"],
            "mean_precision_at_least": totals["mean_precision"],
            "final_coverage_at_least": totals["final_coverage"],
            "max_open_incidents": sum(
                1 for incident in manager.incidents
                if incident.status != "closed"
            ),
            "min_incidents": len(manager.incidents),
            "min_closed_incidents": sum(
                1 for incident in manager.incidents
                if incident.status == "closed"
            ),
            "min_alerts": len(alerts),
            "min_drift_alerts": sum(
                1 for alert in alerts if alert["kind"] == "fire-rate-drift"
            ),
            "max_skipped_items": report.faults["skipped_items"],
            "min_faults_triggered": report.faults["triggered"],
            "min_degraded_runs": report.faults["degraded_runs"],
            "expect_budget_exhausted": crowd_exhausted,
            "min_rules_disabled": report.rules["disabled"],
            "min_taxonomy_changes": len(report.taxonomy_changes),
            "min_repository_changes": report.repository.get("changes", 0),
            "min_snapshots": report.repository.get("snapshots", 0),
            "min_rollbacks": report.repository.get("rollbacks", 0),
            "max_batch_latency_ms": round(
                max(batch_latencies) if batch_latencies else 0.0, 3
            ),
            "max_wall_seconds": round(wall_seconds, 3),
        }
        checks: List[ExitCheck] = []
        for name, expected in self.spec.exit.checks:
            actual = actuals[name]
            direction = _EXIT_CHECKS[name]
            if direction == "ge":
                passed = actual >= expected
            elif direction == "le":
                passed = actual <= expected
            else:  # eq
                passed = actual == expected
            checks.append(ExitCheck(
                name=name, expected=expected, actual=actual, passed=passed,
            ))
        return checks


def run_scenario(spec: ScenarioSpec, seed: Optional[int] = None) -> ScenarioReport:
    """Convenience: run ``spec`` (optionally overriding its seed)."""
    return ScenarioRunner(spec, seed=seed).run()
