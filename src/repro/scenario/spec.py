"""The declarative scenario spec and its validating loader.

A scenario is one YAML document describing an end-to-end simulation over
the ``BatchStream`` → Chimera → executor stack (ROADMAP item 4): the
catalog profile, the traffic shape (vendors, bursts, hot-key skew), the
drift schedule, the fault plan, taxonomy-change events, analyst/crowd
budgets, and the exit conditions the run must satisfy. Every field is
validated here with positioned errors, so a typo in a spec fails at load
time, not three phases into a simulation.

Batch indices are 0-based: an event with ``at_batch: k`` is applied
*before* the k-th scheduled batch is produced. Everything in a spec is
data — no field names code — and a spec plus a seed fully determines a
run (see :mod:`repro.scenario.runner` for the determinism contract).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.scenario.yamlio import safe_load

#: Fired-map executor kinds the runner knows how to drive.
EXECUTOR_KINDS = ("none", "indexed", "partitioned", "incremental")

#: Drift-schedule operations (mirroring DriftInjector's surface).
DRIFT_OPS = (
    "extend_slot",
    "replace_slot",
    "shift_heads",
    "shift_distribution",
    "surge_department",
)


class SpecError(ValueError):
    """A scenario spec failed validation; the message names the path."""


def _err(path: str, message: str) -> SpecError:
    return SpecError(f"{path}: {message}")


def _require_map(value: Any, path: str) -> Dict[str, Any]:
    if value is None:
        return {}
    if not isinstance(value, dict):
        raise _err(path, f"expected a mapping, got {type(value).__name__}")
    return value


def _require_list(value: Any, path: str) -> List[Any]:
    if value is None:
        return []
    if not isinstance(value, list):
        raise _err(path, f"expected a list, got {type(value).__name__}")
    return value


def _check_keys(data: Mapping[str, Any], allowed: Sequence[str], path: str) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise _err(path, f"unknown keys {unknown}; allowed: {sorted(allowed)}")


def _get_int(data: Mapping[str, Any], key: str, path: str, default: int,
             minimum: Optional[int] = None) -> int:
    value = data.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise _err(f"{path}.{key}", f"expected an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise _err(f"{path}.{key}", f"must be >= {minimum}, got {value}")
    return value


def _get_float(data: Mapping[str, Any], key: str, path: str, default: float,
               minimum: Optional[float] = None,
               maximum: Optional[float] = None) -> float:
    value = data.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _err(f"{path}.{key}", f"expected a number, got {value!r}")
    value = float(value)
    if minimum is not None and value < minimum:
        raise _err(f"{path}.{key}", f"must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise _err(f"{path}.{key}", f"must be <= {maximum}, got {value}")
    return value


def _get_bool(data: Mapping[str, Any], key: str, path: str, default: bool) -> bool:
    value = data.get(key, default)
    if not isinstance(value, bool):
        raise _err(f"{path}.{key}", f"expected true/false, got {value!r}")
    return value


def _get_str(data: Mapping[str, Any], key: str, path: str,
             default: str = "", required: bool = False) -> str:
    value = data.get(key, default)
    if required and not value:
        raise _err(f"{path}.{key}", "is required")
    if not isinstance(value, str):
        raise _err(f"{path}.{key}", f"expected a string, got {value!r}")
    return value


def _get_str_list(data: Mapping[str, Any], key: str, path: str) -> Tuple[str, ...]:
    values = _require_list(data.get(key), f"{path}.{key}")
    for value in values:
        if not isinstance(value, str):
            raise _err(f"{path}.{key}", f"expected strings, got {value!r}")
    return tuple(values)


def _get_str_map(data: Mapping[str, Any], key: str, path: str) -> Dict[str, str]:
    mapping = _require_map(data.get(key), f"{path}.{key}")
    out: Dict[str, str] = {}
    for k, v in mapping.items():
        if not isinstance(k, str) or not isinstance(v, str):
            raise _err(f"{path}.{key}", f"expected string keys/values, got {k!r}: {v!r}")
        out[k] = v
    return out


def _get_weight_map(data: Mapping[str, Any], key: str, path: str) -> Dict[str, float]:
    mapping = _require_map(data.get(key), f"{path}.{key}")
    out: Dict[str, float] = {}
    for k, v in mapping.items():
        if not isinstance(k, str) or isinstance(v, bool) or not isinstance(v, (int, float)):
            raise _err(f"{path}.{key}", f"expected 'type: weight' entries, got {k!r}: {v!r}")
        if v < 0:
            raise _err(f"{path}.{key}", f"weight for {k!r} must be >= 0, got {v}")
        out[k] = float(v)
    return out


# -- section dataclasses ---------------------------------------------------------


@dataclass(frozen=True)
class CatalogSpec:
    """The catalog profile: taxonomy size, training volume, seeded rules."""

    extra_types: int = 0
    training: int = 0
    min_examples: int = 5
    obvious_rule_types: Tuple[str, ...] = ()

    @classmethod
    def from_dict(cls, data: Any, path: str = "catalog") -> "CatalogSpec":
        data = _require_map(data, path)
        _check_keys(data, ("extra_types", "training", "min_examples",
                           "obvious_rule_types"), path)
        return cls(
            extra_types=_get_int(data, "extra_types", path, 0, minimum=0),
            training=_get_int(data, "training", path, 0, minimum=0),
            min_examples=_get_int(data, "min_examples", path, 5, minimum=1),
            obvious_rule_types=_get_str_list(data, "obvious_rule_types", path),
        )


@dataclass(frozen=True)
class VendorSpec:
    """One vendor profile (size range, departments, vocabulary rewrites)."""

    name: str
    min_batch: int = 20
    max_batch: int = 200
    departments: Tuple[str, ...] = ()
    rewrites: Tuple[Tuple[str, str], ...] = ()

    @classmethod
    def from_dict(cls, data: Any, path: str) -> "VendorSpec":
        data = _require_map(data, path)
        _check_keys(data, ("name", "min_batch", "max_batch", "departments",
                           "rewrites"), path)
        min_batch = _get_int(data, "min_batch", path, 20, minimum=1)
        max_batch = _get_int(data, "max_batch", path, 200, minimum=1)
        if max_batch < min_batch:
            raise _err(path, f"max_batch ({max_batch}) < min_batch ({min_batch})")
        return cls(
            name=_get_str(data, "name", path, required=True),
            min_batch=min_batch,
            max_batch=max_batch,
            departments=_get_str_list(data, "departments", path),
            rewrites=tuple(sorted(_get_str_map(data, "rewrites", path).items())),
        )


@dataclass(frozen=True)
class BurstSpec:
    """Extra batches from a named vendor injected at one point in the run."""

    at_batch: int
    vendor: str
    batches: int = 1

    @classmethod
    def from_dict(cls, data: Any, path: str) -> "BurstSpec":
        data = _require_map(data, path)
        _check_keys(data, ("at_batch", "vendor", "batches"), path)
        return cls(
            at_batch=_get_int(data, "at_batch", path, -1, minimum=0),
            vendor=_get_str(data, "vendor", path, required=True),
            batches=_get_int(data, "batches", path, 1, minimum=1),
        )


@dataclass(frozen=True)
class HotKeySpec:
    """Type-weight overrides applied at one point (hot-key skew)."""

    at_batch: int
    weights: Tuple[Tuple[str, float], ...] = ()

    @classmethod
    def from_dict(cls, data: Any, path: str) -> "HotKeySpec":
        data = _require_map(data, path)
        _check_keys(data, ("at_batch", "weights"), path)
        weights = _get_weight_map(data, "weights", path)
        if not weights:
            raise _err(f"{path}.weights", "needs at least one 'type: weight' entry")
        return cls(
            at_batch=_get_int(data, "at_batch", path, -1, minimum=0),
            weights=tuple(sorted(weights.items())),
        )


@dataclass(frozen=True)
class TrafficSpec:
    """The traffic shape: scheduled batches, vendors, bursts, hot keys."""

    batches: int = 4
    mean_gap_hours: float = 6.0
    vendors: Tuple[VendorSpec, ...] = ()
    bursts: Tuple[BurstSpec, ...] = ()
    hot_keys: Tuple[HotKeySpec, ...] = ()

    @classmethod
    def from_dict(cls, data: Any, path: str = "traffic") -> "TrafficSpec":
        data = _require_map(data, path)
        _check_keys(data, ("batches", "mean_gap_hours", "vendors", "bursts",
                           "hot_keys"), path)
        vendors = tuple(
            VendorSpec.from_dict(entry, f"{path}.vendors[{i}]")
            for i, entry in enumerate(_require_list(data.get("vendors"), f"{path}.vendors"))
        )
        names = [vendor.name for vendor in vendors]
        if len(set(names)) != len(names):
            raise _err(f"{path}.vendors", f"duplicate vendor names in {names}")
        bursts = tuple(
            BurstSpec.from_dict(entry, f"{path}.bursts[{i}]")
            for i, entry in enumerate(_require_list(data.get("bursts"), f"{path}.bursts"))
        )
        for i, burst in enumerate(bursts):
            if burst.vendor not in names:
                raise _err(f"{path}.bursts[{i}].vendor",
                           f"unknown vendor {burst.vendor!r}; declared: {names}")
        return cls(
            batches=_get_int(data, "batches", path, 4, minimum=1),
            mean_gap_hours=_get_float(data, "mean_gap_hours", path, 6.0, minimum=0.001),
            vendors=vendors,
            bursts=bursts,
            hot_keys=tuple(
                HotKeySpec.from_dict(entry, f"{path}.hot_keys[{i}]")
                for i, entry in enumerate(
                    _require_list(data.get("hot_keys"), f"{path}.hot_keys"))
            ),
        )


@dataclass(frozen=True)
class DriftOp:
    """One scheduled drift operation (see :class:`DriftInjector`)."""

    at_batch: int
    op: str
    type: str = ""
    slot: str = ""
    phrases: Tuple[str, ...] = ()
    heads: Tuple[str, ...] = ()
    weights: Tuple[Tuple[str, float], ...] = ()
    department: str = ""
    factor: float = 1.0

    @classmethod
    def from_dict(cls, data: Any, path: str) -> "DriftOp":
        data = _require_map(data, path)
        _check_keys(data, ("at_batch", "op", "type", "slot", "phrases", "heads",
                           "weights", "department", "factor"), path)
        op = _get_str(data, "op", path, required=True)
        if op not in DRIFT_OPS:
            raise _err(f"{path}.op", f"unknown drift op {op!r}; one of {list(DRIFT_OPS)}")
        spec = cls(
            at_batch=_get_int(data, "at_batch", path, -1, minimum=0),
            op=op,
            type=_get_str(data, "type", path),
            slot=_get_str(data, "slot", path),
            phrases=_get_str_list(data, "phrases", path),
            heads=_get_str_list(data, "heads", path),
            weights=tuple(sorted(_get_weight_map(data, "weights", path).items())),
            department=_get_str(data, "department", path),
            factor=_get_float(data, "factor", path, 1.0, minimum=0.0),
        )
        if op in ("extend_slot", "replace_slot"):
            if not spec.type or not spec.slot or not spec.phrases:
                raise _err(path, f"{op} needs type, slot, and phrases")
        elif op == "shift_heads":
            if not spec.type or not spec.heads:
                raise _err(path, "shift_heads needs type and heads")
        elif op == "shift_distribution":
            if not spec.weights:
                raise _err(path, "shift_distribution needs weights")
        elif op == "surge_department":
            if not spec.department:
                raise _err(path, "surge_department needs department")
        return spec


@dataclass(frozen=True)
class TaxonomyChange:
    """A scheduled split or merge, with the rule-migration plan applied."""

    at_batch: int
    op: str  # "split" | "merge"
    type: str = ""
    into: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()  # split: new type -> phrases
    types: Tuple[str, ...] = ()  # merge: old types
    merged: str = ""  # merge: new type name
    sample_items: int = 30
    write_rules: bool = True

    @classmethod
    def from_dict(cls, data: Any, path: str) -> "TaxonomyChange":
        data = _require_map(data, path)
        _check_keys(data, ("at_batch", "op", "type", "into", "types", "merged",
                           "sample_items", "write_rules"), path)
        op = _get_str(data, "op", path, required=True)
        if op not in ("split", "merge"):
            raise _err(f"{path}.op", f"unknown taxonomy op {op!r}; split or merge")
        into_map = _require_map(data.get("into"), f"{path}.into")
        into: List[Tuple[str, Tuple[str, ...]]] = []
        for name, phrases in sorted(into_map.items()):
            phrase_list = _require_list(phrases, f"{path}.into.{name}")
            for phrase in phrase_list:
                if not isinstance(phrase, str):
                    raise _err(f"{path}.into.{name}", f"expected strings, got {phrase!r}")
            into.append((str(name), tuple(phrase_list)))
        spec = cls(
            at_batch=_get_int(data, "at_batch", path, -1, minimum=0),
            op=op,
            type=_get_str(data, "type", path),
            into=tuple(into),
            types=_get_str_list(data, "types", path),
            merged=_get_str(data, "merged", path),
            sample_items=_get_int(data, "sample_items", path, 30, minimum=1),
            write_rules=_get_bool(data, "write_rules", path, True),
        )
        if op == "split" and (not spec.type or len(spec.into) < 2):
            raise _err(path, "split needs type and an 'into' map of >= 2 new types")
        if op == "merge" and (len(spec.types) < 2 or not spec.merged):
            raise _err(path, "merge needs >= 2 old types and a merged name")
        return spec


@dataclass(frozen=True)
class RuleChurn:
    """Mass rule churn: disable a slice of the ruleset, re-enable later."""

    at_batch: int
    disable_fraction: float = 0.0
    disable_count: int = 0
    reenable_after: int = 0  # 0 = never re-enable

    @classmethod
    def from_dict(cls, data: Any, path: str) -> "RuleChurn":
        data = _require_map(data, path)
        _check_keys(data, ("at_batch", "disable_fraction", "disable_count",
                           "reenable_after"), path)
        spec = cls(
            at_batch=_get_int(data, "at_batch", path, -1, minimum=0),
            disable_fraction=_get_float(data, "disable_fraction", path, 0.0,
                                        minimum=0.0, maximum=1.0),
            disable_count=_get_int(data, "disable_count", path, 0, minimum=0),
            reenable_after=_get_int(data, "reenable_after", path, 0, minimum=0),
        )
        if not spec.disable_fraction and not spec.disable_count:
            raise _err(path, "needs disable_fraction or disable_count")
        return spec


@dataclass(frozen=True)
class ScaleUp:
    """Onboard types fast: the analyst writes their obvious rules."""

    at_batch: int
    types: Tuple[str, ...] = ()

    @classmethod
    def from_dict(cls, data: Any, path: str) -> "ScaleUp":
        data = _require_map(data, path)
        _check_keys(data, ("at_batch", "types"), path)
        spec = cls(
            at_batch=_get_int(data, "at_batch", path, -1, minimum=0),
            types=_get_str_list(data, "types", path),
        )
        if not spec.types:
            raise _err(path, "needs at least one type")
        return spec


@dataclass(frozen=True)
class FaultEntry:
    """One scheduled fault for the partitioned executor's fault plan."""

    kind: str
    worker: Optional[int] = None
    shard: Optional[int] = None
    attempt: Optional[int] = None
    detail: str = ""

    @classmethod
    def from_dict(cls, data: Any, path: str) -> "FaultEntry":
        data = _require_map(data, path)
        _check_keys(data, ("kind", "worker", "shard", "attempt", "detail"), path)
        kind = _get_str(data, "kind", path, required=True)
        if kind not in ("crash", "hang", "corrupt"):
            raise _err(f"{path}.kind", f"unknown fault kind {kind!r}")

        def coord(key: str) -> Optional[int]:
            value = data.get(key)
            if value is None:
                return None
            if isinstance(value, bool) or not isinstance(value, int) or value < 0:
                raise _err(f"{path}.{key}", f"expected a non-negative int, got {value!r}")
            return value

        return cls(
            kind=kind,
            worker=coord("worker"),
            shard=coord("shard"),
            attempt=coord("attempt"),
            detail=_get_str(data, "detail", path),
        )


@dataclass(frozen=True)
class FaultsSpec:
    """The fault plan: explicit entries and/or a seeded random plan."""

    plan: Tuple[FaultEntry, ...] = ()
    random_rate: float = 0.0
    random_spare_workers: int = 1

    @classmethod
    def from_dict(cls, data: Any, path: str = "faults") -> "FaultsSpec":
        data = _require_map(data, path)
        _check_keys(data, ("plan", "random"), path)
        plan = tuple(
            FaultEntry.from_dict(entry, f"{path}.plan[{i}]")
            for i, entry in enumerate(_require_list(data.get("plan"), f"{path}.plan"))
        )
        random_cfg = _require_map(data.get("random"), f"{path}.random")
        _check_keys(random_cfg, ("rate", "spare_workers"), f"{path}.random")
        return cls(
            plan=plan,
            random_rate=_get_float(random_cfg, "rate", f"{path}.random", 0.0,
                                   minimum=0.0, maximum=1.0),
            random_spare_workers=_get_int(random_cfg, "spare_workers",
                                          f"{path}.random", 1, minimum=0),
        )

    @property
    def empty(self) -> bool:
        return not self.plan and not self.random_rate


@dataclass(frozen=True)
class CrowdSpec:
    """Crowd evaluation points and the budget that bounds them."""

    budget: float = 0.0  # 0 = unlimited
    sample_per_rule: int = 3
    votes_per_pair: int = 3
    at_batches: Tuple[int, ...] = ()

    @classmethod
    def from_dict(cls, data: Any, path: str = "crowd") -> "CrowdSpec":
        data = _require_map(data, path)
        _check_keys(data, ("budget", "sample_per_rule", "votes_per_pair",
                           "at_batches"), path)
        at_batches = _require_list(data.get("at_batches"), f"{path}.at_batches")
        for value in at_batches:
            if isinstance(value, bool) or not isinstance(value, int) or value < 0:
                raise _err(f"{path}.at_batches", f"expected batch indices, got {value!r}")
        votes = _get_int(data, "votes_per_pair", path, 3, minimum=1)
        if votes % 2 == 0:
            raise _err(f"{path}.votes_per_pair", f"must be odd, got {votes}")
        return cls(
            budget=_get_float(data, "budget", path, 0.0, minimum=0.0),
            sample_per_rule=_get_int(data, "sample_per_rule", path, 3, minimum=1),
            votes_per_pair=votes,
            at_batches=tuple(sorted(at_batches)),
        )


@dataclass(frozen=True)
class QualitySpec:
    """Rule-quality telemetry wiring (PR 5's provenance + health windows)."""

    enabled: bool = True
    window: int = 8
    baseline_batches: int = 2
    precision_floor: float = 0.92
    auto_incidents: bool = True
    auto_scale_down: bool = False

    @classmethod
    def from_dict(cls, data: Any, path: str = "quality") -> "QualitySpec":
        data = _require_map(data, path)
        _check_keys(data, ("enabled", "window", "baseline_batches",
                           "precision_floor", "auto_incidents",
                           "auto_scale_down"), path)
        return cls(
            enabled=_get_bool(data, "enabled", path, True),
            window=_get_int(data, "window", path, 8, minimum=1),
            baseline_batches=_get_int(data, "baseline_batches", path, 2, minimum=1),
            precision_floor=_get_float(data, "precision_floor", path, 0.92,
                                       minimum=0.0, maximum=1.0),
            auto_incidents=_get_bool(data, "auto_incidents", path, True),
            auto_scale_down=_get_bool(data, "auto_scale_down", path, False),
        )


@dataclass(frozen=True)
class IncidentPolicy:
    """The §2.2 playbook knobs: detect → scale down → repair → restore."""

    monitor_floor: float = 0.92
    monitor_window: int = 4
    auto_scale_down: bool = False
    repair_after: int = 0  # batches after scale-down; 0 = never repair
    max_error_samples: int = 40

    @classmethod
    def from_dict(cls, data: Any, path: str = "incidents") -> "IncidentPolicy":
        data = _require_map(data, path)
        _check_keys(data, ("monitor_floor", "monitor_window", "auto_scale_down",
                           "repair_after", "max_error_samples"), path)
        return cls(
            monitor_floor=_get_float(data, "monitor_floor", path, 0.92,
                                     minimum=0.001, maximum=1.0),
            monitor_window=_get_int(data, "monitor_window", path, 4, minimum=1),
            auto_scale_down=_get_bool(data, "auto_scale_down", path, False),
            repair_after=_get_int(data, "repair_after", path, 0, minimum=0),
            max_error_samples=_get_int(data, "max_error_samples", path, 40, minimum=1),
        )


@dataclass(frozen=True)
class AnalystSpec:
    """The simulated analyst's throughput and accuracy profile."""

    rules_per_day: int = 40
    verification_accuracy: float = 0.97
    labeling_accuracy: float = 0.98

    @classmethod
    def from_dict(cls, data: Any, path: str = "analyst") -> "AnalystSpec":
        data = _require_map(data, path)
        _check_keys(data, ("rules_per_day", "verification_accuracy",
                           "labeling_accuracy"), path)
        return cls(
            rules_per_day=_get_int(data, "rules_per_day", path, 40, minimum=1),
            verification_accuracy=_get_float(data, "verification_accuracy", path,
                                             0.97, minimum=0.0, maximum=1.0),
            labeling_accuracy=_get_float(data, "labeling_accuracy", path,
                                         0.98, minimum=0.0, maximum=1.0),
        )


@dataclass(frozen=True)
class RepoEvent:
    """One scheduled repository action: snapshot or rollback by name."""

    at_batch: int
    name: str

    @classmethod
    def from_dict(cls, data: Any, path: str) -> "RepoEvent":
        data = _require_map(data, path)
        _check_keys(data, ("at_batch", "name"), path)
        return cls(
            at_batch=_get_int(data, "at_batch", path, -1, minimum=0),
            name=_get_str(data, "name", path, required=True),
        )


@dataclass(frozen=True)
class RepositorySpec:
    """Rule-repository wiring: audit log, named snapshots, rollbacks.

    When enabled, the runner binds the Chimera's rule sets to an
    in-memory :class:`~repro.repository.RuleRepository`; every rule
    mutation of the run (analyst additions, churn, incident scale-downs)
    lands in the audit log, and the schedule can take named snapshots and
    roll namespaces back to them (delta ops only — §2.2 restore).
    """

    enabled: bool = False
    snapshots: Tuple[RepoEvent, ...] = ()
    rollbacks: Tuple[RepoEvent, ...] = ()

    @classmethod
    def from_dict(cls, data: Any, path: str = "repository") -> "RepositorySpec":
        data = _require_map(data, path)
        _check_keys(data, ("enabled", "snapshots", "rollbacks"), path)
        snapshots = tuple(
            RepoEvent.from_dict(entry, f"{path}.snapshots[{i}]")
            for i, entry in enumerate(
                _require_list(data.get("snapshots"), f"{path}.snapshots"))
        )
        rollbacks = tuple(
            RepoEvent.from_dict(entry, f"{path}.rollbacks[{i}]")
            for i, entry in enumerate(
                _require_list(data.get("rollbacks"), f"{path}.rollbacks"))
        )
        spec = cls(
            enabled=_get_bool(data, "enabled", path,
                              bool(snapshots or rollbacks)),
            snapshots=snapshots,
            rollbacks=rollbacks,
        )
        if (snapshots or rollbacks) and not spec.enabled:
            raise _err(path, "snapshots/rollbacks need enabled: true")
        names = [event.name for event in snapshots]
        if len(set(names)) != len(names):
            raise _err(f"{path}.snapshots", f"duplicate snapshot names in {names}")
        for i, event in enumerate(rollbacks):
            if event.name not in names:
                raise _err(f"{path}.rollbacks[{i}].name",
                           f"unknown snapshot {event.name!r}; declared: {names}")
        return spec


@dataclass(frozen=True)
class ExecutorSpec:
    """Which executor maintains the rules × items fired map alongside."""

    kind: str = "incremental"
    n_workers: int = 4

    @classmethod
    def from_dict(cls, data: Any, path: str = "executor") -> "ExecutorSpec":
        data = _require_map(data, path)
        _check_keys(data, ("kind", "n_workers"), path)
        kind = _get_str(data, "kind", path, default="incremental")
        if kind not in EXECUTOR_KINDS:
            raise _err(f"{path}.kind", f"unknown executor {kind!r}; one of {list(EXECUTOR_KINDS)}")
        return cls(
            kind=kind,
            n_workers=_get_int(data, "n_workers", path, 4, minimum=1),
        )


#: Exit-condition keys and the direction they compare in.
_EXIT_CHECKS: Dict[str, str] = {
    "min_batches": "ge",
    "min_items": "ge",
    "final_precision_at_least": "ge",
    "mean_precision_at_least": "ge",
    "final_coverage_at_least": "ge",
    "max_open_incidents": "le",
    "min_incidents": "ge",
    "min_closed_incidents": "ge",
    "min_alerts": "ge",
    "min_drift_alerts": "ge",
    "max_skipped_items": "le",
    "min_faults_triggered": "ge",
    "min_degraded_runs": "ge",
    "expect_budget_exhausted": "eq",
    "min_rules_disabled": "ge",
    "min_taxonomy_changes": "ge",
    "min_repository_changes": "ge",
    "min_snapshots": "ge",
    "min_rollbacks": "ge",
    # Wall-clock budgets (ROADMAP item 4: latency/budget exit conditions).
    # These read the host's real clock, so specs using them trade away
    # byte-replay identity of the *report* (the measured milliseconds
    # differ run to run); the golden scenarios stay wall-free.
    "max_batch_latency_ms": "le",
    "max_wall_seconds": "le",
}


@dataclass(frozen=True)
class ExitConditions:
    """Declarative pass/fail checks evaluated over the finished run."""

    checks: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def from_dict(cls, data: Any, path: str = "exit") -> "ExitConditions":
        data = _require_map(data, path)
        _check_keys(data, tuple(_EXIT_CHECKS), path)
        checks: List[Tuple[str, Any]] = []
        for key in sorted(data):
            value = data[key]
            if key == "expect_budget_exhausted":
                if not isinstance(value, bool):
                    raise _err(f"{path}.{key}", f"expected true/false, got {value!r}")
            elif isinstance(value, bool) or not isinstance(value, (int, float)):
                raise _err(f"{path}.{key}", f"expected a number, got {value!r}")
            checks.append((key, value))
        return cls(checks=tuple(checks))

    def __len__(self) -> int:
        return len(self.checks)


@dataclass(frozen=True)
class ScenarioSpec:
    """The whole scenario document, validated."""

    name: str
    description: str = ""
    seed: int = 0
    tags: Tuple[str, ...] = ()
    catalog: CatalogSpec = field(default_factory=CatalogSpec)
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    drift: Tuple[DriftOp, ...] = ()
    taxonomy_changes: Tuple[TaxonomyChange, ...] = ()
    rule_churn: Tuple[RuleChurn, ...] = ()
    scale_ups: Tuple[ScaleUp, ...] = ()
    faults: FaultsSpec = field(default_factory=FaultsSpec)
    crowd: CrowdSpec = field(default_factory=CrowdSpec)
    quality: QualitySpec = field(default_factory=QualitySpec)
    incidents: IncidentPolicy = field(default_factory=IncidentPolicy)
    analyst: AnalystSpec = field(default_factory=AnalystSpec)
    executor: ExecutorSpec = field(default_factory=ExecutorSpec)
    repository: RepositorySpec = field(default_factory=RepositorySpec)
    exit: ExitConditions = field(default_factory=ExitConditions)

    TOP_KEYS = ("name", "description", "seed", "tags", "catalog", "traffic",
                "drift", "taxonomy_changes", "rule_churn", "scale_ups",
                "faults", "crowd", "quality", "incidents", "analyst",
                "executor", "repository", "exit")

    @classmethod
    def from_dict(cls, data: Any) -> "ScenarioSpec":
        data = _require_map(data, "scenario")
        _check_keys(data, cls.TOP_KEYS, "scenario")
        spec = cls(
            name=_get_str(data, "name", "scenario", required=True),
            description=_get_str(data, "description", "scenario"),
            seed=_get_int(data, "seed", "scenario", 0, minimum=0),
            tags=_get_str_list(data, "tags", "scenario"),
            catalog=CatalogSpec.from_dict(data.get("catalog")),
            traffic=TrafficSpec.from_dict(data.get("traffic")),
            drift=tuple(
                DriftOp.from_dict(entry, f"drift[{i}]")
                for i, entry in enumerate(_require_list(data.get("drift"), "drift"))
            ),
            taxonomy_changes=tuple(
                TaxonomyChange.from_dict(entry, f"taxonomy_changes[{i}]")
                for i, entry in enumerate(
                    _require_list(data.get("taxonomy_changes"), "taxonomy_changes"))
            ),
            rule_churn=tuple(
                RuleChurn.from_dict(entry, f"rule_churn[{i}]")
                for i, entry in enumerate(
                    _require_list(data.get("rule_churn"), "rule_churn"))
            ),
            scale_ups=tuple(
                ScaleUp.from_dict(entry, f"scale_ups[{i}]")
                for i, entry in enumerate(
                    _require_list(data.get("scale_ups"), "scale_ups"))
            ),
            faults=FaultsSpec.from_dict(data.get("faults")),
            crowd=CrowdSpec.from_dict(data.get("crowd")),
            quality=QualitySpec.from_dict(data.get("quality")),
            incidents=IncidentPolicy.from_dict(data.get("incidents")),
            analyst=AnalystSpec.from_dict(data.get("analyst")),
            executor=ExecutorSpec.from_dict(data.get("executor")),
            repository=RepositorySpec.from_dict(data.get("repository")),
            exit=ExitConditions.from_dict(data.get("exit")),
        )
        spec._validate_schedule()
        return spec

    def _validate_schedule(self) -> None:
        """Every scheduled event must land inside the scheduled batches."""
        last = self.traffic.batches - 1

        def check(at_batch: int, label: str) -> None:
            if at_batch > last:
                raise _err(label, f"at_batch {at_batch} is past the last "
                                  f"scheduled batch ({last})")

        for i, op in enumerate(self.drift):
            check(op.at_batch, f"drift[{i}]")
        for i, change in enumerate(self.taxonomy_changes):
            check(change.at_batch, f"taxonomy_changes[{i}]")
        for i, churn in enumerate(self.rule_churn):
            check(churn.at_batch, f"rule_churn[{i}]")
        for i, scale in enumerate(self.scale_ups):
            check(scale.at_batch, f"scale_ups[{i}]")
        for i, burst in enumerate(self.traffic.bursts):
            check(burst.at_batch, f"traffic.bursts[{i}]")
        for i, hot in enumerate(self.traffic.hot_keys):
            check(hot.at_batch, f"traffic.hot_keys[{i}]")
        for i, at_batch in enumerate(self.crowd.at_batches):
            check(at_batch, f"crowd.at_batches[{i}]")
        for i, event in enumerate(self.repository.snapshots):
            check(event.at_batch, f"repository.snapshots[{i}]")
        for i, event in enumerate(self.repository.rollbacks):
            check(event.at_batch, f"repository.rollbacks[{i}]")
        if not self.faults.empty and self.executor.kind != "partitioned":
            raise _err("faults", "a fault plan needs executor.kind: partitioned")

    # -- canonical form ----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The canonical (JSON-safe, key-sorted) dict form of this spec."""

        def unfreeze(value: Any) -> Any:
            if isinstance(value, tuple):
                return [unfreeze(v) for v in value]
            if hasattr(value, "__dataclass_fields__"):
                return {
                    key: unfreeze(getattr(value, key))
                    for key in sorted(value.__dataclass_fields__)
                }
            return value

        return {key: unfreeze(getattr(self, key)) for key in self.TOP_KEYS}

    def fingerprint(self) -> str:
        """A stable content hash of the scenario's *shape*.

        The default seed is excluded: it is a run input (reports carry the
        effective seed separately), so ``seed: S`` in YAML and ``--seed S``
        on the CLI produce identical reports.
        """
        shape = self.to_dict()
        del shape["seed"]
        canonical = json.dumps(shape, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def loads(text: str) -> ScenarioSpec:
    """Parse and validate one scenario document from YAML text."""
    return ScenarioSpec.from_dict(safe_load(text))


def load_scenario(path: str) -> ScenarioSpec:
    """Load and validate a scenario spec from a YAML file."""
    with open(path) as handle:
        text = handle.read()
    try:
        return loads(text)
    except SpecError as error:
        raise SpecError(f"{os.path.basename(path)}: {error}") from error
