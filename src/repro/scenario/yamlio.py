"""YAML loading for scenario specs, with a dependency-free fallback.

Scenario specs are plain YAML documents (ROADMAP item 4, in the style of
the Ouroboros seed-authoring guide in SNIPPETS.md). PyYAML is used when
importable, but it is *not* a hard dependency of the library: the
fallback parser below understands the strict subset the shipped library
files use — nested mappings and lists by indentation, inline ``[a, b]``
lists and ``{k: v}`` maps, quoted and plain scalars, comments — so the
harness works on a bare ``numpy/scipy`` install.

The subset is deliberately strict (tabs, anchors, multi-document streams
and block scalars are rejected with positioned errors) because a scenario
file that parses differently under the two parsers would silently break
the determinism contract. ``tests/test_scenario_spec.py`` parses every
shipped spec with both parsers and asserts identical trees.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

try:  # pragma: no cover - exercised indirectly; absence is the tested path
    import yaml as _pyyaml
except ImportError:  # pragma: no cover
    _pyyaml = None


class YamlError(ValueError):
    """A parse problem, with the 1-based line number where it happened."""

    def __init__(self, message: str, line: Optional[int] = None):
        self.line = line
        where = f" (line {line})" if line is not None else ""
        super().__init__(f"{message}{where}")


def _parse_scalar(text: str, line_no: int) -> Any:
    """One YAML scalar: quoted string, number, bool, null, or plain text."""
    text = text.strip()
    if not text:
        return None
    if text[0] in "\"'":
        quote = text[0]
        if len(text) < 2 or text[-1] != quote:
            raise YamlError(f"unterminated {quote} string: {text!r}", line_no)
        return text[1:-1]
    lowered = text.lower()
    if lowered in ("null", "~"):
        return None
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _split_inline(body: str, line_no: int) -> List[str]:
    """Split an inline collection body on top-level commas."""
    parts: List[str] = []
    depth = 0
    quote = ""
    current = ""
    for ch in body:
        if quote:
            current += ch
            if ch == quote:
                quote = ""
            continue
        if ch in "\"'":
            quote = ch
            current += ch
        elif ch in "[{":
            depth += 1
            current += ch
        elif ch in "]}":
            depth -= 1
            current += ch
        elif ch == "," and depth == 0:
            parts.append(current)
            current = ""
        else:
            current += ch
    if quote or depth:
        raise YamlError(f"unbalanced inline collection: {body!r}", line_no)
    if current.strip():
        parts.append(current)
    return parts


def _parse_value(text: str, line_no: int) -> Any:
    """A scalar or an inline ``[...]`` / ``{...}`` collection."""
    text = text.strip()
    if text.startswith("[") and text.endswith("]"):
        return [
            _parse_value(part, line_no)
            for part in _split_inline(text[1:-1], line_no)
        ]
    if text.startswith("{") and text.endswith("}"):
        mapping = {}
        for part in _split_inline(text[1:-1], line_no):
            key, sep, value = part.partition(":")
            if not sep:
                raise YamlError(f"expected 'key: value' in inline map: {part!r}", line_no)
            mapping[_parse_scalar(key, line_no)] = _parse_value(value, line_no)
        return mapping
    return _parse_scalar(text, line_no)


def _strip_comment(line: str) -> str:
    """Drop a trailing ``# comment`` that is not inside a quoted string."""
    quote = ""
    for index, ch in enumerate(line):
        if quote:
            if ch == quote:
                quote = ""
        elif ch in "\"'":
            quote = ch
        elif ch == "#" and (index == 0 or line[index - 1] in " \t"):
            return line[:index]
    return line


def _logical_lines(text: str) -> List[Tuple[int, int, str]]:
    """(line number, indent, content) for every non-blank line."""
    out: List[Tuple[int, int, str]] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        if "\t" in raw[: len(raw) - len(raw.lstrip())]:
            raise YamlError("tabs are not allowed in indentation", number)
        stripped = _strip_comment(raw).rstrip()
        if not stripped.strip():
            continue
        if stripped.strip() == "---":
            if out:
                raise YamlError("multi-document streams are not supported", number)
            continue
        for marker in ("&", "*", "|", ">"):
            if stripped.strip().endswith(f": {marker}") or stripped.strip() == marker:
                raise YamlError(
                    f"unsupported YAML feature {marker!r} "
                    "(anchors/aliases/block scalars)", number
                )
        indent = len(stripped) - len(stripped.lstrip(" "))
        out.append((number, indent, stripped.strip()))
    return out


def _parse_block(lines: List[Tuple[int, int, str]], start: int, indent: int) -> Tuple[Any, int]:
    """Parse the block starting at ``lines[start]`` (all at ``indent``)."""
    number, _, content = lines[start]
    if content.startswith("- "):
        return _parse_list(lines, start, indent)
    if content == "-":
        return _parse_list(lines, start, indent)
    return _parse_map(lines, start, indent)


def _parse_list(lines, start: int, indent: int) -> Tuple[List[Any], int]:
    items: List[Any] = []
    index = start
    while index < len(lines):
        number, line_indent, content = lines[index]
        if line_indent < indent:
            break
        if line_indent > indent:
            raise YamlError("unexpected indentation", number)
        if not (content == "-" or content.startswith("- ")):
            break
        rest = content[1:].strip()
        if not rest:
            # A nested block owns the following deeper lines.
            if index + 1 < len(lines) and lines[index + 1][1] > indent:
                value, index = _parse_block(lines, index + 1, lines[index + 1][1])
                items.append(value)
                continue
            items.append(None)
            index += 1
            continue
        if _looks_like_map_entry(rest):
            # "- key: value" opens an inline mapping; deeper lines extend it.
            synthetic = [(number, indent + 2, rest)]
            scan = index + 1
            while scan < len(lines) and lines[scan][1] > indent:
                synthetic.append(lines[scan])
                scan += 1
            value, _ = _parse_map(synthetic, 0, indent + 2)
            items.append(value)
            index = scan
            continue
        items.append(_parse_value(rest, number))
        index += 1
    return items, index


def _looks_like_map_entry(text: str) -> bool:
    if text.startswith(("[", "{", "\"", "'")):
        return False
    key, sep, _ = text.partition(":")
    return bool(sep) and (_[:1] in ("", " ")) and ":" not in key.strip("\"'")


def _parse_map(lines, start: int, indent: int) -> Tuple[dict, int]:
    mapping: dict = {}
    index = start
    while index < len(lines):
        number, line_indent, content = lines[index]
        if line_indent < indent:
            break
        if line_indent > indent:
            raise YamlError("unexpected indentation", number)
        if content == "-" or content.startswith("- "):
            break
        key_text, sep, value_text = content.partition(":")
        if not sep or (value_text and not value_text.startswith(" ")):
            raise YamlError(f"expected 'key: value', got {content!r}", number)
        key = _parse_scalar(key_text, number)
        if key in mapping:
            raise YamlError(f"duplicate key {key!r}", number)
        value_text = value_text.strip()
        if value_text:
            mapping[key] = _parse_value(value_text, number)
            index += 1
            continue
        # Empty value: either a nested block follows, or it's null.
        if index + 1 < len(lines) and lines[index + 1][1] > line_indent:
            value, index = _parse_block(lines, index + 1, lines[index + 1][1])
            mapping[key] = value
        else:
            mapping[key] = None
            index += 1
    return mapping, index


def fallback_load(text: str) -> Any:
    """Parse the supported YAML subset without PyYAML."""
    lines = _logical_lines(text)
    if not lines:
        return None
    first_indent = lines[0][1]
    if first_indent != 0:
        raise YamlError("top-level content must not be indented", lines[0][0])
    value, consumed = _parse_block(lines, 0, first_indent)
    if consumed != len(lines):
        raise YamlError("trailing content after document", lines[consumed][0])
    return value


def safe_load(text: str) -> Any:
    """Parse YAML ``text`` with PyYAML when available, else the fallback."""
    if _pyyaml is not None:
        try:
            return _pyyaml.safe_load(text)
        except _pyyaml.YAMLError as error:  # normalize the exception type
            raise YamlError(f"invalid YAML: {error}") from error
    return fallback_load(text)
