"""Vertical search substrate.

Section 1 lists vertical search among the semantics-intensive Big Data
systems that rely on rules. This package is a product-search engine in that
mold: a token index with TF-IDF scoring, plus the analyst-controlled rule
layers production search teams actually run — query rewrite rules (synonym
expansion, reusing the §5.1 families), result blacklist rules, and boost
rules pinning business-critical types.
"""

from repro.search.engine import SearchEngine, SearchResult
from repro.search.rules import BlacklistResultRule, BoostRule, QueryRewriteRule

__all__ = [
    "BlacklistResultRule",
    "BoostRule",
    "QueryRewriteRule",
    "SearchEngine",
    "SearchResult",
]
