"""The vertical search engine: TF-IDF retrieval plus the rule layers."""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.catalog.types import ProductItem
from repro.search.rules import BlacklistResultRule, BoostRule, QueryRewriteRule
from repro.utils.text import tokenize


@dataclass(frozen=True)
class SearchResult:
    """One ranked hit."""

    item: ProductItem
    score: float


class SearchEngine:
    """Inverted-index retrieval with rule-controlled rewrite/filter/boost.

    Query pipeline: tokenize → apply rewrite rules (synonym expansion) →
    score candidates by TF-IDF overlap → drop blacklisted results → apply
    boosts → rank. Every rule layer is analyst-editable at runtime.
    """

    def __init__(self, items: Sequence[ProductItem]):
        if not items:
            raise ValueError("search engine needs at least one item")
        self.items = list(items)
        self._postings: Dict[str, List[int]] = defaultdict(list)
        self._lengths: List[int] = []
        for row, item in enumerate(self.items):
            tokens = tokenize(item.title)
            self._lengths.append(max(1, len(tokens)))
            for token in set(tokens):
                self._postings[token].append(row)
        self._idf = {
            token: math.log(1 + len(self.items) / len(rows))
            for token, rows in self._postings.items()
        }
        self.rewrite_rules: List[QueryRewriteRule] = []
        self.blacklist_rules: List[BlacklistResultRule] = []
        self.boost_rules: List[BoostRule] = []

    # -- rule management --------------------------------------------------------

    def add_rewrite(self, rule: QueryRewriteRule) -> None:
        self.rewrite_rules.append(rule)

    def add_blacklist(self, rule: BlacklistResultRule) -> None:
        self.blacklist_rules.append(rule)

    def add_boost(self, rule: BoostRule) -> None:
        self.boost_rules.append(rule)

    # -- querying -----------------------------------------------------------------

    def expand_query(self, query: str) -> List[str]:
        """Tokenize and run the rewrite layer."""
        tokens = tokenize(query)
        for rule in self.rewrite_rules:
            tokens = rule.rewrite(tokens)
        return tokens

    def search(self, query: str, top_k: int = 10) -> List[SearchResult]:
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        original_tokens = tokenize(query)
        tokens = self.expand_query(query)
        scores: Dict[int, float] = defaultdict(float)
        for token in tokens:
            idf = self._idf.get(token)
            if idf is None:
                continue
            # Expansion tokens count slightly less than the user's words.
            weight = 1.0 if token in original_tokens else 0.7
            for row in self._postings[token]:
                scores[row] += weight * idf / math.sqrt(self._lengths[row])

        active_blacklists = [
            rule for rule in self.blacklist_rules if rule.applies(original_tokens)
        ]
        active_boosts = [
            rule for rule in self.boost_rules if rule.applies(original_tokens)
        ]
        results: List[SearchResult] = []
        for row, score in scores.items():
            item = self.items[row]
            if any(rule.drops(item) for rule in active_blacklists):
                continue
            for boost in active_boosts:
                if item.true_type == boost.product_type:
                    score *= boost.factor
            results.append(SearchResult(item=item, score=score))
        results.sort(key=lambda r: (-r.score, r.item.item_id))
        return results[:top_k]

    def recall_at(self, query: str, wanted_type: str, k: int = 10) -> float:
        """Fraction of the top-k that is of ``wanted_type`` (eval helper)."""
        results = self.search(query, top_k=k)
        if not results:
            return 0.0
        return sum(1 for r in results if r.item.true_type == wanted_type) / len(results)
