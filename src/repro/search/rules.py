"""Search-side rules: query rewrites, result blacklists, boosts."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Sequence, Set, Tuple

from repro.catalog.types import ProductItem
from repro.core.rule import compile_title_regex
from repro.utils.text import tokenize

_rule_ids = itertools.count(1)


def _fresh_id(prefix: str) -> str:
    return f"{prefix}-{next(_rule_ids):05d}"


@dataclass
class QueryRewriteRule:
    """Expand a query term into a synonym disjunction.

    The §5.1 tool's output plugs straight in: an expanded family like
    ``motor|engine|car|truck`` becomes the rewrite for "motor".
    """

    term: str
    synonyms: Tuple[str, ...]
    rule_id: str = field(default_factory=lambda: _fresh_id("qr"))

    def __post_init__(self) -> None:
        if not self.term.strip():
            raise ValueError("rewrite rule needs a non-empty term")
        if not self.synonyms:
            raise ValueError("rewrite rule needs at least one synonym")
        self.term = self.term.lower()
        self.synonyms = tuple(s.lower() for s in self.synonyms)

    def rewrite(self, query_tokens: Sequence[str]) -> List[str]:
        """Expanded token list (original tokens + synonyms when triggered)."""
        expanded = list(query_tokens)
        if self.term in query_tokens:
            expanded.extend(s for s in self.synonyms if s not in expanded)
        return expanded


@dataclass
class BlacklistResultRule:
    """Drop results whose title matches a pattern for a given query term.

    E.g. drop "oil filter" results from "motor oil" queries — the search
    analogue of the classification blacklist.
    """

    query_term: str
    title_pattern: str
    rule_id: str = field(default_factory=lambda: _fresh_id("bl"))

    def __post_init__(self) -> None:
        self._compiled = compile_title_regex(self.title_pattern)
        self.query_term = self.query_term.lower()

    def applies(self, query_tokens: Sequence[str]) -> bool:
        return self.query_term in query_tokens

    def drops(self, item: ProductItem) -> bool:
        title = " ".join(tokenize(item.title, drop_stopwords=False))
        return self._compiled.search(title) is not None


@dataclass
class BoostRule:
    """Multiply the score of results of a product type for a query term.

    Business units pin or promote types ("medicine queries must surface the
    pharmacy vertical first") through rules, not ranker retraining.
    """

    query_term: str
    product_type: str
    factor: float
    rule_id: str = field(default_factory=lambda: _fresh_id("bst"))

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError(f"boost factor must be positive, got {self.factor}")
        self.query_term = self.query_term.lower()

    def applies(self, query_tokens: Sequence[str]) -> bool:
        return self.query_term in query_tokens
