"""Durable streaming service: checkpointed state + operations console.

ROADMAP item 1's "never-ending session" made durable: a long-running
daemon (:class:`StreamService`) follows a
:class:`~repro.catalog.batches.BatchStream` continuously through the
Chimera pipeline on the :class:`~repro.execution.incremental.IncrementalExecutor`,
checkpointing its full operational state after every batch so a
crash-killed process resumes byte-identical to an uninterrupted run. On
top sits a metrics time-series layer, a dependency-free HTTP console
(``repro serve``) and a text dashboard (``repro dashboard``). See
DESIGN.md §15.
"""

from repro.service.checkpoint import CheckpointStore
from repro.service.daemon import ServiceConfig, StreamService
from repro.service.dashboard import render_dashboard
from repro.service.harness import crash_resume_identity, run_service
from repro.service.http import ServiceHttpServer, serve
from repro.service.series import SeriesStore

__all__ = [
    "CheckpointStore",
    "SeriesStore",
    "ServiceConfig",
    "ServiceHttpServer",
    "StreamService",
    "crash_resume_identity",
    "render_dashboard",
    "run_service",
    "serve",
]
