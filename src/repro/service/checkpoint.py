"""Durable state for the streaming service.

The daemon's recovery contract is *byte identity*: a process SIGKILL'd at
any instant must resume and produce exactly the bytes an uninterrupted
run would have. Two write disciplines (both from
:mod:`repro.core.durability`) make that hold:

* ``checkpoint.json`` — the full operational snapshot, atomically
  replaced after every batch. A crash leaves either the previous
  checkpoint or the new one, never a torn mix.
* ``batches.jsonl`` — an append-only journal of every batch the daemon
  ingested (one fsync'd line per batch, items inlined). On resume the
  journal replays the *prepared-item corpus* into the incremental
  executor without re-running classification.

The checkpoint records the journal's **byte offset** at snapshot time
(likewise for the provenance spool and the metric series). Anything past
those offsets was written by a run that died before checkpointing it;
:meth:`CheckpointStore.truncate` rolls the files back so the replayed
batches regenerate those bytes identically instead of duplicating them.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.core.durability import (
    JsonlAppender,
    atomic_write_json,
    fsync_dir,
    scan_jsonl,
)

#: Bumped when the checkpoint layout changes incompatibly.
CHECKPOINT_VERSION = 1

CHECKPOINT_NAME = "checkpoint.json"
JOURNAL_NAME = "batches.jsonl"
SPOOL_NAME = "provenance.jsonl"
SERIES_NAME = "series.jsonl"
REPO_DIR = "repo"


def truncate_file(path: str, keep_bytes: int) -> int:
    """Durably truncate ``path`` to ``keep_bytes``; returns bytes dropped.

    Missing file with ``keep_bytes == 0`` is a no-op (nothing was ever
    written); a missing file with a positive offset is corruption the
    caller must surface, so it raises.
    """
    if not os.path.exists(path):
        if keep_bytes == 0:
            return 0
        raise FileNotFoundError(
            f"checkpoint expects {keep_bytes} bytes of {path!r}, file is missing"
        )
    size = os.path.getsize(path)
    if keep_bytes > size:
        raise ValueError(
            f"checkpoint expects {keep_bytes} bytes of {path!r}, "
            f"only {size} on disk — the checkpoint is ahead of its logs"
        )
    if keep_bytes == size:
        return 0
    with open(path, "r+b") as handle:
        handle.truncate(keep_bytes)
        handle.flush()
        os.fsync(handle.fileno())
    fsync_dir(os.path.dirname(os.path.abspath(path)))
    return size - keep_bytes


class CheckpointStore:
    """The service's on-disk root: checkpoint, journal, spool, series.

    Layout under ``root``::

        checkpoint.json    atomic full snapshot (one per batch)
        batches.jsonl      append-only batch journal (items inlined)
        provenance.jsonl   provenance spool (spool-all mode)
        series.jsonl       metric time-series samples
        repo/              file-backed RuleRepository (changelog.jsonl)
    """

    def __init__(self, root: str, fsync: bool = True):
        self.root = root
        self.fsync = fsync
        os.makedirs(root, exist_ok=True)
        self.checkpoint_path = os.path.join(root, CHECKPOINT_NAME)
        self.journal_path = os.path.join(root, JOURNAL_NAME)
        self.spool_path = os.path.join(root, SPOOL_NAME)
        self.series_path = os.path.join(root, SERIES_NAME)
        self.repo_root = os.path.join(root, REPO_DIR)
        self._journal: Optional[JsonlAppender] = None

    # -- checkpoint document -----------------------------------------------------

    def save(self, state: Dict[str, Any]) -> None:
        """Atomically replace the checkpoint document."""
        atomic_write_json(self.checkpoint_path, state)

    def load(self) -> Optional[Dict[str, Any]]:
        """The last durable checkpoint, or ``None`` on a fresh root."""
        if not os.path.exists(self.checkpoint_path):
            return None
        with open(self.checkpoint_path, "r", encoding="utf-8") as handle:
            state = json.load(handle)
        version = state.get("version")
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint version {version!r} is not supported "
                f"(expected {CHECKPOINT_VERSION})"
            )
        return state

    # -- batch journal -----------------------------------------------------------

    def append_batch(self, record: Dict[str, Any]) -> None:
        """Durably journal one ingested batch."""
        if self._journal is None:
            self._journal = JsonlAppender(self.journal_path, fsync=self.fsync)
        self._journal.append(record)

    def journal_offset(self) -> int:
        """Current durable byte length of the batch journal."""
        if self._journal is not None:
            handle = self._journal._handle
            handle.flush()
            return handle.tell()
        if os.path.exists(self.journal_path):
            return os.path.getsize(self.journal_path)
        return 0

    def read_journal(self) -> List[Dict[str, Any]]:
        """Every complete journal record (torn trailing bytes ignored)."""
        if not os.path.exists(self.journal_path):
            return []
        records, _torn = scan_jsonl(self.journal_path)
        return records

    # -- resume rollback ---------------------------------------------------------

    def truncate(self, offsets: Dict[str, int]) -> Dict[str, int]:
        """Roll the append-only files back to the checkpointed offsets.

        Must run *before* any appender is opened on them. Returns the
        bytes dropped per file (the footprint of the crashed run's
        unacknowledged tail), for operator visibility.
        """
        if self._journal is not None:
            raise RuntimeError("truncate() must run before the journal is opened")
        dropped = {}
        for name, path in (
            ("journal", self.journal_path),
            ("spool", self.spool_path),
            ("series", self.series_path),
        ):
            dropped[name] = truncate_file(path, int(offsets.get(name, 0)))
        return dropped

    def close(self) -> None:
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    def __enter__(self) -> "CheckpointStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
