"""The durable streaming daemon.

:class:`StreamService` is the paper's §2.2 "never ending" deployment made
restartable: it follows a :class:`~repro.catalog.batches.BatchStream`
continuously through the Chimera pipeline on the
:class:`~repro.execution.incremental.IncrementalExecutor` and checkpoints
its *entire* operational state after every batch — MatchStore
generations, rule-repository head, :class:`RuleHealthTracker` windows,
the incident log, the provenance spool offset, every RNG stream, and the
simulated clock. Kill the process at any instant (SIGKILL, power cut,
torn write) and a resumed instance continues **byte-identical** to an
uninterrupted run: same fired-map digest chain, same health windows,
same incident log.

Recovery strategy — deterministic re-execution plus verbatim state:

* Cheap derived state (taxonomy, classifiers, training, the analyst's
  startup rules) is *re-derived* by replaying the seeded startup path.
  On resume the analyst's rule draws are discarded (they only keep its
  RNG in lockstep); the rule repository — pinned at the checkpointed
  change-log seq — is the source of truth for rules and enabled flags.
* Stream/generator RNGs, the clock, health windows, incidents, and the
  executor's match store are restored *verbatim* from the checkpoint.
* Append-only files (batch journal, provenance spool, metric series)
  are rolled back to the checkpointed byte offsets, so a crashed run's
  unacknowledged tail is regenerated identically instead of duplicated.

Wall-clock metrics (span latency histograms, per-batch ``wall_ms``) are
operational telemetry and explicitly *outside* the identity contract.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.analyst.analyst import SimulatedAnalyst
from repro.catalog import CatalogGenerator, build_seed_taxonomy
from repro.catalog.batches import Batch, BatchStream
from repro.catalog.types import ProductItem
from repro.chimera.incidents import Incident, IncidentManager
from repro.chimera.pipeline import BatchResult, Chimera
from repro.core.rule import Rule
from repro.observability import Observability
from repro.observability.metrics import MetricsRegistry
from repro.observability.provenance import ProvenanceLog
from repro.observability.quality import (
    PRECISION_FLOOR,
    QualityTelemetry,
    RuleHealthTracker,
)
from repro.repository import RuleRepository, bind_chimera
from repro.scenario.runner import sub_seed
from repro.service.checkpoint import CHECKPOINT_VERSION, CheckpointStore
from repro.service.series import SeriesStore
from repro.testing.faults import CrashPlan
from repro.utils.clock import SimClock

#: The digest chain's seed value (ordinal 0, before any batch).
GENESIS_DIGEST = hashlib.sha256(b"repro-service-genesis").hexdigest()

_SERVICE_STAGES = ("rule-based", "attr-value", "filter")


@dataclass(frozen=True)
class ServiceConfig:
    """Deterministic knobs of one service deployment.

    The fingerprint covers every field, so a resume against a root whose
    checkpoint was written under different knobs fails loudly instead of
    silently diverging.
    """

    seed: int = 0
    training: int = 120
    min_examples: int = 2
    rules_per_day: int = 40
    mean_gap_hours: float = 6.0
    quality_window: int = 8
    baseline_batches: int = 3
    precision_floor: float = PRECISION_FLOOR
    provenance_capacity: int = 10_000
    series_window: int = 512

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def fingerprint(self) -> str:
        payload = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


# -- JSON codecs for the checkpoint document --------------------------------------


def _rng_dump(rng) -> List[Any]:
    version, internal, gauss = rng.getstate()
    return [version, list(internal), gauss]


def _rng_load(rng, state: List[Any]) -> None:
    rng.setstate((state[0], tuple(state[1]), state[2]))


def _item_to_dict(item: ProductItem) -> Dict[str, Any]:
    return {
        "item_id": item.item_id,
        "title": item.title,
        "attributes": dict(item.attributes),
        "true_type": item.true_type,
        "vendor": item.vendor,
        "description": item.description,
    }


def _item_from_dict(payload: Dict[str, Any]) -> ProductItem:
    return ProductItem(
        item_id=payload["item_id"],
        title=payload["title"],
        attributes=dict(payload["attributes"]),
        true_type=payload["true_type"],
        vendor=payload["vendor"],
        description=payload.get("description", ""),
    )


def _incident_to_dict(incident: Incident) -> Dict[str, Any]:
    return {
        "incident_id": incident.incident_id,
        "opened_at": incident.opened_at,
        "affected_types": list(incident.affected_types),
        "disabled_rule_ids": {
            stage: list(ids) for stage, ids in sorted(incident.disabled_rule_ids.items())
        },
        "status": incident.status,
        "notes": list(incident.notes),
        "kind": incident.kind,
        "rule_ids": list(incident.rule_ids),
    }


def _incident_from_dict(payload: Dict[str, Any]) -> Incident:
    return Incident(
        incident_id=payload["incident_id"],
        opened_at=payload["opened_at"],
        affected_types=tuple(payload["affected_types"]),
        disabled_rule_ids={
            stage: list(ids) for stage, ids in payload["disabled_rule_ids"].items()
        },
        status=payload["status"],
        notes=list(payload["notes"]),
        kind=payload["kind"],
        rule_ids=tuple(payload["rule_ids"]),
    )


class StreamService:
    """The checkpointed streaming daemon. ``start()`` then ``run(n)``.

    ``crash_plan`` (a :class:`~repro.testing.faults.CrashPlan`) lets
    durability tests SIGKILL the loop at named barriers:
    ``journal-appended``, ``classified``, ``before-checkpoint``,
    ``after-checkpoint``.
    """

    def __init__(
        self,
        root: str,
        config: Optional[ServiceConfig] = None,
        fsync: bool = True,
        crash_plan: Optional[CrashPlan] = None,
    ):
        self.root = root
        self.store = CheckpointStore(root, fsync=fsync)
        self.fsync = fsync
        self.crash_plan = crash_plan if crash_plan is not None else CrashPlan()
        self._config_given = config is not None
        self.config = config if config is not None else ServiceConfig()
        self.ordinal = 0
        self.digest_chain = GENESIS_DIGEST
        self.totals: Dict[str, int] = {
            "items": 0, "classified": 0, "declined": 0, "rejected": 0,
        }
        self.resumed = False
        self.rolled_back: Dict[str, int] = {}
        self._incident_seq = 0
        self._rule_seq = 0
        self._started = False
        self.series: Optional[SeriesStore] = None

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> "StreamService":
        """Fresh-start or resume, depending on what the root holds."""
        if self._started:
            raise RuntimeError("service already started")
        state = self.store.load()
        if state is None:
            self._fresh()
        else:
            self._resume(state)
        self._started = True
        return self

    def close(self) -> None:
        if not self._started:
            self.store.close()
            return
        self.incremental.detach()
        self.repository.close()
        self.provenance.close()
        if self.series is not None:
            self.series.close()
        self.store.close()
        self._started = False

    def __enter__(self) -> "StreamService":
        return self.start() if not self._started else self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- world construction -------------------------------------------------------

    def _reid(self, rules: List[Rule], kind: str) -> List[Rule]:
        """Service-local rule ids (the process-global counter is not
        replayable across restarts — same trick as the scenario runner)."""
        out = []
        for rule in rules:
            self._rule_seq += 1
            rule.rule_id = f"svc-{kind}-{self._rule_seq:04d}"
            out.append(rule)
        return out

    def _on_span_end(self, span) -> None:
        self.obs.metrics.histogram("span_seconds", span=span.name).observe(
            span.duration
        )

    def _on_alert(self, alert) -> None:
        incident = self.manager.open_rule_incident(
            alert.rule_ids,
            reason=f"[{alert.kind}] batch {alert.batch_id}: {alert.detail}",
            at=self.clock.now,
        )
        # Re-id before scale_down: the repository records the incident id
        # as provenance for every rule it disables, and the process-global
        # incident counter is not replayable across restarts.
        self._incident_seq += 1
        incident.incident_id = f"svc-{self._incident_seq:04d}"
        self.manager.scale_down(incident)

    def _build_world(
        self,
        metrics: Optional[MetricsRegistry] = None,
        add_startup_rules: bool = True,
    ) -> None:
        """Deterministic startup: seeded sub-streams, training, rules.

        On resume (``add_startup_rules=False``) the analyst's obvious-rule
        draws still run — they keep its RNG in lockstep with the fresh
        path — but the rules are discarded: the pinned repository is the
        source of truth for what survives a restart.
        """
        cfg = self.config

        def sub(tag: str) -> int:
            return sub_seed(cfg.seed, tag)

        self.clock = SimClock()
        self.taxonomy = build_seed_taxonomy()
        self.generator = CatalogGenerator(self.taxonomy, seed=sub("generator"))
        self.analyst = SimulatedAnalyst(
            self.taxonomy,
            clock=self.clock,
            seed=sub("analyst"),
            rules_per_day=cfg.rules_per_day,
        )
        self.obs = Observability()
        if metrics is not None:
            # Must land before Chimera.build: the stage health monitor
            # captures obs.metrics at assembly time.
            self.obs.metrics = metrics
        self.obs.tracer.on_span_end.append(self._on_span_end)
        self.chimera = Chimera.build(
            seed=sub("chimera") % (2 ** 31), observability=self.obs
        )
        if cfg.training:
            self.chimera.add_training(self.generator.generate_labeled(cfg.training))
            self.chimera.retrain(min_examples_per_type=cfg.min_examples)
        for type_name in tuple(self.taxonomy.type_names):
            rules = self._reid(self.analyst.obvious_rules(type_name), "wl")
            if add_startup_rules:
                self.chimera.add_whitelist_rules(rules)
        self.stream = BatchStream(
            self.generator,
            self.clock,
            seed=sub("stream"),
            mean_gap_hours=cfg.mean_gap_hours,
        )
        self.tracker = RuleHealthTracker(
            window=cfg.quality_window,
            baseline_batches=cfg.baseline_batches,
            precision_floor=cfg.precision_floor,
            metrics=self.obs.metrics,
        )

    def _finish_wiring(self) -> None:
        """Wiring shared by both startup paths, post rule/repo setup."""
        self.chimera.enable_quality_telemetry(
            QualityTelemetry(provenance=self.provenance, health=self.tracker)
        )
        self.tracker.on_alert.append(self._on_alert)
        self.incremental = self.chimera.track_fired_map(
            "rule-based", batch_stream=self.stream
        )

    def _fresh(self) -> None:
        cfg = self.config
        self._build_world(add_startup_rules=True)
        self.provenance = ProvenanceLog(
            capacity=cfg.provenance_capacity,
            spool=self.store.spool_path,
            spool_all=True,
        )
        self.repository = RuleRepository.open(
            self.store.repo_root, clock=self.clock, fsync=self.fsync
        )
        self.repository.default_author = "service"
        bind_chimera(self.repository, self.chimera)
        self.manager = IncidentManager(self.chimera, repository=self.repository)
        self._finish_wiring()
        self.series = SeriesStore(
            self.store.series_path, window=cfg.series_window, fsync=self.fsync
        )
        self._prev_metrics = self.obs.metrics.snapshot()
        # Ordinal-0 checkpoint: a kill before the first batch resumes too.
        self._checkpoint()

    def _resume(self, state: Dict[str, Any]) -> None:
        cfg_state = ServiceConfig(**state["config"])
        if self._config_given and self.config.fingerprint() != cfg_state.fingerprint():
            raise ValueError(
                f"config fingerprint mismatch: checkpoint has "
                f"{cfg_state.fingerprint()}, caller passed {self.config.fingerprint()}"
            )
        self.config = cfg_state
        cfg = self.config

        # 1. Roll the append-only files back to the checkpointed offsets —
        #    before anything opens an appender on them.
        self.rolled_back = self.store.truncate(state["offsets"])

        # 2. Deterministic startup re-execution (rules discarded).
        self._build_world(
            metrics=MetricsRegistry.load(state["metrics"]),
            add_startup_rules=False,
        )

        # 3. Repository pinned at the checkpointed change-log head; any
        #    entries a crashed run wrote past it are truncated away.
        self.repository = RuleRepository.open(
            self.store.repo_root,
            clock=self.clock,
            fsync=self.fsync,
            pin_seq=int(state["repo_head_seq"]),
        )
        self.repository.default_author = "service"

        # 4. Materialize the repository back into the pipeline's rulesets
        #    (ids, payloads, enabled flags all round-trip), then bind —
        #    the reconcile is silent because the states already agree.
        for stage in _SERVICE_STAGES:
            target = self.chimera._stage_ruleset(stage)
            for rule in self.repository.materialize(f"chimera/{stage}"):
                target.add(rule)
        bind_chimera(self.repository, self.chimera)

        # 5. Clock and every RNG stream, restored verbatim.
        self.clock.now = float(state["clock_now"])
        _rng_load(self.stream.rng, state["stream"]["rng"])
        self.stream._next_batch = int(state["stream"]["next_batch"])
        _rng_load(self.generator.rng, state["generator"]["rng"])
        self.generator._next_id = int(state["generator"]["next_id"])
        _rng_load(self.analyst.rng, state["analyst_rng"])
        self.chimera._batch_counter = int(state["batch_counter"])
        self._rule_seq = int(state["rule_seq"])

        # 6. Provenance: replay the (already truncated) spool.
        if os.path.exists(self.store.spool_path):
            self.provenance = ProvenanceLog.replay(
                self.store.spool_path, capacity=cfg.provenance_capacity
            )
        else:
            self.provenance = ProvenanceLog(
                capacity=cfg.provenance_capacity,
                spool=self.store.spool_path,
                spool_all=True,
            )

        # 7. Health windows, verbatim.
        self.tracker.load_state(state["tracker"])

        # 8. Incident log + the service-local incident counter.
        self.manager = IncidentManager(self.chimera, repository=self.repository)
        self.manager.incidents = [
            _incident_from_dict(payload) for payload in state["incidents"]
        ]
        self._incident_seq = int(state["incident_seq"])

        self._finish_wiring()

        # 9. Incremental executor: re-admit the journalled corpus (prepare
        #    + index only — no re-evaluation), then load the match store
        #    verbatim and re-prime the fired-map memo.
        items = [
            _item_from_dict(payload)
            for record in self.store.read_journal()
            for payload in record["items"]
        ]
        self.incremental.restore_items(items)
        self.incremental.restore_state(state["executor"])

        # 10. Run counters and telemetry stores.
        self.ordinal = int(state["ordinal"])
        self.digest_chain = str(state["digest_chain"])
        self.totals = {key: int(value) for key, value in state["totals"].items()}
        self.series = SeriesStore(
            self.store.series_path, window=cfg.series_window, fsync=self.fsync
        )
        self._prev_metrics = self.obs.metrics.snapshot()
        self.resumed = True

    # -- the batch loop -----------------------------------------------------------

    def process_batch(self) -> Tuple[Batch, BatchResult]:
        """Ingest → journal → classify → digest → sample → checkpoint."""
        if not self._started:
            raise RuntimeError("service not started; call start() first")
        started = time.perf_counter()
        # next_batch() pushes the items into the incremental executor via
        # its stream subscription before returning.
        batch = self.stream.next_batch()
        self.ordinal += 1
        self.store.append_batch({
            "ordinal": self.ordinal,
            "batch_id": batch.batch_id,
            "vendor": batch.vendor,
            "arrived_at": batch.arrived_at,
            "items": [_item_to_dict(item) for item in batch.items],
        })
        self.crash_plan.reached("journal-appended")
        result = self.chimera.classify_batch(batch.items, batch_id=batch.batch_id)
        self.crash_plan.reached("classified")
        fired = self.incremental.fired_map()
        payload = json.dumps(
            {item: list(rules) for item, rules in fired.items()},
            sort_keys=True, separators=(",", ":"),
        )
        self.digest_chain = hashlib.sha256(
            (self.digest_chain + batch.batch_id + payload).encode("utf-8")
        ).hexdigest()
        self.totals["items"] += len(batch.items)
        self.totals["classified"] += len(result.classified_pairs)
        self.totals["declined"] += len(result.declined)
        self.totals["rejected"] += len(result.rejected)
        wall_ms = (time.perf_counter() - started) * 1000.0
        self._sample(batch, result, fired, wall_ms)
        self.crash_plan.reached("before-checkpoint")
        self._checkpoint()
        self.crash_plan.reached("after-checkpoint")
        self.obs.tracer.clear()  # bound span memory over the long run
        return batch, result

    def run(self, batches: int) -> None:
        """Process ``batches`` more batches."""
        if batches < 0:
            raise ValueError(f"batches must be non-negative, got {batches}")
        for _ in range(batches):
            self.process_batch()

    def run_to(self, ordinal: int) -> None:
        """Process batches until ``self.ordinal`` reaches ``ordinal``."""
        while self.ordinal < ordinal:
            self.process_batch()

    # -- persistence --------------------------------------------------------------

    def _sample(
        self,
        batch: Batch,
        result: BatchResult,
        fired: Dict[str, List[str]],
        wall_ms: float,
    ) -> None:
        snapshot = self.obs.metrics.snapshot()
        delta = self.obs.metrics.delta(self._prev_metrics)
        self._prev_metrics = snapshot
        self.series.append({
            "ordinal": self.ordinal,
            "batch_id": batch.batch_id,
            "vendor": batch.vendor,
            "arrived_day": round(batch.arrived_at, 6),
            "items": len(batch.items),
            "classified": len(result.classified_pairs),
            "declined": len(result.declined),
            "rejected": len(result.rejected),
            "coverage": round(result.coverage, 6),
            "fired_pairs": sum(len(rules) for rules in fired.values()),
            "alerts_total": len(self.tracker.alerts),
            "incidents_open": self.open_incidents(),
            "breakers_degraded": len(self.chimera.health.degraded_stages()),
            "wall_ms": round(wall_ms, 3),
            "delta": delta,
        })

    def _checkpoint(self) -> None:
        self.store.save({
            "version": CHECKPOINT_VERSION,
            "fingerprint": self.config.fingerprint(),
            "config": self.config.to_dict(),
            "ordinal": self.ordinal,
            "digest_chain": self.digest_chain,
            "clock_now": self.clock.now,
            "stream": {
                "rng": _rng_dump(self.stream.rng),
                "next_batch": self.stream._next_batch,
            },
            "generator": {
                "rng": _rng_dump(self.generator.rng),
                "next_id": self.generator._next_id,
            },
            "analyst_rng": _rng_dump(self.analyst.rng),
            "batch_counter": self.chimera._batch_counter,
            "rule_seq": self._rule_seq,
            "offsets": {
                "journal": self.store.journal_offset(),
                "spool": self.provenance.spool_offset(),
                "series": self.series.offset(),
            },
            "repo_head_seq": self._repo_head_seq(),
            "executor": self.incremental.export_state(),
            "tracker": self.tracker.state_dict(),
            "incidents": [
                _incident_to_dict(incident) for incident in self.manager.incidents
            ],
            "incident_seq": self._incident_seq,
            "metrics": self.obs.metrics.dump(),
            "totals": dict(self.totals),
        })

    def _repo_head_seq(self) -> int:
        entries = self.repository.log.entries
        return entries[-1].seq if entries else 0

    # -- views (identity contract + console) --------------------------------------

    def open_incidents(self) -> int:
        return sum(
            1 for incident in self.manager.incidents if incident.status != "closed"
        )

    def identity(self) -> Dict[str, Any]:
        """The byte-identity surface: everything replay must reproduce.

        Wall-clock telemetry (metrics, tracer spans, ``wall_ms`` series
        values) is deliberately excluded — it measures the host, not the
        computation.
        """
        return {
            "ordinal": self.ordinal,
            "digest_chain": self.digest_chain,
            "clock_now": self.clock.now,
            "batch_counter": self.chimera._batch_counter,
            "tracker": self.tracker.state_dict(),
            "incidents": [
                _incident_to_dict(incident) for incident in self.manager.incidents
            ],
            "incident_seq": self._incident_seq,
            "provenance_records": self.provenance.total_records,
            "rules": self.chimera.rule_count(),
            "repo_head_seq": self._repo_head_seq(),
            "totals": dict(self.totals),
        }

    def identity_json(self) -> str:
        return json.dumps(self.identity(), sort_keys=True, indent=2) + "\n"

    def status(self) -> Dict[str, Any]:
        """The ``/health`` document."""
        return {
            "status": "ok",
            "ordinal": self.ordinal,
            "resumed": self.resumed,
            "sim_days": round(self.clock.now, 6),
            "clock_day": self.clock.day,
            "totals": dict(self.totals),
            "rules": self.chimera.rule_count(),
            "incidents_total": len(self.manager.incidents),
            "incidents_open": self.open_incidents(),
            "alerts_total": len(self.tracker.alerts),
            "provenance_records": self.provenance.total_records,
            "repo_changes": len(self.repository.log),
            "stages": self.chimera.health.report(),
            "digest_chain": self.digest_chain,
        }

    def incidents_view(self) -> List[Dict[str, Any]]:
        return [
            _incident_to_dict(incident) for incident in self.manager.incidents
        ]

    def rule_view(self, rule_id: str) -> Optional[Dict[str, Any]]:
        """The ``/rules/<id>`` document: placement, health, fired items."""
        stage_name = None
        enabled = None
        for stage in _SERVICE_STAGES:
            ruleset = self.chimera._stage_ruleset(stage)
            if rule_id in ruleset:
                stage_name = stage
                enabled = ruleset.is_enabled(rule_id)
                break
        health = self.tracker.report().get(rule_id)
        if stage_name is None and health is None:
            return None
        fired_items = sorted(
            item
            for item, rules in self.incremental.fired_map().items()
            if rule_id in rules
        )
        return {
            "rule_id": rule_id,
            "stage": stage_name,
            "enabled": enabled,
            "health": health,
            "fired_count": len(fired_items),
            "fired_items": fired_items[:100],
        }
