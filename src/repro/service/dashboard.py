"""Text dashboard over a service root's checkpoint + metric series.

``repro dashboard`` renders entirely from *disk* (``checkpoint.json``
and ``series.jsonl``) — it never needs the daemon alive, so it works on
a crashed root, in CI artifact uploads, and over the shoulder of a
running daemon alike. Sparklines are plain unicode blocks; no curses,
no dependencies.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence

from repro.service.checkpoint import CHECKPOINT_NAME, SERIES_NAME
from repro.service.series import load_series

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 48) -> str:
    """Render the last ``width`` values as a unicode sparkline."""
    tail = [float(v) for v in values][-width:]
    if not tail:
        return "(no samples)"
    low = min(tail)
    high = max(tail)
    span = high - low
    if span <= 0:
        return _BLOCKS[0] * len(tail)
    return "".join(
        _BLOCKS[min(len(_BLOCKS) - 1, int((v - low) / span * len(_BLOCKS)))]
        for v in tail
    )


def _column(samples: List[Dict[str, Any]], key: str) -> List[float]:
    return [float(s.get(key, 0.0) or 0.0) for s in samples]


def render_dashboard(
    root: str, window: int = 48, width: int = 48
) -> str:
    """The full dashboard text for a service root."""
    checkpoint_path = os.path.join(root, CHECKPOINT_NAME)
    if not os.path.exists(checkpoint_path):
        return f"no checkpoint at {checkpoint_path} — has the service run?\n"
    with open(checkpoint_path, "r", encoding="utf-8") as handle:
        state = json.load(handle)
    samples = load_series(os.path.join(root, SERIES_NAME), window=window)

    totals = state.get("totals", {})
    incidents = state.get("incidents", [])
    open_incidents = [i for i in incidents if i.get("status") != "closed"]
    lines = [
        f"repro stream service — {root}",
        "=" * max(24, len(root) + 24),
        (
            f"ordinal {state.get('ordinal', 0)}"
            f" | sim day {state.get('clock_now', 0.0):.2f}"
            f" | digest {state.get('digest_chain', '')[:16]}…"
            f" | config {state.get('fingerprint', '?')}"
        ),
        (
            f"items {totals.get('items', 0)}"
            f" | classified {totals.get('classified', 0)}"
            f" | declined {totals.get('declined', 0)}"
            f" | rejected {totals.get('rejected', 0)}"
        ),
        (
            f"incidents {len(incidents)} ({len(open_incidents)} open)"
            f" | repo head seq {state.get('repo_head_seq', 0)}"
        ),
        "",
    ]
    if samples:
        rows = [
            ("items/batch", _column(samples, "items"), "{:.0f}"),
            ("coverage", _column(samples, "coverage"), "{:.3f}"),
            ("fired pairs", _column(samples, "fired_pairs"), "{:.0f}"),
            ("batch wall ms", _column(samples, "wall_ms"), "{:.1f}"),
            ("alerts (cum)", _column(samples, "alerts_total"), "{:.0f}"),
            ("incidents open", _column(samples, "incidents_open"), "{:.0f}"),
        ]
        label_width = max(len(label) for label, _, _ in rows)
        lines.append(f"last {len(samples)} batches:")
        for label, values, fmt in rows:
            last = fmt.format(values[-1]) if values else "-"
            lines.append(
                f"  {label.ljust(label_width)}  {sparkline(values, width)}  {last}"
            )
        lines.append("")
    else:
        lines.append("no metric samples yet\n")
    if open_incidents:
        lines.append("open incidents:")
        for incident in open_incidents[-10:]:
            rule_ids = ", ".join(incident.get("rule_ids", [])[:4])
            lines.append(
                f"  {incident.get('incident_id')}"
                f" [{incident.get('kind')}] {incident.get('status')}"
                + (f" rules: {rule_ids}" if rule_ids else "")
            )
        lines.append("")
    return "\n".join(lines) + "\n"
