"""Programmatic crash-kill-resume scenarios for the streaming service.

Shared by the durability tests and the CI serve-smoke job. The central
claim (ISSUE acceptance bar): a daemon killed at *any* batch boundary —
or mid-checkpoint, or with a torn journal/spool tail — resumes to the
exact identity surface an uninterrupted run reaches: same fired-map
digest chain, same health windows, same incident log, byte for byte.
"""

from __future__ import annotations

import json
import shutil
from typing import Any, Dict, Optional

from repro.service.daemon import ServiceConfig, StreamService
from repro.testing.faults import CrashPlan, SimulatedCrash


def run_service(
    root: str,
    batches: int,
    config: Optional[ServiceConfig] = None,
    fsync: bool = True,
) -> Dict[str, Any]:
    """Run a service for ``batches`` batches; returns its identity."""
    service = StreamService(root, config=config, fsync=fsync)
    try:
        service.start()
        service.run_to(batches)
        return service.identity()
    finally:
        service.close()


def uninterrupted_identity(
    scratch_root: str,
    batches: int,
    config: Optional[ServiceConfig] = None,
    fsync: bool = True,
) -> Dict[str, Any]:
    """The reference run: same config, no kill, in a scratch root."""
    shutil.rmtree(scratch_root, ignore_errors=True)
    return run_service(scratch_root, batches, config=config, fsync=fsync)


def crash_resume_identity(
    root: str,
    batches: int,
    crash_at: str,
    crash_on_hit: int = 1,
    config: Optional[ServiceConfig] = None,
    fsync: bool = True,
    mangle_after_crash=None,
) -> Dict[str, Any]:
    """Kill a run at a named crash point, resume it, run to ``batches``.

    ``crash_at`` is one of the daemon's barriers (``journal-appended``,
    ``classified``, ``before-checkpoint``, ``after-checkpoint``);
    ``crash_on_hit`` picks which occurrence dies. ``mangle_after_crash``
    (callable taking the root) can tear files between the kill and the
    resume — the torn-write half of the fault model. Returns the resumed
    run's final identity; the caller compares it against
    :func:`uninterrupted_identity` of a scratch root.
    """
    plan = CrashPlan(crash_at=crash_at, on_hit=crash_on_hit)
    crashed = StreamService(root, config=config, fsync=fsync, crash_plan=plan)
    died = False
    try:
        crashed.start()
        crashed.run_to(batches)
    except SimulatedCrash:
        died = True
    finally:
        # A SIGKILL'd process runs no cleanup: only release the OS-level
        # file handles (required to reopen on one platform-neutral path),
        # never flush/checkpoint anything.
        crashed.store.close()
        if getattr(crashed, "series", None) is not None:
            crashed.series.close()
        if hasattr(crashed, "provenance"):
            crashed.provenance.close()
        if hasattr(crashed, "repository"):
            crashed.repository.log.close()
    if not died:
        # The plan never fired (crash point past the run) — the "crash"
        # run already completed; its identity is the answer.
        return run_service(root, batches, config=config, fsync=fsync)
    if mangle_after_crash is not None:
        mangle_after_crash(root)
    return run_service(root, batches, config=config, fsync=fsync)


def identity_equal(left: Dict[str, Any], right: Dict[str, Any]) -> bool:
    """Byte-level comparison of two identity surfaces."""
    canon = lambda payload: json.dumps(payload, sort_keys=True)  # noqa: E731
    return canon(left) == canon(right)
