"""Dependency-free HTTP console for a running :class:`StreamService`.

Stdlib ``http.server`` only — the container constraint rules out real web
frameworks, and an operations read-path doesn't need one. Endpoints:

* ``GET /health``      — liveness + run summary (ordinal, incidents, breakers)
* ``GET /metrics``     — the full MetricsRegistry snapshot
* ``GET /incidents``   — the incident log
* ``GET /rules/<id>``  — one rule's placement, health, and fired items
* ``GET /series``      — recent metric samples (``?n=`` bounds the tail)

All responses are JSON. The server runs on a daemon thread
(:class:`ThreadingHTTPServer`); handlers only *read* service state, and
every view method builds a fresh document, so a request racing the batch
loop sees a consistent-enough operational snapshot (the identity
contract lives in the checkpoint, not here).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.service.daemon import StreamService


class _ConsoleHandler(BaseHTTPRequestHandler):
    service: StreamService  # injected by serve()

    # Silence per-request stderr lines; the daemon owns the terminal.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def _send_json(self, payload: Any, status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True, indent=2).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        service = self.service
        try:
            if route == "/health":
                self._send_json(service.status())
            elif route == "/metrics":
                self._send_json(service.obs.metrics.snapshot())
            elif route == "/incidents":
                self._send_json(service.incidents_view())
            elif route == "/series":
                query = parse_qs(parsed.query)
                count = int(query.get("n", ["60"])[0])
                self._send_json(service.series.tail(count))
            elif route.startswith("/rules/"):
                rule_id = route[len("/rules/"):]
                view = service.rule_view(rule_id)
                if view is None:
                    self._send_json({"error": f"unknown rule {rule_id!r}"}, 404)
                else:
                    self._send_json(view)
            elif route == "/":
                self._send_json({
                    "service": "repro-stream-service",
                    "endpoints": [
                        "/health", "/metrics", "/incidents",
                        "/rules/<rule_id>", "/series?n=60",
                    ],
                })
            else:
                self._send_json({"error": f"no route {route!r}"}, 404)
        except Exception as error:  # surface, don't kill the server thread
            self._send_json({"error": f"{type(error).__name__}: {error}"}, 500)


class ServiceHttpServer:
    """A ThreadingHTTPServer bound to a service, running on a daemon thread."""

    def __init__(self, service: StreamService, host: str = "127.0.0.1", port: int = 0):
        handler = type("BoundHandler", (_ConsoleHandler,), {"service": service})
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self.httpd.server_address[0], self.httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ServiceHttpServer":
        if self.thread is not None:
            raise RuntimeError("server already started")
        self.thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-serve", daemon=True
        )
        self.thread.start()
        return self

    def stop(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self.thread is not None:
            self.thread.join(timeout=5)
            self.thread = None

    def __enter__(self) -> "ServiceHttpServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def serve(
    service: StreamService, host: str = "127.0.0.1", port: int = 0
) -> ServiceHttpServer:
    """Start the operations console for ``service``; returns the server."""
    return ServiceHttpServer(service, host=host, port=port).start()
