"""Ring-buffered metric time series, persisted as JSONL.

After every batch the daemon samples the
:class:`~repro.observability.metrics.MetricsRegistry` *delta* since the
previous sample (cheap, copy-free — satellite API on the registry) plus
a handful of gauges (ordinal, clock day, open incidents, wall latency)
and appends the sample here. The in-memory ring bounds what the HTTP
console and dashboard read; the JSONL file is the durable history.

Samples are **operational telemetry, not replay state**: wall-clock
latencies differ run to run, so the byte-identity contract explicitly
excludes this file's *values* (its length is still rolled back on resume
so the sample-per-batch invariant holds).
"""

from __future__ import annotations

import os
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.core.durability import JsonlAppender, scan_jsonl


class SeriesStore:
    """Append metric samples durably; keep the recent window in memory."""

    def __init__(self, path: str, window: int = 512, fsync: bool = True):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.path = path
        self.window = window
        self.samples: Deque[Dict[str, Any]] = deque(maxlen=window)
        self.total_samples = 0
        if os.path.exists(path):
            records, _torn = scan_jsonl(path)
            self.total_samples = len(records)
            self.samples.extend(records[-window:])
        self._appender = JsonlAppender(path, fsync=fsync)

    def append(self, sample: Dict[str, Any]) -> None:
        self.samples.append(sample)
        self.total_samples += 1
        self._appender.append(sample)

    def offset(self) -> int:
        """Current durable byte length of the series file."""
        handle = self._appender._handle
        handle.flush()
        return handle.tell()

    def tail(self, count: int = 60) -> List[Dict[str, Any]]:
        """The most recent ``count`` samples, oldest first."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        window = list(self.samples)
        return window[-count:] if count else []

    def column(self, key: str, count: int = 60) -> List[float]:
        """One numeric column of the recent window (missing -> 0.0)."""
        return [float(sample.get(key, 0.0) or 0.0) for sample in self.tail(count)]

    def close(self) -> None:
        self._appender.close()

    def __enter__(self) -> "SeriesStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def load_series(path: str, window: Optional[int] = None) -> List[Dict[str, Any]]:
    """Read samples from disk without opening an appender (dashboard use)."""
    if not os.path.exists(path):
        return []
    records, _torn = scan_jsonl(path)
    return records[-window:] if window else records
