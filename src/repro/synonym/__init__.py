"""The section 5.1 synonym-discovery tool (Figure 3).

An analyst writes a rule like ``(motor | engine | \\syn) oils? -> motor oil``;
the tool mines the corpus with generalized regexes, ranks candidate
"synonyms" by TF/IDF context similarity to the golden synonyms, shows them
top-k at a time, and re-ranks with Rocchio relevance feedback after each
analyst-labelled batch — turning hours of title-combing into minutes.
"""

from repro.synonym.context import ContextMatch, ContextModel
from repro.synonym.generalize import SynonymRuleSpec, parse_syn_rule
from repro.synonym.ranker import CandidateRanker, RankedCandidate
from repro.synonym.rocchio import RocchioFeedback
from repro.synonym.session import DiscoveryReport, DiscoverySession
from repro.synonym.tool import SynonymTool

__all__ = [
    "CandidateRanker",
    "ContextMatch",
    "ContextModel",
    "DiscoveryReport",
    "DiscoverySession",
    "RankedCandidate",
    "RocchioFeedback",
    "SynonymRuleSpec",
    "SynonymTool",
    "parse_syn_rule",
]
