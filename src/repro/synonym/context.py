"""Context extraction and TF/IDF vectors for synonym candidates.

Section 5.1: each match is a tuple <candidate synonym, prefix, suffix>; the
prefix/suffix windows are 5 words; vectors are TF/IDF-weighted with
``idf_t = log(|M| / df_t)`` over the |M| matches, then normalized.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Pattern, Sequence, Tuple

from repro.utils.text import normalize_text, window
from repro.utils.vectors import SparseVector


@dataclass(frozen=True)
class ContextMatch:
    """One regex match: the candidate phrase plus its context windows."""

    candidate: str
    prefix: Tuple[str, ...]
    suffix: Tuple[str, ...]


def extract_matches(
    titles: Iterable[str],
    patterns: Sequence[Pattern],
    context_size: int = 5,
) -> List[ContextMatch]:
    """Run the (generalized) regexes over titles, collecting matches.

    Titles are normalized the same way rule matching normalizes them, so the
    regexes see the text rules would see.
    """
    matches: List[ContextMatch] = []
    for title in titles:
        normalized = normalize_text(title)
        tokens = normalized.split()
        # Token start offsets for mapping char spans to token windows.
        offsets = []
        position = 0
        for token in tokens:
            start = normalized.index(token, position)
            offsets.append(start)
            position = start + len(token)
        for pattern in patterns:
            for found in pattern.finditer(normalized):
                span_start, span_end = found.span("syn")
                first_token = _token_at(offsets, tokens, span_start)
                last_token = _token_at(offsets, tokens, max(span_start, span_end - 1))
                if first_token is None or last_token is None:
                    continue
                prefix, suffix = window(tokens, first_token, last_token + 1, context_size)
                matches.append(ContextMatch(
                    candidate=found.group("syn"),
                    prefix=tuple(prefix),
                    suffix=tuple(suffix),
                ))
    return matches


def _token_at(offsets: List[int], tokens: List[str], char_index: int):
    """Index of the token covering ``char_index``, or None."""
    for index in range(len(offsets) - 1, -1, -1):
        if offsets[index] <= char_index:
            if char_index < offsets[index] + len(tokens[index]):
                return index
            return None
    return None


class ContextModel:
    """TF/IDF prefix/suffix vectors over a set of matches.

    Built once from all matches (golden + candidates); provides normalized
    per-match vectors and per-candidate mean vectors, exactly the quantities
    of section 5.1.
    """

    def __init__(self, matches: Sequence[ContextMatch]):
        if not matches:
            raise ValueError("context model needs at least one match")
        self.matches = list(matches)
        total = len(self.matches)
        prefix_df: Dict[str, int] = defaultdict(int)
        suffix_df: Dict[str, int] = defaultdict(int)
        for match in self.matches:
            for token in set(match.prefix):
                prefix_df[token] += 1
            for token in set(match.suffix):
                suffix_df[token] += 1
        # idf = log(|M| / df); tokens in every match get idf 0 and vanish.
        self._prefix_idf = {t: math.log(total / df) for t, df in prefix_df.items()}
        self._suffix_idf = {t: math.log(total / df) for t, df in suffix_df.items()}

    def _vector(self, tokens: Sequence[str], idf: Dict[str, float]) -> SparseVector:
        counts: Dict[str, int] = defaultdict(int)
        for token in tokens:
            counts[token] += 1
        weighted = {
            token: count * idf.get(token, 0.0) for token, count in counts.items()
        }
        return SparseVector(weighted).normalized()

    def prefix_vector(self, match: ContextMatch) -> SparseVector:
        return self._vector(match.prefix, self._prefix_idf)

    def suffix_vector(self, match: ContextMatch) -> SparseVector:
        return self._vector(match.suffix, self._suffix_idf)

    def mean_vectors(
        self, matches: Sequence[ContextMatch]
    ) -> Tuple[SparseVector, SparseVector]:
        """Mean normalized (prefix, suffix) vectors over ``matches``."""
        from repro.utils.vectors import mean_vector

        prefix = mean_vector(self.prefix_vector(m) for m in matches)
        suffix = mean_vector(self.suffix_vector(m) for m in matches)
        return prefix, suffix

    def group_by_candidate(
        self, matches: Sequence[ContextMatch]
    ) -> Dict[str, List[ContextMatch]]:
        grouped: Dict[str, List[ContextMatch]] = defaultdict(list)
        for match in matches:
            grouped[match.candidate].append(match)
        return dict(grouped)
