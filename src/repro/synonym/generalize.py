"""Parsing ``\\syn`` rules and building generalized regexes.

Given ``(motor | engine | \\syn) oils? -> motor oil`` the tool must know
(a) the golden synonyms the analyst already wrote ("motor", "engine"),
(b) the surrounding pattern before/after the marked disjunction, and
(c) the generalized regexes — ``(\\w+) oils?``, ``(\\w+\\s+\\w+) oils?``, ...
— that harvest candidate phrases of up to ``max_words`` words (section 5.1
currently sets 3).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Pattern, Tuple

from repro.core.errors import RuleParseError

_SYN_MARKER = r"\syn"


@dataclass(frozen=True)
class SynonymRuleSpec:
    """A parsed ``\\syn`` rule.

    ``before``/``after`` are the regex fragments around the marked
    disjunction (with surrounding whitespace normalized), ``golden`` are the
    analyst's existing disjuncts, ``target_type`` is the rule's type.
    """

    before: str
    golden: Tuple[str, ...]
    after: str
    target_type: str
    source: str

    def expanded_pattern(self, synonyms: Tuple[str, ...]) -> str:
        """Rebuild the rule regex with ``synonyms`` added to the disjunction."""
        disjuncts = list(self.golden) + [s for s in synonyms if s not in self.golden]
        body = "|".join(disjuncts)
        return f"{self.before}({body}){self.after}".strip()

    def golden_pattern(self) -> str:
        """The rule regex restricted to the golden synonyms."""
        return self.expanded_pattern(())


def parse_syn_rule(source: str) -> SynonymRuleSpec:
    """Parse a rule of the form ``... ( a | b | \\syn ) ... -> type``.

    Raises :class:`~repro.core.errors.RuleParseError` when there is no
    ``->``, no ``\\syn`` marker, or the marker is not inside a parenthesized
    disjunction.
    """
    if "->" not in source:
        raise RuleParseError(source, "missing '->'")
    condition, _, target = source.rpartition("->")
    condition = condition.strip()
    target = target.strip()
    if not target:
        raise RuleParseError(source, "empty target type")
    marker_at = condition.find(_SYN_MARKER)
    if marker_at == -1:
        raise RuleParseError(source, "no \\syn marker")

    # Find the parenthesized group enclosing the marker.
    open_at = condition.rfind("(", 0, marker_at)
    if open_at == -1:
        raise RuleParseError(source, "\\syn must appear inside a (...) disjunction")
    depth = 1
    close_at = None
    for index in range(open_at + 1, len(condition)):
        if condition[index] == "(":
            depth += 1
        elif condition[index] == ")":
            depth -= 1
            if depth == 0:
                close_at = index
                break
    if close_at is None or close_at < marker_at:
        raise RuleParseError(source, "unbalanced parentheses around \\syn")

    body = condition[open_at + 1 : close_at]
    disjuncts = [d.strip() for d in body.split("|")]
    golden = tuple(d for d in disjuncts if d and d != _SYN_MARKER)
    if _SYN_MARKER not in [d for d in disjuncts]:
        raise RuleParseError(source, "\\syn must be a whole disjunct")
    # Analysts write disjunctions with readability spaces ("a | b"); regex
    # semantics need them tight.
    tighten = lambda text: re.sub(r"\s*\|\s*", "|", text.strip())
    before = tighten(condition[:open_at])
    after = tighten(condition[close_at + 1 :])
    if before:
        before = before + " "
    if after:
        after = " " + after
    return SynonymRuleSpec(
        before=before,
        golden=golden,
        after=after,
        target_type=target,
        source=source,
    )


def generalized_regexes(
    spec: SynonymRuleSpec, max_words: int = 3
) -> List[Pattern]:
    """Compiled generalized regexes with a ``syn`` capture group.

    One per candidate length 1..``max_words``:
    ``(\\w+) oils?``, ``(\\w+\\s+\\w+) oils?``, ``(\\w+\\s+\\w+\\s+\\w+) oils?``.
    """
    if max_words < 1:
        raise ValueError(f"max_words must be >= 1, got {max_words}")
    patterns = []
    for length in range(1, max_words + 1):
        blank = r"\w+" + r"".join([r"\s+\w+"] * (length - 1))
        raw = rf"{spec.before}(?P<syn>{blank}){spec.after}"
        patterns.append(re.compile(rf"(?<![\w])(?:{raw})(?![\w])"))
    return patterns


def golden_regex(spec: SynonymRuleSpec) -> Pattern:
    """Compiled regex capturing the golden synonyms in context."""
    body = "|".join(spec.golden) if spec.golden else r"\w+"
    raw = rf"{spec.before}(?P<syn>{body}){spec.after}"
    return re.compile(rf"(?<![\w])(?:{raw})(?![\w])")
