"""Candidate ranking by context similarity to the golden synonyms.

``score(c) = wp * prefix_sim(c) + ws * suffix_sim(c)`` with wp = ws = 0.5
(section 5.1), where the similarities are cosines between the candidate's
mean context vectors and the golden mean context vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.synonym.context import ContextMatch, ContextModel
from repro.utils.vectors import SparseVector, cosine_similarity


@dataclass(frozen=True)
class RankedCandidate:
    """A candidate synonym with its score and supporting matches."""

    phrase: str
    score: float
    prefix_similarity: float
    suffix_similarity: float
    n_matches: int
    sample_matches: Tuple[ContextMatch, ...] = ()


class CandidateRanker:
    """Scores candidates against (possibly feedback-adjusted) golden vectors."""

    def __init__(
        self,
        model: ContextModel,
        prefix_weight: float = 0.5,
        suffix_weight: float = 0.5,
        samples_per_candidate: int = 3,
    ):
        if prefix_weight < 0 or suffix_weight < 0:
            raise ValueError("similarity weights must be non-negative")
        if prefix_weight + suffix_weight <= 0:
            raise ValueError("at least one similarity weight must be positive")
        self.model = model
        self.prefix_weight = prefix_weight
        self.suffix_weight = suffix_weight
        self.samples_per_candidate = samples_per_candidate

    def candidate_means(
        self, grouped: Dict[str, List[ContextMatch]]
    ) -> Dict[str, Tuple[SparseVector, SparseVector]]:
        """Per-candidate mean (prefix, suffix) vectors."""
        return {
            phrase: self.model.mean_vectors(matches)
            for phrase, matches in grouped.items()
        }

    def rank(
        self,
        grouped: Dict[str, List[ContextMatch]],
        golden_prefix: SparseVector,
        golden_suffix: SparseVector,
    ) -> List[RankedCandidate]:
        """All candidates, best first (ties broken alphabetically)."""
        ranked: List[RankedCandidate] = []
        for phrase in sorted(grouped):
            matches = grouped[phrase]
            mean_prefix, mean_suffix = self.model.mean_vectors(matches)
            prefix_sim = cosine_similarity(mean_prefix, golden_prefix)
            suffix_sim = cosine_similarity(mean_suffix, golden_suffix)
            score = self.prefix_weight * prefix_sim + self.suffix_weight * suffix_sim
            ranked.append(RankedCandidate(
                phrase=phrase,
                score=score,
                prefix_similarity=prefix_sim,
                suffix_similarity=suffix_sim,
                n_matches=len(matches),
                sample_matches=tuple(matches[: self.samples_per_candidate]),
            ))
        ranked.sort(key=lambda c: (-c.score, c.phrase))
        return ranked
