"""Rocchio relevance feedback over the golden context vectors.

Section 5.1: after each analyst-labelled top-k batch,

    M'_p = alpha * M_p + beta/|Cr| * sum_{c in Cr} M_{p,c}
                       - gamma/|Cnr| * sum_{c in Cnr} M_{p,c}

(and likewise for suffix vectors), where Cr / Cnr are the candidates the
analyst accepted / rejected this iteration.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.utils.vectors import SparseVector, mean_vector


class RocchioFeedback:
    """Holds the evolving golden (prefix, suffix) vectors."""

    def __init__(
        self,
        golden_prefix: SparseVector,
        golden_suffix: SparseVector,
        alpha: float = 1.0,
        beta: float = 0.75,
        gamma: float = 0.25,
    ):
        for value, label in ((alpha, "alpha"), (beta, "beta"), (gamma, "gamma")):
            if value < 0:
                raise ValueError(f"{label} must be non-negative, got {value}")
        self.prefix = golden_prefix
        self.suffix = golden_suffix
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma

    def update(
        self,
        accepted: Sequence[Tuple[SparseVector, SparseVector]],
        rejected: Sequence[Tuple[SparseVector, SparseVector]],
    ) -> None:
        """Fold one iteration's labelled candidate vectors into the means."""
        self.prefix = self._adjust(self.prefix, [a[0] for a in accepted], [r[0] for r in rejected])
        self.suffix = self._adjust(self.suffix, [a[1] for a in accepted], [r[1] for r in rejected])

    def _adjust(
        self,
        current: SparseVector,
        accepted: List[SparseVector],
        rejected: List[SparseVector],
    ) -> SparseVector:
        updated = current.scale(self.alpha)
        if accepted:
            updated = updated.add(mean_vector(accepted).scale(self.beta))
        if rejected:
            updated = updated.subtract(mean_vector(rejected).scale(self.gamma))
        # Negative components are clipped: Rocchio for short contexts works
        # better without anti-weights dominating (standard IR practice).
        clipped = {k: v for k, v in updated.items() if v > 0}
        return SparseVector(clipped)
