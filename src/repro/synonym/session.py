"""Interactive discovery sessions: tool + analyst, iterated to convergence.

Reproduces the section 5.1 protocol: show the top k=10 candidates with
sample titles, the analyst accepts/rejects, the tool re-ranks, "until either
all candidates ... have been verified by the analyst, or when the analyst
thinks he or she has found enough synonyms". The session also accounts for
analyst time: the paper reports minutes per regex, with candidate reviews
as the unit of effort (vs combing the whole corpus by hand).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.analyst.analyst import SimulatedAnalyst
from repro.observability import Observability, ensure_observability
from repro.synonym.tool import SynonymTool


@dataclass
class DiscoveryReport:
    """Outcome of one tool-assisted synonym-discovery session."""

    rule_source: str
    target_type: str
    synonyms_found: List[str] = field(default_factory=list)
    iterations: int = 0
    first_find_iteration: int = 0  # 0 = never found anything
    candidates_reviewed: int = 0
    corpus_titles: int = 0
    expanded_pattern: str = ""

    @property
    def succeeded(self) -> bool:
        return bool(self.synonyms_found)

    def review_minutes(self, seconds_per_candidate: float = 6.0) -> float:
        """Analyst effort proxy: time to review the shown candidates.

        The paper reports ~4 minutes per regex with the tool vs hours of
        manual corpus-combing; at ~6s per shown candidate the simulated
        sessions land in the same regime.
        """
        return self.candidates_reviewed * seconds_per_candidate / 60.0


class DiscoverySession:
    """Drives a :class:`SynonymTool` with a :class:`SimulatedAnalyst`.

    ``slot`` names the modifier family the analyst is expanding (their
    domain knowledge); ``enough`` lets the analyst stop early once that many
    synonyms are found, and ``patience`` stops after that many consecutive
    all-reject pages (the analyst decides they have seen enough noise).
    """

    def __init__(
        self,
        tool: SynonymTool,
        analyst: SimulatedAnalyst,
        slot: Optional[str] = None,
        top_k: int = 10,
        max_iterations: int = 25,
        enough: Optional[int] = None,
        patience: int = 3,
        observability: Optional[Observability] = None,
    ):
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        self.tool = tool
        self.analyst = analyst
        self.slot = slot
        self.top_k = top_k
        self.max_iterations = max_iterations
        self.enough = enough
        self.patience = patience
        self.observability = ensure_observability(observability)

    def run(self, corpus_titles: int = 0) -> DiscoveryReport:
        obs = self.observability
        report = DiscoveryReport(
            rule_source=self.tool.spec.source,
            target_type=self.tool.spec.target_type,
            corpus_titles=corpus_titles,
        )
        with obs.span(
            "synonym.session", target_type=self.tool.spec.target_type
        ) as session_span:
            dry_pages = 0
            for _ in range(self.max_iterations):
                page = self.tool.next_page(self.top_k)
                if not page:
                    break
                report.iterations += 1
                accepted: List[str] = []
                rejected: List[str] = []
                with obs.span(
                    "synonym.page", page=report.iterations, candidates=len(page)
                ) as page_span:
                    for candidate in page:
                        report.candidates_reviewed += 1
                        verdict = self.analyst.judge_synonym(
                            self.tool.spec.target_type, self.slot, candidate.phrase
                        )
                        if verdict:
                            accepted.append(candidate.phrase)
                        else:
                            rejected.append(candidate.phrase)
                    self.tool.feedback(accepted, rejected)
                    page_span.set_attribute("accepted", len(accepted))
                if accepted and not report.synonyms_found:
                    report.first_find_iteration = report.iterations
                report.synonyms_found.extend(accepted)
                dry_pages = dry_pages + 1 if not accepted else 0
                if (
                    self.enough is not None
                    and len(report.synonyms_found) >= self.enough
                ):
                    break
                if dry_pages >= self.patience:
                    break
            report.expanded_pattern = self.tool.expanded_rule_pattern()
            session_span.set_attribute("iterations", report.iterations)
            session_span.set_attribute("synonyms_found", len(report.synonyms_found))
        if obs.enabled:
            obs.metrics.counter("synonym_sessions_total").inc()
            obs.metrics.counter("synonym_candidates_reviewed_total").inc(
                report.candidates_reviewed
            )
            obs.metrics.counter("synonym_accepted_total").inc(
                len(report.synonyms_found)
            )
        return report
