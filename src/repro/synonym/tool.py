"""The synonym tool: candidate mining + ranking + feedback re-ranking."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.synonym.context import ContextMatch, ContextModel, extract_matches
from repro.synonym.generalize import (
    SynonymRuleSpec,
    generalized_regexes,
    golden_regex,
    parse_syn_rule,
)
from repro.synonym.ranker import CandidateRanker, RankedCandidate
from repro.synonym.rocchio import RocchioFeedback


class SynonymTool:
    """One tool instance per ``\\syn`` rule and corpus.

    Workflow (Figure 3): ``candidates = tool.initial_ranking()``; show the
    analyst ``top_k`` at a time; call :meth:`feedback` with the accepted and
    rejected phrases; repeat with the re-ranked remainder.
    """

    def __init__(
        self,
        rule_source: str,
        corpus: Sequence[str],
        max_words: int = 3,
        context_size: int = 5,
        prefix_weight: float = 0.5,
        suffix_weight: float = 0.5,
        use_feedback: bool = True,
    ):
        self.spec: SynonymRuleSpec = parse_syn_rule(rule_source)
        if not self.spec.golden:
            raise ValueError(
                "the rule needs at least one golden synonym next to \\syn"
            )
        self.use_feedback = use_feedback

        golden_matches = extract_matches(corpus, [golden_regex(self.spec)], context_size)
        candidate_matches = extract_matches(
            corpus, generalized_regexes(self.spec, max_words), context_size
        )
        golden_set: Set[str] = set(self.spec.golden)
        candidate_matches = [
            m for m in candidate_matches if m.candidate not in golden_set
        ]
        self.golden_matches = golden_matches
        self.candidate_matches = candidate_matches
        all_matches = golden_matches + candidate_matches
        if not all_matches:
            raise ValueError("the rule matched nothing in the corpus")
        self.model = ContextModel(all_matches)
        self.ranker = CandidateRanker(
            self.model, prefix_weight=prefix_weight, suffix_weight=suffix_weight
        )
        self._grouped = self.model.group_by_candidate(candidate_matches)
        self._candidate_means = self.ranker.candidate_means(self._grouped)
        golden_prefix, golden_suffix = self.model.mean_vectors(golden_matches or all_matches)
        self.feedback_state = RocchioFeedback(golden_prefix, golden_suffix)
        self._remaining: Set[str] = set(self._grouped)
        self.accepted: List[str] = []
        self.rejected: List[str] = []

    @property
    def n_candidates(self) -> int:
        return len(self._grouped)

    @property
    def remaining(self) -> Set[str]:
        return set(self._remaining)

    def current_ranking(self) -> List[RankedCandidate]:
        """Remaining candidates ranked under the current golden vectors."""
        grouped = {p: self._grouped[p] for p in self._remaining}
        if not grouped:
            return []
        return self.ranker.rank(
            grouped, self.feedback_state.prefix, self.feedback_state.suffix
        )

    def next_page(self, top_k: int = 10) -> List[RankedCandidate]:
        """The next ``top_k`` candidates to show the analyst."""
        return self.current_ranking()[:top_k]

    def feedback(self, accepted: Sequence[str], rejected: Sequence[str]) -> None:
        """Record the analyst's labels and re-rank via Rocchio.

        Raises KeyError if a phrase was never a live candidate.
        """
        for phrase in list(accepted) + list(rejected):
            if phrase not in self._remaining:
                raise KeyError(f"{phrase!r} is not an outstanding candidate")
        self.accepted.extend(accepted)
        self.rejected.extend(rejected)
        self._remaining.difference_update(accepted)
        self._remaining.difference_update(rejected)
        if self.use_feedback:
            self.feedback_state.update(
                [self._candidate_means[p] for p in accepted],
                [self._candidate_means[p] for p in rejected],
            )

    def expanded_rule_pattern(self) -> str:
        """The final rule regex with all accepted synonyms folded in."""
        return self.spec.expanded_pattern(tuple(self.accepted))
