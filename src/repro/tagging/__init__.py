"""Entity linking/tagging and event monitoring (section 6).

The Kosmix-style pipelines: tag documents with KB entities through a stack
of rule stages (overlap removal, blacklists, sentence-boundary checks,
editorial overrides) and monitor a tweet stream for events with rules that
analysts can tighten in real time when the system misbehaves ("making it
more conservative in deciding which tweets truly belong to an event").
"""

from repro.tagging.events import EventMonitor, EventReport, EventSpec
from repro.tagging.linker import EntityLinker, Mention
from repro.tagging.tweets import Tweet, TweetGenerator

__all__ = [
    "EntityLinker",
    "EventMonitor",
    "EventReport",
    "EventSpec",
    "Mention",
    "Tweet",
    "TweetGenerator",
]
