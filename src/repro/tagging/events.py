"""Tweetbeat-style event monitoring with analyst scale-down rules.

"Since it displays tweets in real time, if something goes wrong (e.g., for
a particular event the system shows many unrelated tweets), the analysts
needed to be able to react very quickly. To do so, the analysts use a set
of rules to correct the system's performance and to scale it down (e.g.,
making it more conservative in deciding which tweets truly belong to an
event)."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.tagging.tweets import Tweet
from repro.utils.stats import f1_score
from repro.utils.text import tokenize


@dataclass
class EventSpec:
    """One monitored event: keywords plus per-event analyst controls."""

    name: str
    keywords: Set[str]
    min_keyword_matches: int = 1
    blacklist_terms: Set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        if not self.keywords:
            raise ValueError(f"event {self.name!r} needs keywords")
        if self.min_keyword_matches < 1:
            raise ValueError("min_keyword_matches must be >= 1")


@dataclass(frozen=True)
class EventReport:
    """Assignment quality per event."""

    event: str
    precision: float
    recall: float
    assigned: int

    @property
    def f1(self) -> float:
        return f1_score(self.precision, self.recall)


class EventMonitor:
    """Assigns tweets to events by keyword rules, with live tightening."""

    def __init__(self, events: Sequence[EventSpec]):
        if not events:
            raise ValueError("monitor needs at least one event")
        self.events: Dict[str, EventSpec] = {e.name: e for e in events}

    def assign(self, tweet: Tweet) -> Optional[str]:
        """The best-matching event for a tweet, or None."""
        tokens = set(tokenize(tweet.text))
        best_event, best_hits = None, 0
        for name in sorted(self.events):
            spec = self.events[name]
            if spec.blacklist_terms & tokens:
                continue
            hits = len(spec.keywords & tokens)
            if hits >= spec.min_keyword_matches and hits > best_hits:
                best_event, best_hits = name, hits
        return best_event

    # -- analyst controls ---------------------------------------------------------

    def make_conservative(self, event: str, min_keyword_matches: int) -> None:
        """Scale down: require more keyword evidence for this event."""
        spec = self._spec(event)
        if min_keyword_matches < spec.min_keyword_matches:
            raise ValueError("make_conservative can only raise the threshold")
        spec.min_keyword_matches = min_keyword_matches

    def add_blacklist_term(self, event: str, term: str) -> None:
        self._spec(event).blacklist_terms.add(term.lower())

    def _spec(self, event: str) -> EventSpec:
        try:
            return self.events[event]
        except KeyError:
            raise KeyError(f"unknown event {event!r}") from None

    # -- evaluation ------------------------------------------------------------------

    def evaluate(self, tweets: Sequence[Tweet]) -> List[EventReport]:
        reports = []
        for name in sorted(self.events):
            assigned = [t for t in tweets if self.assign(t) == name]
            relevant = [t for t in tweets if t.true_event == name]
            correct = sum(1 for t in assigned if t.true_event == name)
            precision = correct / len(assigned) if assigned else 1.0
            recall = correct / len(relevant) if relevant else 1.0
            reports.append(EventReport(
                event=name,
                precision=precision,
                recall=recall,
                assigned=len(assigned),
            ))
        return reports
