"""Entity linking with rule stages.

Mirrors the [3] pipeline steps the paper lists: detect candidate mentions
of KB entities, then apply rules "to remove overlapping mentions (if both
'Barack Obama' and 'Obama' are detected, drop 'Obama'), to blacklist
profanities, slangs, to drop mentions that straddle sentence boundaries,
and to exert editorial controls".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.kb.kb import KnowledgeBase
from repro.utils.text import normalize_text


@dataclass(frozen=True)
class Mention:
    """One detected entity mention (token span in the document)."""

    entity: str
    surface: str
    start: int
    end: int

    def overlaps(self, other: "Mention") -> bool:
        return self.start < other.end and other.start < self.end

    @property
    def length(self) -> int:
        return self.end - self.start


class EntityLinker:
    """Dictionary-driven mention detection plus the rule stages."""

    def __init__(
        self,
        kb: KnowledgeBase,
        extra_entities: Iterable[str] = (),
        blacklist: Iterable[str] = (),
        editorial_drops: Iterable[str] = (),
        editorial_keeps: Iterable[str] = (),
    ):
        entities: Set[str] = {normalize_text(b) for b in kb.brands()}
        entities.update(normalize_text(n) for n in kb.nodes() if n not in ("root", "products"))
        entities.update(normalize_text(e) for e in extra_entities)
        self.entities = {e for e in entities if e}
        self.blacklist = {normalize_text(b) for b in blacklist}
        self.editorial_drops = {normalize_text(e) for e in editorial_drops}
        self.editorial_keeps = {normalize_text(e) for e in editorial_keeps}
        self._max_words = max((len(e.split()) for e in self.entities), default=1)

    # Stage 1: candidate detection -------------------------------------------------

    def detect(self, text: str) -> List[Mention]:
        """All candidate mentions (every entity phrase occurrence)."""
        # Keep sentence boundaries visible as '.' tokens for stage 3.
        tokens = normalize_text(text).split()
        mentions: List[Mention] = []
        for length in range(self._max_words, 0, -1):
            for start in range(0, len(tokens) - length + 1):
                phrase = " ".join(tokens[start : start + length]).strip(".")
                if phrase in self.entities:
                    mentions.append(Mention(
                        entity=phrase,
                        surface=phrase,
                        start=start,
                        end=start + length,
                    ))
        mentions.sort(key=lambda m: (m.start, -m.length))
        return mentions

    # Stage 2..5: rule filters ---------------------------------------------------------

    @staticmethod
    def drop_overlaps(mentions: Sequence[Mention]) -> List[Mention]:
        """Keep the longest mention among overlapping ones."""
        kept: List[Mention] = []
        for mention in sorted(mentions, key=lambda m: (-m.length, m.start)):
            if not any(mention.overlaps(existing) for existing in kept):
                kept.append(mention)
        kept.sort(key=lambda m: m.start)
        return kept

    def drop_blacklisted(self, mentions: Sequence[Mention]) -> List[Mention]:
        return [m for m in mentions if m.entity not in self.blacklist]

    @staticmethod
    def drop_sentence_straddlers(mentions: Sequence[Mention], text: str) -> List[Mention]:
        """Drop mentions whose span crosses a sentence boundary."""
        tokens = normalize_text(text).split()
        kept = []
        for mention in mentions:
            inner = tokens[mention.start : mention.end - 1]
            if any(token.endswith(".") for token in inner):
                continue
            kept.append(mention)
        return kept

    def apply_editorial(self, mentions: Sequence[Mention]) -> List[Mention]:
        kept = []
        for mention in mentions:
            if mention.entity in self.editorial_drops and mention.entity not in self.editorial_keeps:
                continue
            kept.append(mention)
        return kept

    # Full pipeline -------------------------------------------------------------------------

    def link(self, text: str) -> List[Mention]:
        mentions = self.detect(text)
        mentions = self.drop_overlaps(mentions)
        mentions = self.drop_blacklisted(mentions)
        mentions = self.drop_sentence_straddlers(mentions, text)
        mentions = self.apply_editorial(mentions)
        return mentions
