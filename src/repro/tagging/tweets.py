"""Synthetic tweet stream for the event-monitoring experiments."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

_FILLER = (
    "just", "saw", "the", "this", "so", "really", "cant", "believe", "lol",
    "today", "wow", "check", "out", "my", "new", "love", "hate", "need",
    "great", "awful", "finally", "again", "everyone", "watching", "live",
)


@dataclass(frozen=True)
class Tweet:
    """One synthetic tweet with its ground-truth event (or None = noise)."""

    tweet_id: str
    text: str
    true_event: Optional[str] = None


class TweetGenerator:
    """Generates event tweets and noise tweets with keyword leakage.

    Noise tweets occasionally contain an event keyword (the ambiguity that
    makes naive keyword matching imprecise and motivates the rule-based
    tightening of the monitor).
    """

    def __init__(
        self,
        event_keywords: Dict[str, Sequence[str]],
        leakage: float = 0.15,
        seed: int = 0,
    ):
        if not event_keywords:
            raise ValueError("need at least one event")
        for event, keywords in event_keywords.items():
            if len(keywords) < 2:
                raise ValueError(f"event {event!r} needs >= 2 keywords")
        self.event_keywords = {k: tuple(v) for k, v in event_keywords.items()}
        if not 0.0 <= leakage <= 1.0:
            raise ValueError(f"leakage must be in [0, 1], got {leakage}")
        self.leakage = leakage
        self.rng = random.Random(seed)
        self._next_id = 0

    def _tweet(self, words: List[str], event: Optional[str]) -> Tweet:
        self._next_id += 1
        self.rng.shuffle(words)
        return Tweet(
            tweet_id=f"tweet-{self._next_id:07d}",
            text=" ".join(words),
            true_event=event,
        )

    def event_tweet(self, event: str) -> Tweet:
        keywords = self.event_keywords[event]
        picked = self.rng.sample(keywords, k=min(len(keywords), self.rng.randint(2, 3)))
        filler = [self.rng.choice(_FILLER) for _ in range(self.rng.randint(3, 8))]
        return self._tweet(picked + filler, event)

    def noise_tweet(self) -> Tweet:
        words = [self.rng.choice(_FILLER) for _ in range(self.rng.randint(5, 10))]
        if self.rng.random() < self.leakage:
            event = self.rng.choice(sorted(self.event_keywords))
            words.append(self.rng.choice(self.event_keywords[event]))
        return self._tweet(words, None)

    def stream(self, count: int, event_fraction: float = 0.4) -> List[Tweet]:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if not 0.0 <= event_fraction <= 1.0:
            raise ValueError(f"event_fraction must be in [0, 1], got {event_fraction}")
        tweets = []
        events = sorted(self.event_keywords)
        for _ in range(count):
            if self.rng.random() < event_fraction:
                tweets.append(self.event_tweet(self.rng.choice(events)))
            else:
                tweets.append(self.noise_tweet())
        return tweets
