"""Deterministic test harnesses for the resilience layer.

This package is shipped with the library (not hidden inside ``tests/``)
so downstream users can chaos-test their own deployments of the
partitioned executor and the Chimera pipeline with the same tooling the
repo's own suite uses.
"""

from repro.testing.faults import (
    ANY,
    FaultKind,
    FaultPlan,
    FaultSpec,
    TriggeredFault,
    VirtualSleeper,
)

__all__ = [
    "ANY",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "TriggeredFault",
    "VirtualSleeper",
]
