"""Deterministic fault injection for the partitioned executor.

The resilience layer (retry, straggler re-dispatch, degraded results) is
only trustworthy if every failure path is exercised by fast, reproducible
tests. Real fault injection — killing processes, sleeping past timeouts —
is slow and flaky; this module replaces it with a *schedule*:

* a :class:`FaultSpec` says "when worker W runs shard S on attempt A,
  crash / hang / corrupt the output";
* a :class:`FaultPlan` is an ordered list of specs plus a trigger log, so
  a test (or the CI chaos job) can assert exactly which faults fired;
* :meth:`FaultPlan.random_plan` derives a plan from a seed — the same seed
  always yields the same plan, making randomized chaos runs replayable.

Hangs are *simulated*: the plan raises
:class:`~repro.execution.resilience.WorkerHang` at dispatch time, which is
precisely what the driver would observe from a real straggler timeout —
so no test ever sleeps. Corruption runs the real shard and then mangles
the output deterministically, exercising driver-side validation.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from repro.execution.executor import ExecutionStats
from repro.execution.resilience import ShardFailure, WorkerCrash, WorkerHang

ANY: Optional[int] = None  # wildcard for FaultSpec coordinates


class FaultKind(enum.Enum):
    """The three failure modes of the §2.2 failure model."""

    CRASH = "crash"
    HANG = "hang"
    CORRUPT = "corrupt"


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault. ``None`` coordinates are wildcards.

    ``detail`` selects the corruption style for CORRUPT faults:
    ``alien-item`` (default) adds a fired entry for an item the shard never
    held, ``alien-rule`` fires a rule id the driver never shipped,
    ``unsorted`` breaks the sorted-output contract, ``garbage`` replaces
    the fired map wholesale, and ``bad-stats`` mangles the stats object.
    """

    kind: FaultKind
    worker: Optional[int] = ANY
    shard: Optional[int] = ANY
    attempt: Optional[int] = ANY
    detail: str = ""

    def applies_to(self, worker: int, shard: int, attempt: int) -> bool:
        return (
            (self.worker is ANY or self.worker == worker)
            and (self.shard is ANY or self.shard == shard)
            and (self.attempt is ANY or self.attempt == attempt)
        )

    @property
    def blocks_execution(self) -> bool:
        """True when the fault prevents the shard from returning at all."""
        return self.kind in (FaultKind.CRASH, FaultKind.HANG)

    def to_exception(self, worker: int, shard: int, attempt: int) -> ShardFailure:
        where = f"worker {worker}, shard {shard}, attempt {attempt}"
        if self.kind is FaultKind.CRASH:
            return WorkerCrash(f"injected crash ({where})")
        if self.kind is FaultKind.HANG:
            return WorkerHang(f"injected hang ({where})")
        raise ValueError(f"{self.kind} does not block execution")

    def corrupt_output(self, output: Tuple[int, dict, Any]) -> Tuple[int, Any, Any]:
        """Deterministically mangle a shard's (shard_id, fired, stats)."""
        shard_id, fired, stats = output
        style = self.detail or "alien-item"
        if style == "alien-item":
            fired = dict(fired)
            fired["__not-in-this-shard__"] = ["rule-000000"]
        elif style == "alien-rule":
            fired = dict(fired)
            fired["__not-in-this-shard__"] = ["__never-shipped-rule__"]
        elif style == "unsorted":
            fired = dict(fired)
            fired["__not-in-this-shard__"] = ["zz-rule", "aa-rule"]
        elif style == "garbage":
            fired = "\x00corrupted frame"
        elif style == "bad-stats":
            broken = ExecutionStats()
            broken.items = -1
            stats = broken
        else:
            raise ValueError(f"unknown corruption detail {style!r}")
        return shard_id, fired, stats


@dataclass(frozen=True)
class TriggeredFault:
    """A log entry: which spec fired, at which (worker, shard, attempt)."""

    worker: int
    shard: int
    attempt: int
    kind: FaultKind
    detail: str = ""


class FaultPlan:
    """An ordered fault schedule consulted by the partitioned executor.

    The first matching spec wins, so plans read top-down like a playbook.
    Builder methods return ``self`` for chaining::

        plan = FaultPlan().kill_worker(1).corrupt(worker=2, attempt=0)
    """

    def __init__(self, specs: Sequence[FaultSpec] = ()):
        self.specs: List[FaultSpec] = list(specs)
        self.triggered: List[TriggeredFault] = []

    # -- builders ----------------------------------------------------------------

    def add(self, spec: FaultSpec) -> "FaultPlan":
        self.specs.append(spec)
        return self

    def crash(
        self,
        worker: Optional[int] = ANY,
        shard: Optional[int] = ANY,
        attempt: Optional[int] = ANY,
    ) -> "FaultPlan":
        return self.add(FaultSpec(FaultKind.CRASH, worker, shard, attempt))

    def hang(
        self,
        worker: Optional[int] = ANY,
        shard: Optional[int] = ANY,
        attempt: Optional[int] = ANY,
    ) -> "FaultPlan":
        return self.add(FaultSpec(FaultKind.HANG, worker, shard, attempt))

    def corrupt(
        self,
        worker: Optional[int] = ANY,
        shard: Optional[int] = ANY,
        attempt: Optional[int] = ANY,
        detail: str = "",
    ) -> "FaultPlan":
        return self.add(FaultSpec(FaultKind.CORRUPT, worker, shard, attempt, detail))

    def kill_worker(self, worker: int) -> "FaultPlan":
        """Worker ``worker`` crashes on every call, forever."""
        return self.crash(worker=worker)

    def hang_worker(self, worker: int) -> "FaultPlan":
        """Worker ``worker`` hangs (times out) on every call, forever."""
        return self.hang(worker=worker)

    # -- consultation (called by the executor) -----------------------------------

    def fault_for(self, worker: int, shard: int, attempt: int) -> Optional[FaultSpec]:
        for spec in self.specs:
            if spec.applies_to(worker, shard, attempt):
                return spec
        return None

    def record(self, spec: FaultSpec, worker: int, shard: int, attempt: int) -> None:
        self.triggered.append(
            TriggeredFault(worker, shard, attempt, spec.kind, spec.detail)
        )

    # -- seeded chaos ------------------------------------------------------------

    @classmethod
    def random_plan(
        cls,
        seed: int,
        n_workers: int,
        rate: float = 0.3,
        max_faulted_attempts: int = 2,
        kinds: Sequence[FaultKind] = (FaultKind.CRASH, FaultKind.HANG, FaultKind.CORRUPT),
        spare_workers: int = 1,
    ) -> "FaultPlan":
        """A reproducible random plan that always leaves healthy capacity.

        Workers ``0..spare_workers-1`` are never faulted, so a driver whose
        retry budget lets each shard rotate across the pool is guaranteed
        to finish — which is what the CI chaos job asserts under an
        arbitrary logged seed.
        """
        if not 0 <= rate <= 1:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        if spare_workers < 0 or spare_workers > n_workers:
            raise ValueError("spare_workers must be in [0, n_workers]")
        rng = random.Random(seed)
        plan = cls()
        details = ("alien-item", "alien-rule", "unsorted", "garbage", "bad-stats")
        for worker in range(spare_workers, n_workers):
            for attempt in range(max_faulted_attempts):
                if rng.random() >= rate:
                    continue
                kind = rng.choice(tuple(kinds))
                detail = rng.choice(details) if kind is FaultKind.CORRUPT else ""
                plan.add(FaultSpec(kind, worker=worker, attempt=attempt, detail=detail))
        return plan

    def describe(self) -> str:
        if not self.specs:
            return "fault plan: (healthy)"
        lines = ["fault plan:"]
        for spec in self.specs:
            coords = ", ".join(
                f"{label}={'*' if value is ANY else value}"
                for label, value in (
                    ("worker", spec.worker),
                    ("shard", spec.shard),
                    ("attempt", spec.attempt),
                )
            )
            suffix = f" [{spec.detail}]" if spec.detail else ""
            lines.append(f"  {spec.kind.value} @ {coords}{suffix}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.specs)

    def __repr__(self) -> str:
        return f"<FaultPlan {len(self.specs)} specs, {len(self.triggered)} triggered>"


class SimulatedCrash(Exception):
    """Raised by a :class:`CrashPlan` at a named crash point.

    Stands in for SIGKILL in durability tests: the process state is
    abandoned where it stood (no cleanup handlers run on the aborted
    work), and the test resumes a fresh instance from disk — exactly the
    recovery path a real kill -9 exercises, at test speed.
    """

    def __init__(self, point: str):
        super().__init__(f"simulated crash at {point!r}")
        self.point = point


class CrashPlan:
    """A schedule of named crash points for durability components.

    Checkpoint/journal writers call :meth:`reached` at their internal
    barriers (``"journal-appended"``, ``"before-checkpoint"``, ...); a
    plan armed for that point raises :class:`SimulatedCrash` there,
    leaving the on-disk state exactly as a power cut at that instant
    would. ``hit`` logs every consultation so tests can assert the crash
    fired where expected.
    """

    def __init__(self, crash_at: Optional[str] = None, on_hit: int = 1):
        if on_hit < 1:
            raise ValueError(f"on_hit must be >= 1, got {on_hit}")
        self.crash_at = crash_at
        self.on_hit = on_hit
        self.hit: List[str] = []
        self._armed = crash_at is not None

    def reached(self, point: str) -> None:
        self.hit.append(point)
        if not self._armed or point != self.crash_at:
            return
        if self.hit.count(point) >= self.on_hit:
            self._armed = False
            raise SimulatedCrash(point)


def tear_file(path: str, keep_bytes: Optional[int] = None, garbage: bytes = b"") -> int:
    """Simulate a torn write: truncate ``path`` mid-record.

    With ``keep_bytes=None`` the file loses the second half of its final
    line (a crash partway through an append); otherwise it is truncated
    to exactly ``keep_bytes``. ``garbage`` is appended afterwards (a
    partially-flushed buffer of a *new* record). Returns the resulting
    file size. Durable readers (``scan_jsonl`` consumers) must treat the
    torn tail as never written.
    """
    import os

    size = os.path.getsize(path)
    if keep_bytes is None:
        with open(path, "rb") as handle:
            data = handle.read()
        body = data.rstrip(b"\n")
        last_line_start = body.rfind(b"\n") + 1
        last_line_len = len(data) - last_line_start
        keep_bytes = last_line_start + max(1, last_line_len // 2)
        keep_bytes = min(keep_bytes, size)
    with open(path, "r+b") as handle:
        handle.truncate(keep_bytes)
        if garbage:
            handle.seek(0, os.SEEK_END)
            handle.write(garbage)
        handle.flush()
        os.fsync(handle.fileno())
    return os.path.getsize(path)


class VirtualSleeper:
    """An injectable ``sleep`` that records naps instead of taking them.

    Tests pass this to the executor so exponential backoff is *observable*
    (the requested delays are on ``naps``) without the suite ever blocking.
    """

    def __init__(self) -> None:
        self.naps: List[float] = []

    def __call__(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot sleep a negative duration ({seconds})")
        self.naps.append(seconds)

    @property
    def total(self) -> float:
        return sum(self.naps)
