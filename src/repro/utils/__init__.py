"""Shared utilities: text processing, statistics, and deterministic simulation.

Everything stochastic in the library takes an explicit ``random.Random`` /
``numpy`` seed, and everything time-based flows through
:class:`~repro.utils.clock.SimClock`, so experiments are reproducible.
"""

from repro.utils.clock import SimClock
from repro.utils.sampling import reservoir_sample, stratified_sample
from repro.utils.stats import mean, wilson_interval
from repro.utils.text import (
    STOPWORDS,
    expand_plural_singulars,
    ngrams,
    normalize_text,
    singular_form,
    tokenize,
    tokenize_cached,
)
from repro.utils.vectors import SparseVector, cosine_similarity, mean_vector

__all__ = [
    "STOPWORDS",
    "SimClock",
    "SparseVector",
    "cosine_similarity",
    "expand_plural_singulars",
    "mean",
    "mean_vector",
    "ngrams",
    "normalize_text",
    "reservoir_sample",
    "singular_form",
    "stratified_sample",
    "tokenize",
    "tokenize_cached",
    "wilson_interval",
]
