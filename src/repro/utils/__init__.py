"""Shared utilities: text processing, statistics, and deterministic simulation.

Everything stochastic in the library takes an explicit ``random.Random`` /
``numpy`` seed, and everything time-based flows through
:class:`~repro.utils.clock.SimClock`, so experiments are reproducible.
"""

from repro.utils.clock import SimClock
from repro.utils.sampling import reservoir_sample, stratified_sample
from repro.utils.stats import mean, wilson_interval
from repro.utils.text import (
    STOPWORDS,
    ngrams,
    normalize_text,
    tokenize,
)
from repro.utils.vectors import SparseVector, cosine_similarity, mean_vector

__all__ = [
    "STOPWORDS",
    "SimClock",
    "SparseVector",
    "cosine_similarity",
    "mean",
    "mean_vector",
    "ngrams",
    "normalize_text",
    "reservoir_sample",
    "stratified_sample",
    "tokenize",
    "wilson_interval",
]
