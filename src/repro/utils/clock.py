"""Deterministic simulation clocks.

Industrial rule systems are "never ending" (section 2.2): batches arrive over
days, rules carry creation timestamps, analysts have a daily rule-writing
throughput. All of that needs a notion of time that is reproducible in tests,
so the library never reads the wall clock; it advances a :class:`SimClock`.

The observability layer needs a second, finer notion of time: a *monotonic
seconds* clock for span and stats timing. Production code defaults to
:func:`time.perf_counter`; tests and benchmarks inject a :class:`TickClock`
so every measured duration is a deterministic function of how many times the
clock was read.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SimClock:
    """A monotonically advancing simulated clock, in fractional days.

    >>> clock = SimClock()
    >>> clock.advance(hours=12)
    >>> clock.now
    0.5
    >>> clock.day
    0
    """

    now: float = 0.0
    _history: list = field(default_factory=list, repr=False)

    @property
    def day(self) -> int:
        """The integer day index of the current time."""
        return int(self.now)

    def advance(self, days: float = 0.0, hours: float = 0.0, minutes: float = 0.0) -> None:
        """Advance the clock; negative deltas are rejected."""
        delta = days + hours / 24.0 + minutes / (24.0 * 60.0)
        if delta < 0:
            raise ValueError(f"clock cannot move backwards (delta={delta})")
        self.now += delta

    def stamp(self, label: str) -> float:
        """Record a labelled timestamp and return the current time."""
        self._history.append((self.now, label))
        return self.now

    @property
    def history(self) -> list:
        """Labelled timestamps recorded so far, as (time, label) pairs."""
        return list(self._history)


class TickClock:
    """A deterministic stand-in for :func:`time.perf_counter`.

    Every *read* advances the clock by ``step`` seconds and returns the
    time *before* the advance, so two consecutive reads are exactly one
    step apart. Measured durations become "number of clock reads × step"
    — fully reproducible, which is what the timing regression tests and
    the tracer's fake-clock mode rely on.

    >>> clock = TickClock(step=0.5)
    >>> start = clock()
    >>> clock() - start
    0.5
    >>> clock.advance(10.0)
    >>> clock() - start
    11.0

    ``advance`` injects extra elapsed time between reads (a simulated
    stall); negative advances are rejected to keep the clock monotonic.
    """

    def __init__(self, start: float = 0.0, step: float = 0.001):
        if step < 0:
            raise ValueError(f"step must be non-negative, got {step}")
        self.now = start
        self.step = step
        self.reads = 0

    def __call__(self) -> float:
        current = self.now
        self.now += self.step
        self.reads += 1
        return current

    def advance(self, seconds: float) -> None:
        """Insert ``seconds`` of simulated elapsed time before the next read."""
        if seconds < 0:
            raise ValueError(f"clock cannot move backwards (delta={seconds})")
        self.now += seconds
