"""Deterministic simulation clock.

Industrial rule systems are "never ending" (section 2.2): batches arrive over
days, rules carry creation timestamps, analysts have a daily rule-writing
throughput. All of that needs a notion of time that is reproducible in tests,
so the library never reads the wall clock; it advances a :class:`SimClock`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SimClock:
    """A monotonically advancing simulated clock, in fractional days.

    >>> clock = SimClock()
    >>> clock.advance(hours=12)
    >>> clock.now
    0.5
    >>> clock.day
    0
    """

    now: float = 0.0
    _history: list = field(default_factory=list, repr=False)

    @property
    def day(self) -> int:
        """The integer day index of the current time."""
        return int(self.now)

    def advance(self, days: float = 0.0, hours: float = 0.0, minutes: float = 0.0) -> None:
        """Advance the clock; negative deltas are rejected."""
        delta = days + hours / 24.0 + minutes / (24.0 * 60.0)
        if delta < 0:
            raise ValueError(f"clock cannot move backwards (delta={delta})")
        self.now += delta

    def stamp(self, label: str) -> float:
        """Record a labelled timestamp and return the current time."""
        self._history.append((self.now, label))
        return self.now

    @property
    def history(self) -> list:
        """Labelled timestamps recorded so far, as (time, label) pairs."""
        return list(self._history)
