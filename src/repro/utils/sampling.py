"""Deterministic sampling helpers (seeded ``random.Random`` everywhere)."""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Callable, Dict, Iterable, List, Sequence, TypeVar

T = TypeVar("T")


def reservoir_sample(items: Iterable[T], k: int, rng: random.Random) -> List[T]:
    """Uniform sample of up to ``k`` items from a (possibly huge) stream.

    The result order is arbitrary but deterministic given ``rng``. Used to
    sample classification results for crowd evaluation without materializing
    the full result set.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    reservoir: List[T] = []
    for index, item in enumerate(items):
        if index < k:
            reservoir.append(item)
        else:
            slot = rng.randint(0, index)
            if slot < k:
                reservoir[slot] = item
    return reservoir


def stratified_sample(
    items: Sequence[T],
    key: Callable[[T], str],
    per_stratum: int,
    rng: random.Random,
) -> List[T]:
    """Sample up to ``per_stratum`` items from each stratum of ``items``.

    The evaluation pipelines stratify crowd samples by predicted type so that
    tail types are represented (section 4's "tail rules" problem).
    """
    strata: Dict[str, List[T]] = defaultdict(list)
    for item in items:
        strata[key(item)].append(item)
    sample: List[T] = []
    for stratum in sorted(strata):
        members = strata[stratum]
        if len(members) <= per_stratum:
            sample.extend(members)
        else:
            sample.extend(rng.sample(members, per_stratum))
    return sample


def weighted_choice(weights: Dict[T, float], rng: random.Random) -> T:
    """Pick a key of ``weights`` with probability proportional to its value."""
    if not weights:
        raise ValueError("weighted_choice over empty weights")
    total = sum(weights.values())
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    pick = rng.random() * total
    running = 0.0
    chosen = None
    for key in sorted(weights, key=repr):
        running += weights[key]
        chosen = key
        if pick <= running:
            break
    return chosen


def split_train_test(
    items: Sequence[T], test_fraction: float, rng: random.Random
) -> tuple:
    """Shuffle and split ``items`` into (train, test) lists."""
    if not 0 <= test_fraction <= 1:
        raise ValueError(f"test_fraction must be in [0, 1], got {test_fraction}")
    shuffled = list(items)
    rng.shuffle(shuffled)
    cut = int(round(len(shuffled) * (1 - test_fraction)))
    return shuffled[:cut], shuffled[cut:]
