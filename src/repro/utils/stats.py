"""Small statistics helpers used by the crowd estimators and benchmarks."""

from __future__ import annotations

import math
from typing import Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input rather than returning NaN."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> Tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion.

    Used to turn crowd-verified samples into precision estimates with error
    bars (the paper's pipelines accept a batch only when the *estimated*
    precision clears the 92% floor).

    >>> low, high = wilson_interval(92, 100)
    >>> 0.84 < low < 0.92 < high < 0.97
    True
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes={successes} outside [0, {trials}]")
    phat = successes / trials
    denom = 1 + z * z / trials
    center = (phat + z * z / (2 * trials)) / denom
    margin = (z / denom) * math.sqrt(phat * (1 - phat) / trials + z * z / (4 * trials * trials))
    return max(0.0, center - margin), min(1.0, center + margin)


def harmonic_mean(a: float, b: float) -> float:
    """Harmonic mean of two non-negative numbers; 0 if either is 0."""
    if a < 0 or b < 0:
        raise ValueError("harmonic mean requires non-negative inputs")
    if a + b == 0:
        return 0.0
    return 2 * a * b / (a + b)


def f1_score(precision: float, recall: float) -> float:
    """F1 = harmonic mean of precision and recall."""
    return harmonic_mean(precision, recall)


def sample_size_for_margin(margin: float, z: float = 1.96, p: float = 0.5) -> int:
    """Sample size needed to estimate a proportion within ``margin``.

    Benchmarks use this to size crowd samples the way the paper's team would
    size an evaluation batch.
    """
    if not 0 < margin < 1:
        raise ValueError(f"margin must be in (0, 1), got {margin}")
    n = (z * z * p * (1 - p)) / (margin * margin)
    return int(math.ceil(n))
