"""Text normalization and tokenization shared by every subsystem.

The paper's rules operate on product titles after light preprocessing
("lowercasing and removing certain stop words and characters that we have
manually compiled in a dictionary", section 5.2). This module is that
dictionary plus the tokenizer.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import FrozenSet, Iterable, Iterator, List, Sequence, Tuple

# Stop words the analysts' preprocessing removes before sequence mining.
# Deliberately small: product titles are terse and most tokens carry signal.
STOPWORDS = frozenset(
    """
    a an and at by for from in of on or the to with w/
    """.split()
)

# Characters stripped from titles before tokenization (keeps alphanumerics,
# whitespace and intra-word hyphens/slashes which appear in sizes like "13-293snb").
_STRIP_CHARS = re.compile(r"[^\w\s/\-.]")
_TOKEN = re.compile(r"[a-z0-9][a-z0-9\-./]*")
_MULTISPACE = re.compile(r"\s+")


# Titles repeat heavily across rule evaluations (search, EM blocking,
# learning features, repeated executor runs), so normalization and
# tokenization are memoized behind bounded LRU caches. The caches hold
# immutable values (strings / tuples); the public list-returning API copies
# on the way out so callers can keep mutating their token lists.
#
# The bound matters operationally: a never-ending incremental session sees
# an unbounded stream of distinct titles, and an unbounded cache would be a
# slow memory leak with no signal. ``cache_stats`` (surfaced as gauges via
# ``MetricsRegistry.observe_text_cache``) is that signal — a cache pinned
# at ``maxsize`` with a falling hit rate means the live vocabulary outgrew
# the bound.
_TEXT_CACHE_SIZE = 32768


@lru_cache(maxsize=_TEXT_CACHE_SIZE)
def normalize_text(text: str) -> str:
    """Lowercase ``text`` and strip punctuation the rule pipeline ignores.

    >>> normalize_text("Dickies 38in. x 30in. Indigo Blue Jeans!")
    'dickies 38in. x 30in. indigo blue jeans'
    """
    lowered = text.lower()
    stripped = _STRIP_CHARS.sub(" ", lowered)
    return _MULTISPACE.sub(" ", stripped).strip()


@lru_cache(maxsize=_TEXT_CACHE_SIZE)
def tokenize_cached(text: str, drop_stopwords: bool = True) -> Tuple[str, ...]:
    """Tokenize ``text`` to an immutable (cache-shared) token tuple.

    Hot paths that never mutate the result (the prepared-item layer, the
    rule/data indexes) should call this directly and skip the list copy
    :func:`tokenize` makes.
    """
    tokens = _TOKEN.findall(normalize_text(text))
    cleaned = [token.strip(".-/") for token in tokens]
    kept = [token for token in cleaned if token]
    if drop_stopwords:
        kept = [token for token in kept if token not in STOPWORDS]
    return tuple(kept)


def tokenize(text: str, drop_stopwords: bool = True) -> List[str]:
    """Split ``text`` into normalized tokens.

    >>> tokenize("Men's Relaxed Fit Denim Jeans, 2 Pack")
    ['men', 's', 'relaxed', 'fit', 'denim', 'jeans', '2', 'pack']
    """
    return list(tokenize_cached(text, drop_stopwords))


def cache_stats() -> dict:
    """Hit/miss/occupancy stats of the bounded text caches, by function.

    The values mirror :func:`functools.lru_cache`'s ``cache_info`` plus a
    derived ``hit_rate``; keys are stable so the metrics layer can map
    them straight onto gauges (``text_cache_hits{fn=tokenize}`` etc.).

    >>> clear_caches()
    >>> _ = tokenize("Blue Jeans"); _ = tokenize("Blue Jeans")
    >>> info = cache_stats()["tokenize"]
    >>> (info["hits"], info["misses"], info["size"], info["maxsize"])
    (1, 1, 1, 32768)
    """
    stats = {}
    for name, fn in (("tokenize", tokenize_cached), ("normalize", normalize_text)):
        info = fn.cache_info()
        lookups = info.hits + info.misses
        stats[name] = {
            "hits": info.hits,
            "misses": info.misses,
            "hit_rate": info.hits / lookups if lookups else 0.0,
            "size": info.currsize,
            "maxsize": info.maxsize,
        }
    return stats


def clear_caches() -> None:
    """Reset both text caches (tests and cold-start benchmarks)."""
    tokenize_cached.cache_clear()
    normalize_text.cache_clear()


def singular_form(token: str) -> str:
    """Crude singular of a plural token, or the token itself.

    The plural bridging used by the execution indexes: "rings" -> "ring",
    but "dress"/"gas" stay put.

    >>> singular_form("rings")
    'ring'
    >>> singular_form("dress")
    'dress'
    """
    if len(token) > 3 and token.endswith("s") and not token.endswith("ss"):
        return token[:-1]
    return token


def expand_plural_singulars(tokens: Iterable[str]) -> FrozenSet[str]:
    """Token set augmented with crude singular forms.

    This is the anchor-matching alphabet of the execution layer: an index
    posting under "ring" must be found by a title containing "rings".
    """
    expanded = set(tokens)
    for token in tuple(expanded):
        singular = singular_form(token)
        if singular != token:
            expanded.add(singular)
    return frozenset(expanded)


def ngrams(tokens: Sequence[str], n: int) -> Iterator[Tuple[str, ...]]:
    """Yield contiguous ``n``-grams from ``tokens``.

    >>> list(ngrams(["a", "b", "c"], 2))
    [('a', 'b'), ('b', 'c')]
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    for start in range(len(tokens) - n + 1):
        yield tuple(tokens[start : start + n])


def char_ngrams(text: str, n: int) -> List[str]:
    """Character n-grams of a normalized string, used by EM similarity.

    The paper's example EM rule tokenizes titles into 3-grams
    (``jaccard.3g(a.title, b.title)``).

    >>> char_ngrams("abcd", 3)
    ['abc', 'bcd']
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    compact = normalize_text(text).replace(" ", "_")
    if len(compact) < n:
        return [compact] if compact else []
    return [compact[i : i + n] for i in range(len(compact) - n + 1)]


def contains_word_sequence(title_tokens: Sequence[str], sequence: Sequence[str]) -> bool:
    """True if ``sequence`` appears in order (not necessarily contiguously).

    This is the semantics of the section 5.2 generated rules
    ``a1.*a2.*...*an -> t``: "the tokens in the sequence appear in that
    order (not necessarily consecutively) in the title".

    >>> contains_word_sequence(["denim", "blue", "jeans"], ["denim", "jeans"])
    True
    >>> contains_word_sequence(["jeans", "denim"], ["denim", "jeans"])
    False
    """
    if not sequence:
        return True
    position = 0
    for token in title_tokens:
        if token == sequence[position]:
            position += 1
            if position == len(sequence):
                return True
    return False


def window(tokens: Sequence[str], center_start: int, center_end: int, size: int) -> Tuple[List[str], List[str]]:
    """Return (prefix, suffix) windows of ``size`` tokens around a span.

    Used by the synonym tool's context extraction ("currently set to be 5
    words before and after the candidate synonym", section 5.1).
    """
    prefix = list(tokens[max(0, center_start - size) : center_start])
    suffix = list(tokens[center_end : center_end + size])
    return prefix, suffix


def join_phrases(phrases: Iterable[str]) -> str:
    """Render a list of phrases as a regex disjunction body.

    >>> join_phrases(["motor", "engine"])
    'motor|engine'
    """
    return "|".join(phrases)
