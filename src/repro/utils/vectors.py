"""Lightweight sparse vectors for the synonym tool's context model.

The section 5.1 tool builds TF/IDF prefix/suffix vectors per regex match,
normalizes them, averages them per candidate synonym, and compares them with
cosine similarity. Those vectors are tiny and extremely sparse, so a
dict-backed vector is simpler and faster here than scipy.sparse matrices
(which the learning substrate uses for the bulk classifier workloads).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping


class SparseVector:
    """An immutable-ish sparse vector keyed by string dimensions."""

    __slots__ = ("_data",)

    def __init__(self, data: Mapping[str, float] = ()):
        self._data: Dict[str, float] = {k: float(v) for k, v in dict(data).items() if v}

    def __getitem__(self, key: str) -> float:
        return self._data.get(key, 0.0)

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self):
        return iter(self._data)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SparseVector) and self._data == other._data

    def __repr__(self) -> str:
        preview = dict(sorted(self._data.items())[:4])
        return f"SparseVector({preview}{'...' if len(self._data) > 4 else ''})"

    def items(self):
        return self._data.items()

    def norm(self) -> float:
        # Scaled two-norm: squaring components near 1e-162 underflows to
        # subnormals and the naive sqrt(sum(v*v)) loses most of its
        # precision, so normalized() would not be unit length. Factoring
        # out the largest magnitude keeps every square near 1.0.
        if not self._data:
            return 0.0
        scale = max(abs(v) for v in self._data.values())
        if scale == 0.0 or math.isinf(scale):
            return scale
        return scale * math.sqrt(sum((v / scale) ** 2 for v in self._data.values()))

    def normalized(self) -> "SparseVector":
        """Unit-length copy; the zero vector normalizes to itself."""
        # Rescale by the largest magnitude before dividing by the norm:
        # at subnormal scale both the norm and the division by it round
        # so coarsely that the quotient can be off by tens of percent.
        # The pre-scaled copy lives in [-1, 1] where both are accurate.
        if not self._data:
            return SparseVector()
        scale = max(abs(v) for v in self._data.values())
        if scale == 0.0:
            return SparseVector()
        scaled = {k: v / scale for k, v in self._data.items()}
        length = math.sqrt(sum(v * v for v in scaled.values()))
        if length == 0.0:
            return SparseVector()
        return SparseVector({k: v / length for k, v in scaled.items()})

    def dot(self, other: "SparseVector") -> float:
        if len(other) < len(self):
            return other.dot(self)
        return sum(v * other[k] for k, v in self._data.items())

    def scale(self, factor: float) -> "SparseVector":
        return SparseVector({k: v * factor for k, v in self._data.items()})

    def add(self, other: "SparseVector") -> "SparseVector":
        merged = dict(self._data)
        for key, value in other.items():
            merged[key] = merged.get(key, 0.0) + value
        return SparseVector(merged)

    def subtract(self, other: "SparseVector") -> "SparseVector":
        return self.add(other.scale(-1.0))


def cosine_similarity(a: SparseVector, b: SparseVector) -> float:
    """Cosine of the angle between two sparse vectors (0 for zero vectors)."""
    denom = a.norm() * b.norm()
    if denom == 0:
        return 0.0
    return a.dot(b) / denom


def mean_vector(vectors: Iterable[SparseVector]) -> SparseVector:
    """Component-wise mean; the zero vector for an empty collection."""
    total = SparseVector()
    count = 0
    for vector in vectors:
        total = total.add(vector)
        count += 1
    if count == 0:
        return SparseVector()
    return total.scale(1.0 / count)
