"""The analyst rule workbench.

Section 4's rule-development loop: "the analyst often needs to run
variations of rule R repeatedly on a development data set D" — and before
deploying, needs to know what the rule hits, how precise it looks, and what
it would fight with. The workbench packages those checks over an indexed
development set: fast previews, crowd/oracle precision estimates, conflict
detection against the deployed rule base, and blacklist suggestions mined
from the rule's own false positives.
"""

from repro.workbench.workbench import RulePreview, RuleWorkbench

__all__ = ["RulePreview", "RuleWorkbench"]
