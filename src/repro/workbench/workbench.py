"""Interactive rule development support."""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analyst.analyst import SimulatedAnalyst
from repro.catalog.types import ProductItem
from repro.core.rule import BlacklistRule, Rule
from repro.core.ruleset import RuleSet
from repro.execution.data_index import DataIndex
from repro.utils.stats import wilson_interval
from repro.utils.text import tokenize


@dataclass
class RulePreview:
    """What a draft rule does on the development set."""

    rule_id: str
    matched: int
    candidate_fraction: float
    sample_titles: List[str] = field(default_factory=list)
    estimated_precision: Optional[float] = None
    precision_interval: Optional[Tuple[float, float]] = None
    conflicting_rules: List[str] = field(default_factory=list)
    suggested_blacklists: List[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            f"rule {self.rule_id}: {self.matched} matches "
            f"(index scanned {self.candidate_fraction:.1%} of D)",
        ]
        for title in self.sample_titles:
            lines.append(f"  · {title}")
        if self.estimated_precision is not None:
            low, high = self.precision_interval
            lines.append(
                f"  precision ≈ {self.estimated_precision:.1%} "
                f"[{low:.1%}, {high:.1%}]"
            )
        if self.conflicting_rules:
            lines.append(f"  conflicts with: {', '.join(self.conflicting_rules)}")
        for suggestion in self.suggested_blacklists:
            lines.append(f"  suggest blacklist: {suggestion}")
        return "\n".join(lines)


class RuleWorkbench:
    """A development data set + the checks an analyst runs before deploying.

    The development set is indexed once; every preview reuses the index, so
    iterating on a rule costs milliseconds instead of a full scan — the
    section 4 requirement for effective rule development.
    """

    def __init__(
        self,
        development_items: Sequence[ProductItem],
        deployed: Optional[RuleSet] = None,
        analyst: Optional[SimulatedAnalyst] = None,
        seed: int = 0,
    ):
        if not development_items:
            raise ValueError("workbench needs a development data set")
        self.index = DataIndex(development_items)
        self.deployed = deployed if deployed is not None else RuleSet(name="deployed")
        self.analyst = analyst
        self.rng = random.Random(seed)

    # -- previews -----------------------------------------------------------------

    def preview(
        self,
        rule: Rule,
        sample_size: int = 5,
        verify_sample: int = 30,
    ) -> RulePreview:
        """Run a draft rule against the indexed development set."""
        matches = self.index.matches(rule)
        sample = matches[:sample_size]
        preview = RulePreview(
            rule_id=rule.rule_id,
            matched=len(matches),
            candidate_fraction=self.index.candidate_fraction(rule),
            sample_titles=[item.title for item in sample],
        )
        if self.analyst is not None and matches and not rule.is_blacklist:
            check = matches
            if len(matches) > verify_sample:
                check = self.rng.sample(matches, verify_sample)
            correct = sum(
                1 for item in check
                if self.analyst.verify_pair(item, rule.target_type)
            )
            preview.estimated_precision = correct / len(check)
            preview.precision_interval = wilson_interval(correct, len(check))
        preview.conflicting_rules = self.conflicts(rule, matches)
        if (
            preview.estimated_precision is not None
            and preview.estimated_precision < 1.0
        ):
            preview.suggested_blacklists = self.suggest_blacklists(rule, matches)
        return preview

    def conflicts(self, rule: Rule, matches: Optional[List[ProductItem]] = None) -> List[str]:
        """Deployed whitelist rules asserting a *different* type on the
        draft rule's matches — the order-sensitivity hazard of section 4."""
        if rule.is_blacklist or rule.is_constraint:
            return []
        if matches is None:
            matches = self.index.matches(rule)
        conflicting: Set[str] = set()
        for item in matches:
            for deployed_rule in self.deployed.whitelists():
                if (
                    deployed_rule.target_type != rule.target_type
                    and deployed_rule.matches(item)
                ):
                    conflicting.add(deployed_rule.rule_id)
        return sorted(conflicting)

    def suggest_blacklists(
        self,
        rule: Rule,
        matches: Optional[List[ProductItem]] = None,
        top: int = 3,
    ) -> List[str]:
        """Propose blacklist patterns from the rule's likely false positives.

        Uses the analyst's verification to split matches into accepted and
        rejected, then surfaces the bigrams most distinctive of the rejected
        side — the phrases a blacklist should key on.
        """
        if self.analyst is None:
            return []
        if matches is None:
            matches = self.index.matches(rule)
        rejected: List[ProductItem] = []
        accepted_tokens: Counter = Counter()
        for item in matches:
            if self.analyst.verify_pair(item, rule.target_type):
                accepted_tokens.update(self._bigrams(item))
            else:
                rejected.append(item)
        if not rejected:
            return []
        rejected_bigrams: Counter = Counter()
        for item in rejected:
            rejected_bigrams.update(self._bigrams(item))
        distinctive = [
            (count, bigram)
            for bigram, count in rejected_bigrams.items()
            if accepted_tokens[bigram] == 0 and count >= 2
        ]
        distinctive.sort(key=lambda pair: (-pair[0], pair[1]))
        return [
            f"{' '.join(bigram)} -> NOT {rule.target_type}"
            for _, bigram in distinctive[:top]
        ]

    @staticmethod
    def _bigrams(item: ProductItem) -> List[Tuple[str, str]]:
        tokens = tokenize(item.title, drop_stopwords=False)
        return list(zip(tokens, tokens[1:]))
