"""Shared fixtures: a seed taxonomy, generators, and small corpora.

Session-scoped where the object is immutable-in-practice, function-scoped
where tests mutate (taxonomy splits, drift).
"""

from __future__ import annotations

import pytest

from repro.catalog import CatalogGenerator, build_seed_taxonomy
from repro.utils.clock import SimClock


@pytest.fixture(scope="session")
def taxonomy():
    """The hand-authored seed taxonomy (do not mutate in tests)."""
    return build_seed_taxonomy()


@pytest.fixture()
def mutable_taxonomy():
    """A fresh taxonomy per test, safe to mutate."""
    return build_seed_taxonomy()


@pytest.fixture()
def generator(taxonomy):
    """A fresh seeded generator per test."""
    return CatalogGenerator(taxonomy, seed=1234)


@pytest.fixture(scope="session")
def corpus_items():
    """A shared read-only item sample (session-scoped for speed)."""
    gen = CatalogGenerator(build_seed_taxonomy(), seed=42)
    return gen.generate_items(1500)


@pytest.fixture(scope="session")
def corpus_titles(corpus_items):
    return [item.title for item in corpus_items]


@pytest.fixture(scope="session")
def labeled_training():
    gen = CatalogGenerator(build_seed_taxonomy(), seed=77)
    return gen.generate_labeled(2500)


@pytest.fixture()
def clock():
    return SimClock()
