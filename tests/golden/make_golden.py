"""Regenerate the golden regression corpus.

Usage::

    PYTHONPATH=src python tests/golden/make_golden.py

Writes ``catalog.json`` (a frozen seeded item batch), ``ruleset.json``
(the serialized golden rules), and ``fired.json`` (the reference fired
map produced by the naive executor) next to this script. All three are
committed; tests never call this script — it exists so the snapshot can
be regenerated *deliberately* when the corpus itself is meant to change.
"""

from __future__ import annotations

import json
import pathlib
import re

from repro.catalog import CatalogGenerator, build_seed_taxonomy
from repro.core import (
    AttributeRule,
    SequenceRule,
    ValueConstraintRule,
    WhitelistRule,
)
from repro.core.serialize import rules_to_dicts
from repro.execution import NaiveExecutor

HERE = pathlib.Path(__file__).parent
SEED = 20260806
N_ITEMS = 120

_METADATA = {"author": "golden", "created_at": 0.0, "provenance": "golden"}


def build_golden_rules(taxonomy):
    """A small analyst-style rule base covering every serializable kind."""
    rules = []
    types = sorted(taxonomy, key=lambda t: t.name)
    for index, product_type in enumerate(types):
        pattern = "|".join(re.escape(head) + "s?" for head in product_type.heads)
        rules.append(WhitelistRule(
            pattern, product_type.name,
            rule_id=f"golden-wl-{index:03d}", **_METADATA,
        ))
    # Sequence rules for a few multi-token heads (ordered-token matching).
    seq_types = [t for t in types if len(t.heads[0].split()) > 1][:4]
    for index, product_type in enumerate(seq_types):
        rules.append(SequenceRule(
            tuple(product_type.heads[0].split()), product_type.name,
            support=0.9, rule_id=f"golden-seq-{index:03d}", **_METADATA,
        ))
    # Attribute-presence rules for a few attribute-bearing types.
    attr_types = [t for t in types if t.attribute_kinds][:3]
    for index, product_type in enumerate(attr_types):
        attribute = sorted(product_type.attribute_kinds)[0]
        rules.append(AttributeRule(
            attribute, product_type.name,
            rule_id=f"golden-attr-{index:03d}", **_METADATA,
        ))
    rules.append(ValueConstraintRule(
        "brand_name", "lg", ("televisions", "tv mounts"),
        rule_id="golden-val-000", **_METADATA,
    ))
    return rules


def item_to_dict(item):
    return {
        "item_id": item.item_id,
        "title": item.title,
        "attributes": dict(item.attributes),
        "true_type": item.true_type,
        "vendor": item.vendor,
        "description": item.description,
    }


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def main() -> None:
    taxonomy = build_seed_taxonomy()
    items = CatalogGenerator(taxonomy, seed=SEED).generate_items(N_ITEMS)
    rules = build_golden_rules(taxonomy)
    fired, _ = NaiveExecutor(rules).run(items)

    (HERE / "catalog.json").write_text(canonical([item_to_dict(i) for i in items]))
    (HERE / "ruleset.json").write_text(canonical(rules_to_dicts(rules)))
    (HERE / "fired.json").write_text(canonical(fired))
    print(f"wrote {len(items)} items, {len(rules)} rules, "
          f"{len(fired)} fired entries to {HERE}")


if __name__ == "__main__":
    main()
