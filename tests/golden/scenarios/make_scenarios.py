"""Regenerate the frozen scenario health reports — deliberately.

Run from the repo root::

    PYTHONPATH=src python tests/golden/scenarios/make_scenarios.py

Any diff in the regenerated ``*.report.json`` files means scenario
semantics changed; commit the new snapshots only when that change is
intentional (and say why in the commit message).
"""

import pathlib

from repro.scenario import load_scenario, run_scenario

HERE = pathlib.Path(__file__).parent


def main() -> None:
    for spec_path in sorted(HERE.glob("*.yaml")):
        spec = load_scenario(str(spec_path))
        report = run_scenario(spec)
        out = HERE / f"{spec_path.stem}.report.json"
        out.write_text(report.to_json())
        print(f"wrote {out.name}: passed={report.passed} "
              f"digest={report.fired_digest}")


if __name__ == "__main__":
    main()
