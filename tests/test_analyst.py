"""Tests for the simulated analyst."""

import pytest

from repro.analyst import AnalystStats, SimulatedAnalyst, head_pattern
from repro.core import BlacklistRule, WhitelistRule
from repro.utils.clock import SimClock


class TestHeadPattern:
    def test_single_word(self):
        assert head_pattern("ring") == "rings?"

    def test_multi_word(self):
        assert head_pattern("laptop bag") == r"laptop\ bags?"

    def test_already_plural(self):
        assert head_pattern("sunglasses") == "sunglasses"

    def test_pattern_matches_both_forms(self):
        rule = WhitelistRule(head_pattern("area rug"), "area rugs")
        from repro.catalog.types import ProductItem
        assert rule.matches(ProductItem(item_id="1", title="shaw area rug"))
        assert rule.matches(ProductItem(item_id="2", title="shaw area rugs"))


@pytest.fixture()
def analyst(taxonomy, clock):
    return SimulatedAnalyst(taxonomy, clock=clock, seed=11)


@pytest.fixture()
def perfect_analyst(taxonomy, clock):
    return SimulatedAnalyst(
        taxonomy, clock=clock, seed=11,
        verification_accuracy=1.0, labeling_accuracy=1.0,
        synonym_judgement_accuracy=1.0,
    )


class TestJudgements:
    def test_verify_pair_mostly_truthful(self, analyst, generator):
        right = wrong = 0
        for _ in range(200):
            item = generator.generate_item("rings")
            if analyst.verify_pair(item, "rings"):
                right += 1
            if analyst.verify_pair(item, "books"):
                wrong += 1
        assert right >= 185
        assert wrong <= 15

    def test_judge_synonym_uses_slot(self, perfect_analyst):
        assert perfect_analyst.judge_synonym("motor oil", "vehicle", "truck")
        assert not perfect_analyst.judge_synonym("motor oil", "vehicle", "olive")

    def test_judge_synonym_unknown_slot(self, perfect_analyst):
        with pytest.raises(KeyError):
            perfect_analyst.judge_synonym("motor oil", "nope", "truck")

    def test_label_items_accuracy(self, perfect_analyst, generator):
        items = generator.generate_items(50)
        labeled = perfect_analyst.label_items(items)
        assert all(l.label == i.true_type for l, i in zip(labeled, items))
        assert perfect_analyst.stats.items_labeled == 50


class TestRuleWriting:
    def test_obvious_rules_cover_heads(self, analyst, taxonomy):
        rules = analyst.obvious_rules("handbags")
        assert len(rules) == len(taxonomy.get("handbags").heads)
        assert all(isinstance(r, WhitelistRule) for r in rules)
        assert all(r.target_type == "handbags" for r in rules)

    def test_writing_advances_clock(self, analyst, clock):
        before = clock.now
        analyst.obvious_rules("rings")
        assert clock.now > before
        assert analyst.stats.rules_written >= 1

    def test_throughput_rate(self, taxonomy, clock):
        analyst = SimulatedAnalyst(taxonomy, clock=clock, rules_per_day=40, seed=0)
        analyst.obvious_rules("rings")  # one head, one rule
        assert clock.now == pytest.approx(1 / 40)

    def test_patch_rules_for_errors(self, perfect_analyst, generator):
        # A keychain item misclassified as rings -> blacklist on "key rings?"
        # plus a whitelist for the true type if its head is in the title.
        errors = []
        for _ in range(5):
            keychain = generator.generate_item("keychains")
            if "key ring" in keychain.title:
                errors.append((keychain, "rings"))
        assert errors, "generator should produce key-ring titles"
        whitelists, blacklists = perfect_analyst.patch_rules_for_errors(errors)
        assert any(isinstance(rule, BlacklistRule) and rule.target_type == "rings"
                   for rule in blacklists)
        for rule in blacklists:
            assert rule.matches(errors[0][0])

    def test_patch_rules_deduplicated(self, perfect_analyst, generator):
        keychain = generator.generate_item("keychains")
        errors = [(keychain, "rings")] * 5
        whitelists, blacklists = perfect_analyst.patch_rules_for_errors(errors)
        assert len(blacklists) <= 1

    def test_bootstrap_training_data(self, perfect_analyst, generator):
        items = generator.generate_items(300)
        labeled = perfect_analyst.bootstrap_training_data(items, "rings")
        assert labeled, "should find ring titles"
        assert all(example.label == "rings" for example in labeled)


class TestValidation:
    def test_bad_rates_rejected(self, taxonomy):
        with pytest.raises(ValueError):
            SimulatedAnalyst(taxonomy, verification_accuracy=2.0)
        with pytest.raises(ValueError):
            SimulatedAnalyst(taxonomy, rules_per_day=0)
