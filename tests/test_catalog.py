"""Tests for repro.catalog: types, vocabulary, generator, batches, drift."""

import random

import pytest

from repro.catalog import (
    BatchStream,
    CatalogGenerator,
    DriftInjector,
    ProductItem,
    ProductType,
    Taxonomy,
    build_seed_taxonomy,
    synthesize_types,
)
from repro.catalog.batches import VendorProfile
from repro.catalog.generator import pluralize
from repro.utils.clock import SimClock


class TestProductItem:
    def test_attribute_lookup_case_insensitive(self):
        item = ProductItem(item_id="i1", title="t", attributes={"ISBN": "978"})
        assert item.attribute("isbn") == "978"
        assert item.has_attribute("Isbn")

    def test_attribute_default(self):
        item = ProductItem(item_id="i1", title="t")
        assert item.attribute("color", "none") == "none"


class TestProductType:
    def test_requires_head(self):
        with pytest.raises(ValueError):
            ProductType(name="x", department="d", heads=())

    def test_requires_positive_weight(self):
        with pytest.raises(ValueError):
            ProductType(name="x", department="d", heads=("x",), weight=0)

    def test_slot_lookup_error_names_available(self):
        pt = ProductType(name="x", department="d", heads=("x",),
                         modifier_slots={"style": ("a",)})
        with pytest.raises(KeyError, match="style"):
            pt.slot("nope")

    def test_all_modifiers_deterministic_order(self):
        pt = ProductType(name="x", department="d", heads=("x",),
                         modifier_slots={"b": ("2",), "a": ("1",)})
        assert pt.all_modifiers() == ["1", "2"]


class TestTaxonomy:
    def test_seed_taxonomy_shape(self, taxonomy):
        assert len(taxonomy) >= 45
        assert "rings" in taxonomy
        assert "motor oil" in taxonomy
        assert len(taxonomy.departments()) >= 10

    def test_duplicate_rejected(self, mutable_taxonomy):
        with pytest.raises(ValueError):
            mutable_taxonomy.add(mutable_taxonomy.get("rings"))

    def test_unknown_type_raises(self, taxonomy):
        with pytest.raises(KeyError):
            taxonomy.get("no such type")

    def test_split_type(self, mutable_taxonomy):
        old = mutable_taxonomy.get("work pants")
        removed = mutable_taxonomy.split_type("work pants", [
            ProductType(name="utility pants", department=old.department, heads=old.heads),
            ProductType(name="tactical pants", department=old.department, heads=old.heads),
        ])
        assert removed.name == "work pants"
        assert "work pants" not in mutable_taxonomy
        assert "utility pants" in mutable_taxonomy

    def test_merge_types(self, mutable_taxonomy):
        merged = ProductType(name="footwear", department="clothing", heads=("shoe",))
        removed = mutable_taxonomy.merge_types(["running shoes", "dress shoes"], merged)
        assert len(removed) == 2
        assert "footwear" in mutable_taxonomy

    def test_table1_synonym_families_present(self, taxonomy):
        # The vocabularies behind Table 1 must exist for E1.
        assert "oriental" in taxonomy.get("area rugs").slot("style")
        assert "boxing" in taxonomy.get("athletic gloves").slot("sport")
        assert "carpenter" in taxonomy.get("shorts").slot("style")
        assert "zirconia fiber" in taxonomy.get("abrasive wheels & discs").slot("kind")
        assert len(taxonomy.get("motor oil").slot("vehicle")) == 14


class TestPluralize:
    def test_simple(self):
        assert pluralize("ring") == "rings"

    def test_multiword(self):
        assert pluralize("area rug") == "area rugs"

    def test_already_plural(self):
        assert pluralize("sunglasses") == "sunglasses"


class TestCatalogGenerator:
    def test_deterministic(self, taxonomy):
        a = CatalogGenerator(taxonomy, seed=5).generate_items(50)
        b = CatalogGenerator(taxonomy, seed=5).generate_items(50)
        assert [i.title for i in a] == [i.title for i in b]

    def test_different_seeds_differ(self, taxonomy):
        a = CatalogGenerator(taxonomy, seed=5).generate_items(50)
        b = CatalogGenerator(taxonomy, seed=6).generate_items(50)
        assert [i.title for i in a] != [i.title for i in b]

    def test_true_type_is_known(self, generator):
        for item in generator.generate_items(100):
            assert item.true_type in generator.taxonomy

    def test_specific_type(self, generator):
        item = generator.generate_item("books")
        assert item.true_type == "books"
        assert item.attribute("isbn") is not None

    def test_isbn_format(self, generator):
        isbn = generator.generate_item("books").attribute("isbn")
        assert len(isbn) == 13 and isbn.startswith("978") and isbn.isdigit()

    def test_titles_usually_contain_head(self, generator):
        hits = 0
        for _ in range(100):
            item = generator.generate_item("rings")
            if "ring" in item.title:
                hits += 1
        # Corner cases and traps keep this below 100%, but not by much.
        assert hits >= 80

    def test_weight_override_shifts_distribution(self, taxonomy):
        gen = CatalogGenerator(taxonomy, seed=3)
        for name in taxonomy.type_names:
            gen.set_type_weight(name, 0.0001)
        gen.set_type_weight("books", 1000.0)
        items = gen.generate_items(60)
        assert sum(1 for i in items if i.true_type == "books") >= 55

    def test_weight_override_rejects_unknown(self, generator):
        with pytest.raises(KeyError):
            generator.set_type_weight("nope", 1.0)

    def test_labeled_matches_truth(self, generator):
        labeled = generator.generate_labeled(20)
        assert all(example.label in generator.taxonomy for example in labeled)

    def test_description_embeds_attributes(self, generator):
        item = generator.generate_item("smart phones")
        assert "brand:" in item.description.lower()
        storage = item.attribute("storage")
        assert storage in item.description.lower()

    def test_negative_count_rejected(self, generator):
        with pytest.raises(ValueError):
            generator.generate_items(-1)

    def test_empty_taxonomy_rejected(self):
        with pytest.raises(ValueError):
            CatalogGenerator(Taxonomy(), seed=0)


class TestSynthesizeTypes:
    def test_count_and_uniqueness(self):
        types = synthesize_types(120, random.Random(0))
        assert len(types) == 120
        assert len({t.name for t in types}) == 120

    def test_zipf_weights(self):
        types = synthesize_types(50, random.Random(0))
        assert types[0].weight > types[-1].weight

    def test_rejects_impossible_count(self):
        with pytest.raises(ValueError):
            synthesize_types(10_000_000, random.Random(0))

    def test_can_extend_seed_taxonomy(self, mutable_taxonomy):
        before = len(mutable_taxonomy)
        for product_type in synthesize_types(30, random.Random(1)):
            mutable_taxonomy.add(product_type)
        assert len(mutable_taxonomy) == before + 30
        gen = CatalogGenerator(mutable_taxonomy, seed=0)
        assert len(gen.generate_items(10)) == 10


class TestBatchStream:
    def test_batches_advance_clock(self, generator, clock):
        stream = BatchStream(generator, clock=clock, seed=0)
        batch1 = stream.next_batch()
        batch2 = stream.next_batch()
        assert batch2.arrived_at > batch1.arrived_at
        assert len(batch1) > 0

    def test_vendor_rewrites_apply(self, generator, clock):
        vendor = VendorProfile(name="weird", min_batch=30, max_batch=30,
                               rewrites={"jeans": "dungarees"})
        stream = BatchStream(generator, clock=clock, vendors=[vendor], seed=0)
        batches = [stream.next_batch() for _ in range(10)]
        titles = [i.title for b in batches for i in b.items]
        assert not any("jeans" in t for t in titles)

    def test_department_restriction(self, generator, clock):
        vendor = VendorProfile(name="autoparts", min_batch=20, max_batch=20,
                               departments=("automotive",))
        stream = BatchStream(generator, clock=clock, vendors=[vendor], seed=0)
        batch = stream.next_batch()
        departments = {generator.taxonomy.get(i.true_type).department for i in batch.items}
        assert departments == {"automotive"}

    def test_take(self, generator, clock):
        stream = BatchStream(generator, clock=clock, seed=0)
        assert len(list(stream.take(3))) == 3
        with pytest.raises(ValueError):
            list(stream.take(-1))


class TestDriftInjector:
    def test_extend_slot(self, mutable_taxonomy):
        gen = CatalogGenerator(mutable_taxonomy, seed=0)
        drift = DriftInjector(gen, seed=0)
        drift.extend_slot("computer cables", "kind", ["usb-c", "thunderbolt"])
        assert "usb-c" in mutable_taxonomy.get("computer cables").slot("kind")
        assert drift.events[0].kind == "extend_slot"

    def test_replace_slot_requires_known_slot(self, mutable_taxonomy):
        gen = CatalogGenerator(mutable_taxonomy, seed=0)
        drift = DriftInjector(gen, seed=0)
        with pytest.raises(KeyError):
            drift.replace_slot("jeans", "nope", ["x"])

    def test_shift_heads_changes_titles(self, mutable_taxonomy):
        gen = CatalogGenerator(mutable_taxonomy, seed=0)
        DriftInjector(gen, seed=0).shift_head_vocabulary("jeans", ["dungaree"])
        titles = [gen.generate_item("jeans").title for _ in range(40)]
        assert any("dungaree" in t for t in titles)
        assert not any("jean" in t for t in titles)

    def test_surge_department(self, mutable_taxonomy):
        gen = CatalogGenerator(mutable_taxonomy, seed=0)
        drift = DriftInjector(gen, seed=0)
        drift.surge_department("automotive", 50.0)
        items = gen.generate_items(120)
        auto = sum(1 for i in items
                   if mutable_taxonomy.get(i.true_type).department == "automotive")
        assert auto > 60

    def test_split_type_updates_taxonomy(self, mutable_taxonomy):
        gen = CatalogGenerator(mutable_taxonomy, seed=0)
        drift = DriftInjector(gen, seed=0)
        event, replacements = drift.split_type("work pants", {
            "utility pants": ["cargo", "utility"],
            "safety pants": ["flame resistant"],
        })
        assert "work pants" not in mutable_taxonomy
        assert {r.name for r in replacements} == {"utility pants", "safety pants"}
