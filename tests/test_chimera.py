"""Tests for the Chimera pipeline: stages, voting, filter, end-to-end."""

import pytest

from repro.catalog.types import ProductItem
from repro.chimera import (
    AttributeValueClassifier,
    Chimera,
    FinalFilter,
    GateAction,
    GateKeeper,
    LearningClassifierStage,
    RuleBasedClassifier,
    VotingMaster,
)
from repro.core import Prediction, RuleSet, parse_rules
from repro.learning import MultinomialNaiveBayes, VotingEnsemble


def item(title, **attributes):
    return ProductItem(item_id=title[:24], title=title, attributes=attributes)


class TestGateKeeper:
    def test_rejects_empty_title(self):
        decision = GateKeeper().process(item("   "))
        assert decision.action is GateAction.REJECT

    def test_passes_normal_items(self):
        assert GateKeeper().process(item("gold ring")).action is GateAction.PASS

    def test_bypass_rule_classifies(self):
        gate = GateKeeper(RuleSet(parse_rules("attr(isbn) -> books")))
        decision = gate.process(item("whatever", isbn="978"))
        assert decision.action is GateAction.CLASSIFY
        assert decision.label == "books"


class TestRuleBasedClassifier:
    def test_predictions_tagged_with_stage(self):
        stage = RuleBasedClassifier(RuleSet(parse_rules("rings? -> rings")))
        predictions = stage.predict(item("gold ring"))
        assert predictions[0].label == "rings"
        assert predictions[0].source.startswith("rule-based:")

    def test_blacklist_inside_stage_vetoes(self):
        stage = RuleBasedClassifier(RuleSet(parse_rules(
            "rings? -> rings\nkey rings? -> NOT rings")))
        assert stage.predict(item("key ring")) == []


class TestAttributeValueClassifier:
    def test_constraints_exposed(self):
        stage = AttributeValueClassifier(RuleSet(parse_rules(
            "value(brand_name)=apple -> laptop computers|smart phones")))
        allowed = stage.constraints(item("macbook", brand_name="apple"))
        assert allowed == {"laptop computers", "smart phones"}
        assert stage.constraints(item("thing")) is None


class TestLearningStage:
    def test_unfit_stage_returns_nothing(self):
        stage = LearningClassifierStage(VotingEnsemble([MultinomialNaiveBayes()]))
        assert stage.predict(item("anything")) == []
        assert not stage.is_trained

    def test_suppression(self):
        stage = LearningClassifierStage(VotingEnsemble([MultinomialNaiveBayes()]))
        stage.fit(["gold ring", "blue jeans"], ["rings", "jeans"])
        stage.suppressed_types.add("rings")
        predictions = stage.predict(item("gold ring"))
        assert all(p.label != "rings" for p in predictions)


class TestVotingMaster:
    class FakeStage:
        def __init__(self, name, predictions, allowed=None):
            self.name = name
            self.enabled = True
            self._predictions = predictions
            self._allowed = allowed

        def predict(self, item):
            return self._predictions

        def constraints(self, item):
            return self._allowed

    def test_rule_votes_outweigh_learning(self):
        rule_stage = self.FakeStage("rule-based", [Prediction("rings", 1.0)])
        learn_stage = self.FakeStage("learning", [Prediction("books", 1.0)])
        final, ranked = VotingMaster(confidence_threshold=0.4).combine(
            item("x"), [rule_stage, learn_stage]
        )
        assert final.label == "rings"

    def test_low_confidence_declines(self):
        stage_a = self.FakeStage("learning", [
            Prediction("a", 0.34), Prediction("b", 0.33), Prediction("c", 0.33)])
        final, ranked = VotingMaster(confidence_threshold=0.5).combine(
            item("x"), [stage_a]
        )
        assert final is None
        assert len(ranked) == 3

    def test_constraints_filter_votes(self):
        rule_stage = self.FakeStage("rule-based", [Prediction("rings", 1.0)])
        constraint = self.FakeStage("attr-value", [], allowed={"books"})
        final, ranked = VotingMaster().combine(item("x"), [rule_stage, constraint])
        assert final is None and ranked == []

    def test_suppressed_types_dropped(self):
        master = VotingMaster(confidence_threshold=0.1)
        master.suppressed_types.add("rings")
        stage = self.FakeStage("rule-based", [Prediction("rings", 1.0)])
        final, ranked = master.combine(item("x"), [stage])
        assert final is None

    def test_disabled_stage_ignored(self):
        stage = self.FakeStage("rule-based", [Prediction("rings", 1.0)])
        stage.enabled = False
        final, _ = VotingMaster().combine(item("x"), [stage])
        assert final is None


class TestFinalFilter:
    def test_veto_falls_through_to_next(self):
        final_filter = FinalFilter(RuleSet(parse_rules("key rings? -> NOT rings")))
        ranked = [Prediction("rings", 0.6), Prediction("keychains", 0.4)]
        chosen = final_filter.select(item("key ring"), ranked, 0.3)
        assert chosen.label == "keychains"

    def test_threshold_stops_walk(self):
        final_filter = FinalFilter(RuleSet(parse_rules("key rings? -> NOT rings")))
        ranked = [Prediction("rings", 0.6), Prediction("keychains", 0.2)]
        assert final_filter.select(item("key ring"), ranked, 0.3) is None

    def test_kill_switch(self):
        final_filter = FinalFilter()
        final_filter.kill_type("medicine")
        ranked = [Prediction("medicine", 0.9)]
        assert final_filter.select(item("pills"), ranked, 0.3) is None
        final_filter.revive_type("medicine")
        assert final_filter.select(item("pills"), ranked, 0.3).label == "medicine"


class TestChimeraEndToEnd:
    @pytest.fixture()
    def chimera(self, generator):
        chimera = Chimera.build(seed=0)
        chimera.add_whitelist_rules(parse_rules("rings? -> rings"))
        chimera.add_blacklist_rules(parse_rules("key rings? -> NOT rings"))
        chimera.add_attribute_rules(parse_rules("attr(isbn) -> books"))
        chimera.add_training(generator.generate_labeled(1200))
        chimera.retrain(min_examples_per_type=3)
        return chimera

    def test_rule_classification(self, chimera, generator):
        ring = generator.generate_item("rings")
        result = chimera.classify_item(ring)
        if "ring" in ring.title:
            assert result.label == "rings"

    def test_blacklist_protects_trap(self, chimera):
        result = chimera.classify_item(item("retractable key ring value"))
        assert result.label != "rings"

    def test_attribute_rule_wins(self, chimera):
        result = chimera.classify_item(item("mystery novel", isbn="9781111111111"))
        assert result.label == "books"

    def test_batch_metrics(self, chimera, generator):
        result = chimera.classify_batch(generator.generate_items(200))
        assert result.true_precision() >= 0.9
        assert result.coverage >= 0.8
        assert result.true_recall() <= result.coverage

    def test_junk_rejected_not_declined(self, chimera):
        result = chimera.classify_batch([item("  ")])
        assert len(result.rejected) == 1
        assert result.results == []

    def test_retrain_requires_examples(self):
        chimera = Chimera.build(seed=0)
        assert chimera.retrain() is False

    def test_min_examples_per_type_drops_tail(self, generator):
        chimera = Chimera.build(seed=0)
        labeled = generator.generate_labeled(300)
        chimera.add_training(labeled)
        chimera.retrain(min_examples_per_type=10)
        trained_labels = set(chimera.learning_stage.ensemble.known_labels())
        from collections import Counter
        counts = Counter(example.label for example in labeled)
        assert all(counts[label] >= 10 for label in trained_labels)

    def test_rule_count(self, chimera):
        counts = chimera.rule_count()
        assert counts["rule-based"] == 1
        assert counts["filter"] == 1
        assert counts["attr-value"] == 1
