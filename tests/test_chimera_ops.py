"""Tests for the feedback loop, monitoring, and incident response."""

import pytest

from repro.analyst import SimulatedAnalyst
from repro.catalog import CatalogGenerator, DriftInjector
from repro.chimera import (
    Chimera,
    FeedbackLoop,
    IncidentManager,
    PrecisionMonitor,
)
from repro.crowd import CrowdBudget, PrecisionEstimator, VerificationTask, WorkerPool


@pytest.fixture()
def loop_parts(taxonomy, generator, clock):
    chimera = Chimera.build(seed=2)
    chimera.add_training(generator.generate_labeled(1500))
    chimera.retrain(min_examples_per_type=4)
    analyst = SimulatedAnalyst(taxonomy, clock=clock, seed=3)
    pool = WorkerPool(seed=4)
    task = VerificationTask(pool, budget=CrowdBudget(500_000), seed=5)
    estimator = PrecisionEstimator(task, sample_size=60, seed=6)
    return chimera, analyst, estimator


class TestFeedbackLoop:
    def test_batches_accepted_above_floor(self, loop_parts, generator):
        chimera, analyst, estimator = loop_parts
        loop = FeedbackLoop(chimera, estimator, analyst, precision_floor=0.9)
        report = loop.process_batch(generator.generate_items(150), "b1")
        assert report.accepted
        assert report.true_precision >= 0.85

    def test_rules_accumulate_on_failures(self, loop_parts, generator):
        chimera, analyst, estimator = loop_parts
        # An unreasonably high floor forces the patch path.
        loop = FeedbackLoop(chimera, estimator, analyst, precision_floor=0.999,
                            max_attempts=2)
        before = sum(chimera.rule_count().values())
        report = loop.process_batch(generator.generate_items(150), "b1")
        after = sum(chimera.rule_count().values())
        if not report.accepted:
            assert after > before
            assert report.rules_added == after - before

    def test_declined_items_become_training(self, loop_parts, generator):
        chimera, analyst, estimator = loop_parts
        loop = FeedbackLoop(chimera, estimator, analyst, precision_floor=0.9,
                            manual_label_budget_per_batch=20)
        pending_before = chimera.pending_training
        loop.process_batch(generator.generate_items(150), "b1")
        assert chimera.pending_training >= pending_before

    def test_invalid_floor(self, loop_parts):
        chimera, analyst, estimator = loop_parts
        with pytest.raises(ValueError):
            FeedbackLoop(chimera, estimator, analyst, precision_floor=1.5)


class TestPrecisionMonitor:
    def test_degradation_detected(self):
        monitor = PrecisionMonitor(floor=0.92, window=3)
        monitor.record("b1", 0.0, 0.95, 0.9, 100)
        assert not monitor.degraded()
        monitor.record("b2", 1.0, 0.80, 0.9, 100)
        assert monitor.degraded()

    def test_persistent_degradation(self):
        monitor = PrecisionMonitor(floor=0.92, window=4)
        monitor.record("b1", 0.0, 0.85, 0.9, 100)
        assert not monitor.persistent_degradation(batches=2)
        monitor.record("b2", 1.0, 0.86, 0.9, 100)
        assert monitor.persistent_degradation(batches=2)

    def test_suspect_types(self):
        monitor = PrecisionMonitor(floor=0.92, window=3)
        monitor.record("b1", 0.0, 0.8, 0.9, 100, errors_by_type={"jeans": 5, "rings": 1})
        monitor.record("b2", 1.0, 0.8, 0.9, 100, errors_by_type={"jeans": 7})
        assert monitor.suspect_types(1) == [("jeans", 12)]

    def test_series(self):
        monitor = PrecisionMonitor()
        monitor.record("b1", 0.0, 0.95, 0.90, 10)
        monitor.record("b2", 1.0, 0.93, 0.91, 10)
        assert monitor.precision_series() == [("b1", 0.95), ("b2", 0.93)]
        assert monitor.coverage_series() == [("b1", 0.90), ("b2", 0.91)]


class TestIncidents:
    @pytest.fixture()
    def prepared(self, taxonomy, generator, clock):
        chimera = Chimera.build(seed=7)
        analyst = SimulatedAnalyst(taxonomy, clock=clock, seed=8,
                                   verification_accuracy=1.0, labeling_accuracy=1.0)
        chimera.add_whitelist_rules(analyst.obvious_rules("jeans"))
        chimera.add_training(generator.generate_labeled(1200))
        chimera.retrain(min_examples_per_type=4)
        return chimera, analyst

    def test_scale_down_stops_predictions(self, prepared, generator):
        chimera, analyst = prepared
        manager = IncidentManager(chimera)
        incident = manager.open_incident(["jeans"])
        manager.scale_down(incident)
        jeans = generator.generate_item("jeans")
        result = chimera.classify_item(jeans)
        assert result.label != "jeans"
        assert incident.status == "scaled-down"

    def test_restore_reenables(self, prepared, generator):
        chimera, analyst = prepared
        manager = IncidentManager(chimera)
        incident = manager.open_incident(["jeans"])
        manager.scale_down(incident)
        manager.restore(incident)
        assert incident.status == "closed"
        hits = 0
        for _ in range(20):
            jeans = generator.generate_item("jeans")
            if chimera.classify_item(jeans).label == "jeans":
                hits += 1
        assert hits >= 15

    def test_repair_adds_rules(self, prepared, generator):
        chimera, analyst = prepared
        manager = IncidentManager(chimera)
        incident = manager.open_incident(["jeans"])
        manager.scale_down(incident)
        errors = [(generator.generate_item("jeans"), "shorts") for _ in range(5)]
        added = manager.repair(incident, analyst, errors)
        assert added > 0
        assert incident.status == "repaired"

    def test_invalid_transitions(self, prepared):
        chimera, analyst = prepared
        manager = IncidentManager(chimera)
        incident = manager.open_incident(["jeans"])
        with pytest.raises(ValueError):
            manager.restore(incident)
        manager.scale_down(incident)
        with pytest.raises(ValueError):
            manager.scale_down(incident)

    def test_scale_up_onboards_types(self, prepared):
        chimera, analyst = prepared
        manager = IncidentManager(chimera)
        before = chimera.rule_count()["rule-based"]
        added = manager.scale_up(analyst, ["handbags", "backpacks"])
        assert added > 0
        assert chimera.rule_count()["rule-based"] == before + added

    def test_empty_incident_rejected(self, prepared):
        chimera, _ = prepared
        with pytest.raises(ValueError):
            IncidentManager(chimera).open_incident([])
