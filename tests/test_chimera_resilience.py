"""Circuit breaker, stage health monitoring, and stage-failure incidents.

Component-failure resilience for the Chimera pipeline: a classifier stage
that starts throwing is routed around (no votes) instead of taking down
classification, the health monitor keeps an auditable ledger, and the
incident manager opens stage-failure incidents automatically. Everything
is call-counted — no wall-clock time anywhere.
"""

import pytest

from repro.catalog.types import ProductItem
from repro.chimera import (
    BreakerState,
    Chimera,
    CircuitBreaker,
    GuardedStage,
    IncidentManager,
    StageHealthMonitor,
)
from repro.core import parse_rules
from repro.core.prepared import prepare
from repro.utils.clock import SimClock


def item(title, **attributes):
    return ProductItem(item_id=title[:24], title=title, attributes=attributes)


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.times_opened == 1
        assert breaker.transitions == [("closed", "open")]

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED  # never 2 in a row

    def test_open_swallows_cooldown_calls_then_probes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=3)
        breaker.record_failure()
        assert [breaker.allow() for _ in range(3)] == [False, False, True]
        assert breaker.state is BreakerState.HALF_OPEN

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1)
        breaker.record_failure()
        assert breaker.allow()  # immediate probe with cooldown=1
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert ("half-open", "closed") in breaker.transitions

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=1)
        for _ in range(3):
            breaker.record_failure()
        breaker.allow()  # probe
        breaker.record_failure()  # one failure re-opens from HALF_OPEN
        assert breaker.state is BreakerState.OPEN
        assert breaker.times_opened == 2

    def test_counters_accumulate(self):
        breaker = CircuitBreaker(failure_threshold=10)
        for _ in range(4):
            breaker.record_failure()
        for _ in range(6):
            breaker.record_success()
        assert (breaker.total_failures, breaker.total_successes) == (4, 6)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=0)

    def test_repr_names_state(self):
        text = repr(CircuitBreaker(name="learning"))
        assert "learning" in text and "closed" in text


class TestStageHealthMonitor:
    def test_breakers_are_lazy_and_per_stage(self):
        health = StageHealthMonitor()
        a = health.breaker("a")
        assert health.breaker("a") is a
        assert health.breaker("b") is not a

    def test_failure_ledger(self):
        health = StageHealthMonitor(failure_threshold=5)
        health.record_failure("attr", ValueError("boom"))
        health.record_success("attr")
        assert health.failures["attr"] == 1
        assert health.successes["attr"] == 1
        fault = health.faults[0]
        assert fault.stage == "attr" and "boom" in fault.error

    def test_open_event_and_callback_fire_once(self):
        health = StageHealthMonitor(failure_threshold=2, cooldown=10)
        opened = []
        health.on_breaker_open.append(opened.append)
        for _ in range(4):  # keeps failing past the threshold
            health.record_failure("learning", RuntimeError("dead"))
        assert opened == ["learning"]
        assert health.events == [("learning", "breaker-open")]

    def test_routed_around_counter(self):
        health = StageHealthMonitor(failure_threshold=1, cooldown=5)
        health.record_failure("rule-based", RuntimeError("x"))
        assert not health.allow("rule-based")
        assert not health.allow("rule-based")
        assert health.routed_around["rule-based"] == 2

    def test_degraded_stages_and_report(self):
        health = StageHealthMonitor(failure_threshold=1, cooldown=3)
        health.record_success("rule-based")
        health.record_failure("attr-value", RuntimeError("x"))
        assert health.degraded_stages() == ["attr-value"]
        report = health.report()
        assert report["attr-value"]["state"] == "open"
        assert report["attr-value"]["times_opened"] == 1
        assert report["rule-based"] == {
            "state": "closed", "successes": 1, "failures": 0,
            "routed_around": 0, "times_opened": 0,
        }


class _CountingStage:
    """Minimal stage stub: scripted predictions, optional sabotage."""

    def __init__(self, name="stub"):
        self.name = name
        self.enabled = True
        self.calls = 0
        self.broken = False

    def predict(self, item):
        self.calls += 1
        if self.broken:
            raise RuntimeError("model artifact corrupted")
        return ["vote"]

    def constraints(self, item):
        if self.broken:
            raise RuntimeError("constraint table unreadable")
        return {"books"}


class TestGuardedStage:
    def test_delegates_name_and_enabled(self):
        stage = _CountingStage("learning")
        guarded = GuardedStage(stage, StageHealthMonitor())
        assert guarded.name == "learning"
        stage.enabled = False
        assert guarded.enabled is False

    def test_healthy_calls_pass_through(self):
        health = StageHealthMonitor()
        guarded = GuardedStage(_CountingStage(), health)
        assert guarded.predict(None) == ["vote"]
        assert guarded.constraints(None) == {"books"}
        assert health.successes["stub"] == 2

    def test_exceptions_become_no_votes(self):
        health = StageHealthMonitor(failure_threshold=10)
        stage = _CountingStage()
        stage.broken = True
        guarded = GuardedStage(stage, health)
        assert guarded.predict(None) == []
        assert guarded.constraints(None) is None
        assert health.failures["stub"] == 2

    def test_open_breaker_skips_the_stage_entirely(self):
        health = StageHealthMonitor(failure_threshold=1, cooldown=100)
        stage = _CountingStage()
        stage.broken = True
        guarded = GuardedStage(stage, health)
        guarded.predict(None)  # trips the breaker
        calls_before = stage.calls
        assert guarded.predict(None) == []
        assert stage.calls == calls_before  # never invoked while open
        assert health.routed_around["stub"] == 1


def _sabotage(stage):
    """Break a stage the way a bad artifact does: every call throws.

    Patching ``rules.apply`` fails both ``predict`` and ``constraints`` —
    a stage broken only in one method keeps having its breaker reset by
    the other method's successes, which is correct breaker behaviour but
    not what these tests are about.
    """
    def boom(*args, **kwargs):
        raise RuntimeError("rule dictionary corrupted")

    stage.rules.apply = boom


def _repair(stage):
    del stage.rules.apply


def build_chimera(failure_threshold=3, cooldown=4):
    chimera = Chimera.build()
    chimera.health.failure_threshold = failure_threshold
    chimera.health.cooldown = cooldown
    chimera.add_whitelist_rules(parse_rules("""
        rings? -> rings
        denim.*jeans? -> jeans
    """))
    chimera.add_attribute_rules(parse_rules("attr(isbn) -> books"))
    return chimera


ITEMS = [
    item("gold ring"),
    item("relaxed denim jeans"),
    item("mystery novel", isbn="978"),
    item("diamond ring boxed"),
]


class TestChimeraStageFailure:
    def test_pipeline_survives_a_throwing_stage(self):
        chimera = build_chimera(failure_threshold=2, cooldown=50)
        _sabotage(chimera.attr_stage)
        result = chimera.classify_batch(ITEMS)
        # Rule-stage items still classify; only the broken stage's votes die.
        labels = {r.item.item_id: r.label for r in result.results}
        assert labels["gold ring"] == "rings"
        assert labels["relaxed denim jeans"] == "jeans"
        assert chimera.degraded_stages() == ["attr-value"]
        assert chimera.health.failures["attr-value"] >= 2
        assert chimera.health_report()["attr-value"]["state"] == "open"

    def test_healthy_pipeline_is_unchanged_by_the_guard(self):
        guarded = build_chimera().classify_batch(ITEMS)
        labels = {r.item.item_id: r.label for r in guarded.results}
        assert labels["mystery novel"] == "books"
        assert build_chimera().degraded_stages() == []

    def test_breaker_recovery_via_probe(self):
        chimera = build_chimera(failure_threshold=1, cooldown=2)
        _sabotage(chimera.attr_stage)
        chimera.classify_item(ITEMS[0])  # trips attr-value open
        _repair(chimera.attr_stage)
        # Cooldown is counted in allow() calls: classify until the probe
        # goes through and succeeds, re-closing the breaker.
        for _ in range(3):
            chimera.classify_item(ITEMS[0])
        assert chimera.degraded_stages() == []
        breaker = chimera.health.breaker("attr-value")
        assert ("half-open", "closed") in breaker.transitions

    def test_shared_monitor_can_be_injected(self):
        health = StageHealthMonitor(failure_threshold=1, cooldown=9)
        chimera = Chimera.build()
        chimera.health.record_failure  # default monitor exists...
        assert Chimera(
            chimera.gatekeeper, chimera.rule_stage, chimera.attr_stage,
            chimera.learning_stage, chimera.voting, chimera.filter,
            health=health,
        ).health is health


class TestStageFailureIncidents:
    def test_watch_health_auto_opens_incident(self):
        chimera = build_chimera(failure_threshold=2, cooldown=50)
        manager = IncidentManager(chimera)
        clock = SimClock()
        clock.advance(120.0)
        manager.watch_health(clock)
        _sabotage(chimera.attr_stage)
        chimera.classify_batch(ITEMS)
        assert len(manager.incidents) == 1
        incident = manager.incidents[0]
        assert incident.kind == "stage-failure"
        assert incident.affected_types == ("attr-value",)
        assert incident.opened_at == pytest.approx(120.0)
        assert "circuit breaker opened" in incident.notes[0]

    def test_scale_down_refuses_stage_incidents(self):
        chimera = build_chimera()
        manager = IncidentManager(chimera)
        incident = manager.open_stage_incident("learning")
        with pytest.raises(ValueError, match="circuit breaker"):
            manager.scale_down(incident)

    def test_close_stage_incident(self):
        manager = IncidentManager(build_chimera())
        incident = manager.open_stage_incident("learning")
        manager.close_stage_incident(incident)
        assert incident.status == "closed"
        assert "stage recovered" in incident.notes[-1]

    def test_close_rejects_quality_incidents(self):
        manager = IncidentManager(build_chimera())
        incident = manager.open_incident(["rings"])
        with pytest.raises(ValueError, match="not a stage-failure"):
            manager.close_stage_incident(incident)

    def test_quality_playbook_still_works_alongside(self):
        chimera = build_chimera()
        manager = IncidentManager(chimera)
        incident = manager.open_incident(["rings"])
        assert incident.kind == "quality"
        manager.scale_down(incident)
        assert incident.status == "scaled-down"
        manager.restore(incident)
        assert incident.status == "closed"

    def test_determinism_same_faults_same_report(self):
        def run():
            chimera = build_chimera(failure_threshold=2, cooldown=3)
            _sabotage(chimera.attr_stage)
            chimera.classify_batch(ITEMS * 3)
            return chimera.health_report()

        assert run() == run()
