"""Tests for the analyst rule DSL."""

import pytest

from repro.catalog.types import ProductItem
from repro.core import (
    AttributeRule,
    BlacklistRule,
    ConstraintRule,
    DictionaryStore,
    PredicateRule,
    RuleParseError,
    UnknownDictionaryError,
    ValueConstraintRule,
    WhitelistRule,
    parse_rule,
    parse_rules,
)


def item(title, **attributes):
    return ProductItem(item_id="i", title=title, attributes=attributes)


class TestParseRule:
    def test_whitelist(self):
        rule = parse_rule("rings? -> rings")
        assert isinstance(rule, WhitelistRule)
        assert rule.target_type == "rings"

    def test_blacklist(self):
        rule = parse_rule("key rings? -> NOT rings")
        assert isinstance(rule, BlacklistRule)

    def test_attribute(self):
        rule = parse_rule("attr(isbn) -> books")
        assert isinstance(rule, AttributeRule)
        assert rule.matches(item("x", isbn="978"))

    def test_value_constraint(self):
        rule = parse_rule("value(brand_name)=apple -> laptop computers|smart phones")
        assert isinstance(rule, ValueConstraintRule)
        assert rule.allowed_types == ("laptop computers", "smart phones")

    def test_predicate_with_price(self):
        rule = parse_rule("apple & price < 100 -> NOT smart phones")
        assert isinstance(rule, PredicateRule)
        assert rule.is_blacklist
        assert rule.matches(item("apple charger", price="49.99"))
        assert not rule.matches(item("apple iphone", price="699"))
        assert not rule.matches(item("apple charger"))  # missing price

    def test_title_tilde_form(self):
        rule = parse_rule("title ~ (wedding bands?) -> rings")
        assert isinstance(rule, WhitelistRule)
        assert rule.matches(item("platinaire wedding band"))

    def test_dictionary_clause(self):
        store = DictionaryStore({"pc_words": ["desktop", "tower pc"]})
        rule = parse_rule("dict(pc_words) -> laptop computers|desktop computers",
                          dictionaries=store)
        assert isinstance(rule, ConstraintRule)
        assert rule.matches(item("gaming tower pc"))
        assert not rule.matches(item("gaming mouse"))

    def test_unknown_dictionary(self):
        store = DictionaryStore({"a": ["x"]})
        with pytest.raises(UnknownDictionaryError):
            parse_rule("dict(missing) -> t", dictionaries=store)

    def test_dictionary_without_store(self):
        with pytest.raises(RuleParseError):
            parse_rule("dict(x) -> t")

    def test_multi_clause_conjunction(self):
        rule = parse_rule("apple & attr(storage) -> smart phones")
        assert rule.matches(item("apple 64gb", storage="64gb"))
        assert not rule.matches(item("apple 64gb"))

    def test_missing_arrow(self):
        with pytest.raises(RuleParseError):
            parse_rule("no arrow here")

    def test_empty_condition(self):
        with pytest.raises(RuleParseError):
            parse_rule(" -> rings")

    def test_empty_target(self):
        with pytest.raises(RuleParseError):
            parse_rule("rings? -> ")

    def test_not_with_multiple_targets_rejected(self):
        with pytest.raises(RuleParseError):
            parse_rule("x -> NOT a|b")

    def test_bad_regex_reported(self):
        with pytest.raises(RuleParseError):
            parse_rule("(unclosed -> rings")

    def test_metadata_passthrough(self):
        rule = parse_rule("rings? -> rings", author="kay", confidence=0.8)
        assert rule.author == "kay"
        assert rule.confidence == 0.8


class TestParseRules:
    def test_block_with_comments(self):
        rules = parse_rules("""
            # whitelists
            rings? -> rings
            jeans? -> jeans   # trailing comment

            key rings? -> NOT rings
        """)
        assert len(rules) == 3
        assert sum(1 for r in rules if r.is_blacklist) == 1

    def test_empty_block(self):
        assert parse_rules("\n# nothing\n") == []


class TestDictionaryStore:
    def test_register_and_get(self):
        store = DictionaryStore()
        store.register("brands", ["Apple", "  dell "])
        assert store.get("brands") == ("apple", "dell")
        assert "brands" in store

    def test_empty_dictionary_rejected(self):
        with pytest.raises(ValueError):
            DictionaryStore({"empty": ["  "]})
