"""Tests for rule-system property checks (order independence etc.)."""

from repro.catalog.types import ProductItem
from repro.core import (
    RuleSet,
    annihilated_items,
    check_order_independence,
    parse_rules,
    stage_partition,
    whitelist_conflicts,
)


def item(title):
    return ProductItem(item_id=title[:24], title=title)


ITEMS = [
    item("diamond ring"),
    item("key ring carabiner"),
    item("wedding band platinaire"),
    item("denim jeans"),
    item("area rug 5x7"),
]


def build_ruleset():
    return RuleSet(parse_rules("""
        rings? -> rings
        wedding bands? -> rings
        jeans? -> jeans
        denim.*jeans? -> jeans
        key rings? -> NOT rings
    """))


class TestOrderIndependence:
    def test_holds_for_staged_ruleset(self):
        report = check_order_independence(build_ruleset(), ITEMS, trials=8, seed=3)
        assert report.holds
        assert report.trials == 8
        assert report.items_checked == len(ITEMS)

    def test_report_fields_on_pass(self):
        report = check_order_independence(build_ruleset(), [], trials=2)
        assert report.holds and report.first_violation == ""


class TestConflicts:
    def test_detects_cross_type_whitelist_conflict(self):
        rules = RuleSet(parse_rules("""
            rings? -> rings
            key.* -> keychains
        """))
        conflicts = whitelist_conflicts(rules, ITEMS)
        assert len(conflicts) == 1
        conflicted_item, labels = conflicts[0]
        assert "key ring" in conflicted_item.title
        assert labels == ["keychains", "rings"]

    def test_no_conflicts_in_clean_set(self):
        assert whitelist_conflicts(build_ruleset(), ITEMS) == []


class TestAnnihilation:
    def test_blacklist_wiping_all_votes_detected(self):
        wiped = annihilated_items(build_ruleset(), ITEMS)
        assert [i.title for i in wiped] == ["key ring carabiner"]


def test_stage_partition():
    rules = build_ruleset()
    rules.disable(next(iter(rules)).rule_id)
    partition = stage_partition(rules)
    assert partition == {"whitelist": 3, "constraint": 0, "blacklist": 1, "disabled": 1}
