"""Tests for the rule registry lifecycle and audit trail."""

import pytest

from repro.core import (
    DuplicateRuleError,
    LifecycleError,
    RuleRegistry,
    RuleStatus,
    UnknownRuleError,
    WhitelistRule,
)
from repro.utils.clock import SimClock


@pytest.fixture()
def registry(clock):
    return RuleRegistry(clock=clock)


class TestLifecycle:
    def test_submit_starts_draft(self, registry):
        rule_id = registry.submit(WhitelistRule("rings?", "rings"))
        assert registry.status_of(rule_id) is RuleStatus.DRAFT
        assert not registry.get(rule_id).enabled

    def test_full_happy_path(self, registry):
        rule_id = registry.submit(WhitelistRule("rings?", "rings"))
        registry.validate(rule_id, precision_estimate=0.95)
        registry.deploy(rule_id)
        assert registry.status_of(rule_id) is RuleStatus.DEPLOYED
        assert registry.get(rule_id).enabled
        registry.disable(rule_id, reason="incident")
        assert not registry.get(rule_id).enabled
        registry.deploy(rule_id)  # re-enable after incident
        registry.retire(rule_id)
        assert registry.status_of(rule_id) is RuleStatus.RETIRED

    def test_cannot_deploy_unvalidated(self, registry):
        rule_id = registry.submit(WhitelistRule("a", "t"))
        with pytest.raises(LifecycleError):
            registry.deploy(rule_id)

    def test_retired_is_terminal(self, registry):
        rule_id = registry.submit(WhitelistRule("a", "t"))
        registry.retire(rule_id)
        with pytest.raises(LifecycleError):
            registry.validate(rule_id, 0.9)

    def test_duplicate_submit(self, registry):
        rule = WhitelistRule("a", "t")
        registry.submit(rule)
        with pytest.raises(DuplicateRuleError):
            registry.submit(rule)

    def test_unknown_rule(self, registry):
        with pytest.raises(UnknownRuleError):
            registry.deploy("nope")

    def test_precision_estimate_bounds(self, registry):
        rule_id = registry.submit(WhitelistRule("a", "t"))
        with pytest.raises(ValueError):
            registry.validate(rule_id, 1.5)


class TestRevision:
    def test_revise_bumps_version_and_resets_validation(self, registry):
        rule_id = registry.submit(WhitelistRule("rings?", "rings"))
        registry.validate(rule_id, 0.95)
        registry.deploy(rule_id)
        registry.revise(rule_id, WhitelistRule("(wedding )?rings?", "rings"))
        assert registry.status_of(rule_id) is RuleStatus.DRAFT
        assert registry.precision_of(rule_id) is None
        assert registry.get(rule_id).pattern == "(wedding )?rings?"


class TestQueries:
    def test_query_filters(self, registry):
        a = registry.submit(WhitelistRule("a", "rings", author="kay"))
        b = registry.submit(WhitelistRule("b", "books", author="lee"))
        registry.validate(a, 0.9)
        registry.deploy(a)
        assert [r.rule_id for r in registry.query(status=RuleStatus.DEPLOYED)] == [a]
        assert [r.rule_id for r in registry.query(author="lee")] == [b]
        assert [r.rule_id for r in registry.query(target_type="rings")] == [a]

    def test_deployed_ruleset(self, registry):
        a = registry.submit(WhitelistRule("rings?", "rings"))
        registry.validate(a, 0.9)
        registry.deploy(a)
        registry.submit(WhitelistRule("b", "books"))
        deployed = registry.deployed_ruleset()
        assert len(deployed) == 1

    def test_counts_by_status(self, registry):
        registry.submit(WhitelistRule("a", "t"))
        counts = registry.counts_by_status()
        assert counts["draft"] == 1
        assert counts["deployed"] == 0


class TestAudit:
    def test_audit_records_actor_and_time(self, registry, clock):
        rule_id = registry.submit(WhitelistRule("a", "t"), actor="kay")
        clock.advance(days=1)
        registry.validate(rule_id, 0.9, actor="crowd-pipeline")
        trail = registry.audit_for(rule_id)
        assert [(e.actor, e.action) for e in trail] == [
            ("kay", "submit"), ("crowd-pipeline", "validated"),
        ]
        assert trail[1].at == 1.0
