"""Tests for repro.core.rule: the rule classes and anchor extraction."""

import pytest

from repro.catalog.types import ProductItem
from repro.core import (
    AttributeRule,
    BlacklistRule,
    Prediction,
    SequenceRule,
    ValueConstraintRule,
    WhitelistRule,
    compile_title_regex,
    extract_anchor_literals,
)


def item(title, **attributes):
    return ProductItem(item_id="i", title=title, attributes=attributes)


class TestCompileTitleRegex:
    def test_word_boundaries(self):
        pattern = compile_title_regex("rings?")
        assert pattern.search("diamond ring")
        assert pattern.search("gold rings sale")
        assert not pattern.search("earrings")

    def test_phrase_with_gap(self):
        pattern = compile_title_regex("diamond.*trio sets?")
        assert pattern.search("diamond accent trio set")
        assert not pattern.search("trio set diamond")


class TestWhitelistRule:
    def test_matches_and_predicts(self):
        rule = WhitelistRule("rings?", "rings")
        assert rule.matches(item("Always & Forever Diamond Accent Ring"))
        prediction = rule.predict(item("gold ring"))
        assert prediction == Prediction("rings", weight=1.0, source=rule.rule_id)

    def test_no_match_no_prediction(self):
        rule = WhitelistRule("rings?", "rings")
        assert rule.predict(item("area rug")) is None

    def test_punctuation_normalized_before_match(self):
        rule = WhitelistRule("rings?", "rings")
        assert rule.matches(item("RING, 10kt!"))

    def test_invalid_regex_raises(self):
        with pytest.raises(ValueError):
            WhitelistRule("(unclosed", "rings")

    def test_confidence_bounds(self):
        with pytest.raises(ValueError):
            WhitelistRule("a", "t", confidence=1.5)

    def test_empty_target_rejected(self):
        with pytest.raises(ValueError):
            WhitelistRule("a", "")

    def test_rule_ids_unique(self):
        a, b = WhitelistRule("a", "t"), WhitelistRule("a", "t")
        assert a.rule_id != b.rule_id


class TestBlacklistRule:
    def test_is_blacklist_and_never_predicts(self):
        rule = BlacklistRule("key rings?", "rings")
        assert rule.is_blacklist
        assert rule.matches(item("led key ring"))
        assert rule.predict(item("led key ring")) is None


class TestAttributeRule:
    def test_fires_on_presence(self):
        rule = AttributeRule("isbn", "books")
        assert rule.matches(item("anything", isbn="978"))
        assert not rule.matches(item("anything"))

    def test_case_insensitive_attribute(self):
        rule = AttributeRule("isbn", "books")
        assert rule.matches(ProductItem(item_id="i", title="t", attributes={"ISBN": "9"}))


class TestValueConstraintRule:
    def test_constraint_semantics(self):
        rule = ValueConstraintRule("brand_name", "Apple", ["laptop computers", "smart phones"])
        assert rule.is_constraint
        assert rule.matches(item("macbook", brand_name="apple"))
        assert not rule.matches(item("macbook", brand_name="dell"))
        assert rule.predict(item("macbook", brand_name="apple")) is None

    def test_requires_allowed_types(self):
        with pytest.raises(ValueError):
            ValueConstraintRule("a", "v", [])


class TestSequenceRule:
    def test_in_order_matching(self):
        rule = SequenceRule(("denim", "jeans"), "jeans")
        assert rule.matches(item("blue denim carpenter jeans"))
        assert not rule.matches(item("jeans made of denim"))

    def test_pattern_rendering(self):
        assert SequenceRule(("a", "b", "c"), "t").pattern == "a.*b.*c"

    def test_stopwords_ignored_in_title(self):
        rule = SequenceRule(("denim", "jeans"), "jeans")
        assert rule.matches(item("denim and the jeans"))

    def test_anchor_literals_all_tokens(self):
        rule = SequenceRule(("denim", "jeans"), "jeans")
        assert rule.anchor_literals() == frozenset({"denim", "jeans"})

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            SequenceRule((), "t")


class TestAnchorExtraction:
    def test_simple_plural(self):
        assert extract_anchor_literals("rings?") == frozenset({"ring"})

    def test_disjunction_group(self):
        anchors = extract_anchor_literals("(motor|engine) oils?")
        assert anchors == frozenset({"motor", "engine"})

    def test_top_level_alternation_sound(self):
        anchors = extract_anchor_literals("ring|band")
        assert anchors == frozenset({"ring", "band"})

    def test_gap_pattern_uses_longest_literal(self):
        anchors = extract_anchor_literals("diamond.*trio sets?")
        assert anchors == frozenset({"diamond"})

    def test_soundness_on_sample(self):
        # Every matching title must contain at least one anchor token.
        pattern = "(area|braided) rugs?"
        anchors = extract_anchor_literals(pattern)
        compiled = compile_title_regex(pattern)
        for title in ("braided rug sale", "area rugs 5x7", "big braided rugs"):
            assert compiled.search(title)
            assert any(anchor in title for anchor in anchors)

    def test_gives_up_on_unanchorable(self):
        assert extract_anchor_literals(r"\d+") is None

    def test_optional_group(self):
        anchors = extract_anchor_literals("(denim )?jeans?")
        # With the group optional, "jean" must anchor every branch.
        assert "jean" in anchors
