"""Tests for RuleSet evaluation semantics."""

import pytest

from repro.catalog.types import ProductItem
from repro.core import (
    AttributeRule,
    BlacklistRule,
    DuplicateRuleError,
    RuleSet,
    UnknownRuleError,
    ValueConstraintRule,
    WhitelistRule,
    parse_rules,
)


def item(title, **attributes):
    return ProductItem(item_id=title[:20], title=title, attributes=attributes)


@pytest.fixture()
def ruleset():
    return RuleSet(parse_rules("""
        rings? -> rings
        wedding bands? -> rings
        key rings? -> NOT rings
        attr(isbn) -> books
        value(brand_name)=apple -> laptop computers|smart phones
        laptops? -> laptop computers
        phones? -> smart phones
    """))


class TestEvaluation:
    def test_whitelist_fires(self, ruleset):
        verdict = ruleset.apply(item("diamond ring"))
        assert verdict.labels == ["rings"]

    def test_blacklist_vetoes(self, ruleset):
        verdict = ruleset.apply(item("carabiner key ring"))
        assert verdict.labels == []
        assert verdict.vetoed == ("rings",)

    def test_whitelist_before_blacklist_order(self, ruleset):
        # A wedding band is a ring even though "band" appears — no blacklist
        # fires, and the two whitelist rules dedupe to one prediction.
        verdict = ruleset.apply(item("platinaire wedding band ring"))
        assert verdict.labels == ["rings"]

    def test_constraint_restricts(self, ruleset):
        # brand=apple constrains to laptop/smartphone; 'ring' vote is dropped.
        verdict = ruleset.apply(item("apple ring laptop", brand_name="apple"))
        assert verdict.labels == ["laptop computers"]
        assert verdict.constrained_to == ("laptop computers", "smart phones")

    def test_constraint_can_empty_the_verdict(self, ruleset):
        verdict = ruleset.apply(item("apple ring", brand_name="apple"))
        assert verdict.labels == []

    def test_attribute_rule_predicts(self, ruleset):
        verdict = ruleset.apply(item("some title", isbn="9781234567890"))
        assert "books" in verdict.labels

    def test_fired_lists_all_matching_rules(self, ruleset):
        verdict = ruleset.apply(item("key ring"))
        assert len(verdict.fired) == 2  # whitelist + blacklist

    def test_best_breaks_ties_deterministically(self):
        rules = RuleSet([
            WhitelistRule("a", "zeta", confidence=0.5),
            WhitelistRule("a", "alpha", confidence=0.5),
        ])
        best = rules.apply(item("a thing")).best()
        assert best.label == "zeta"  # (weight, label) max -> lexicographically last

    def test_strongest_vote_per_label_kept(self):
        rules = RuleSet([
            WhitelistRule("ring", "rings", confidence=0.3),
            WhitelistRule("gold", "rings", confidence=0.9),
        ])
        verdict = rules.apply(item("gold ring"))
        assert len(verdict.predictions) == 1
        assert verdict.predictions[0].weight == 0.9


class TestMutation:
    def test_duplicate_id_rejected(self):
        rule = WhitelistRule("a", "t")
        ruleset = RuleSet([rule])
        with pytest.raises(DuplicateRuleError):
            ruleset.add(rule)

    def test_remove(self, ruleset):
        first = next(iter(ruleset))
        ruleset.remove(first.rule_id)
        assert first.rule_id not in ruleset

    def test_remove_unknown(self, ruleset):
        with pytest.raises(UnknownRuleError):
            ruleset.remove("nope")

    def test_disable_enable(self, ruleset):
        target = next(iter(ruleset))
        ruleset.disable(target.rule_id)
        assert target not in ruleset.active_rules()
        ruleset.enable(target.rule_id)
        assert target in ruleset.active_rules()

    def test_disable_type(self, ruleset):
        disabled = ruleset.disable_type("rings")
        assert len(disabled) == 3  # two whitelists + one blacklist
        assert ruleset.apply(item("diamond ring")).labels == []
        ruleset.enable_all(disabled)
        assert ruleset.apply(item("diamond ring")).labels == ["rings"]


class TestViews:
    def test_partition(self, ruleset):
        assert len(ruleset.whitelists()) == 5
        assert len(ruleset.blacklists()) == 1
        assert len(ruleset.constraints()) == 1

    def test_rules_for_type(self, ruleset):
        assert len(ruleset.rules_for_type("rings")) == 3

    def test_coverage(self, ruleset):
        items = [item("gold ring"), item("key ring"), item("area rug")]
        coverage = ruleset.coverage(items)
        ring_rule = ruleset.rules_for_type("rings")[0]
        assert len(coverage[ring_rule.rule_id]) == 2
