"""Tests for rule serialization round-trips."""

import pytest

from repro.catalog.types import ProductItem
from repro.core import (
    AttributeRule,
    BlacklistRule,
    PredicateRule,
    SequenceRule,
    ValueConstraintRule,
    WhitelistRule,
    parse_rule,
)
from repro.core.rule import Clause
from repro.core.serialize import (
    UnserializableRuleError,
    rule_from_dict,
    rule_to_dict,
    rules_from_dicts,
    rules_to_dicts,
)

EXAMPLES = [
    WhitelistRule("rings?", "rings", author="kay", confidence=0.9),
    BlacklistRule("key rings?", "rings"),
    SequenceRule(("denim", "jeans"), "jeans", support=0.25, confidence=0.8),
    AttributeRule("isbn", "books"),
    ValueConstraintRule("brand_name", "apple", ["laptop computers", "smart phones"]),
]


@pytest.mark.parametrize("rule", EXAMPLES, ids=lambda r: type(r).__name__)
def test_round_trip_preserves_behavior(rule):
    clone = rule_from_dict(rule_to_dict(rule))
    assert type(clone) is type(rule)
    assert clone.rule_id == rule.rule_id
    assert clone.target_type == rule.target_type
    assert clone.confidence == rule.confidence
    probe_items = [
        ProductItem(item_id="1", title="diamond ring"),
        ProductItem(item_id="2", title="key ring"),
        ProductItem(item_id="3", title="denim blue jeans"),
        ProductItem(item_id="4", title="novel", attributes={"isbn": "978"}),
        ProductItem(item_id="5", title="macbook", attributes={"brand_name": "apple"}),
    ]
    for item in probe_items:
        assert clone.matches(item) == rule.matches(item)


def test_disabled_flag_round_trips():
    rule = WhitelistRule("a", "t")
    rule.enabled = False
    assert rule_from_dict(rule_to_dict(rule)).enabled is False


def test_predicate_rule_not_serializable():
    rule = PredicateRule([Clause("x", lambda item: True)], "t")
    with pytest.raises(UnserializableRuleError):
        rule_to_dict(rule)


def test_unknown_kind_rejected():
    with pytest.raises(UnserializableRuleError):
        rule_from_dict({"kind": "mystery", "target_type": "t"})


def test_bulk_round_trip():
    payloads = rules_to_dicts(EXAMPLES)
    clones = rules_from_dicts(payloads)
    assert [c.rule_id for c in clones] == [r.rule_id for r in EXAMPLES]


def test_json_compatible():
    import json

    payload = json.dumps(rules_to_dicts(EXAMPLES))
    clones = rules_from_dicts(json.loads(payload))
    assert len(clones) == len(EXAMPLES)
