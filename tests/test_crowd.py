"""Tests for the crowdsourcing substrate."""

import random

import pytest

from repro.catalog.types import ProductItem
from repro.crowd import (
    BudgetExhausted,
    CrowdBudget,
    CrowdWorker,
    PrecisionEstimator,
    VerificationTask,
    WorkerPool,
)


def item(title, true_type):
    return ProductItem(item_id=title[:24], title=title, true_type=true_type)


class TestWorker:
    def test_perfect_worker_truthful(self):
        worker = CrowdWorker("w", accuracy=1.0)
        rng = random.Random(0)
        ring = item("gold ring", "rings")
        assert worker.answer(ring, "rings", rng) is True
        assert worker.answer(ring, "books", rng) is False

    def test_zero_accuracy_inverts(self):
        worker = CrowdWorker("w", accuracy=0.0)
        rng = random.Random(0)
        ring = item("gold ring", "rings")
        assert worker.answer(ring, "rings", rng) is False

    def test_accuracy_bounds(self):
        with pytest.raises(ValueError):
            CrowdWorker("w", accuracy=1.2)


class TestWorkerPool:
    def test_deterministic(self):
        a = WorkerPool(size=10, seed=4)
        b = WorkerPool(size=10, seed=4)
        assert [w.accuracy for w in a.workers] == [w.accuracy for w in b.workers]

    def test_accuracies_in_range(self):
        pool = WorkerPool(size=50, accuracy_range=(0.7, 0.9), seed=0)
        assert all(0.7 <= w.accuracy <= 0.9 for w in pool.workers)

    def test_draw_distinct(self):
        pool = WorkerPool(size=10, seed=0)
        drawn = pool.draw(5)
        assert len({w.worker_id for w in drawn}) == 5

    def test_draw_too_many(self):
        with pytest.raises(ValueError):
            WorkerPool(size=3, seed=0).draw(5)


class TestVerificationTask:
    def test_majority_voting_mostly_right(self):
        pool = WorkerPool(size=30, accuracy_range=(0.85, 0.98), seed=1)
        task = VerificationTask(pool, votes_per_pair=5, seed=2)
        ring = item("gold ring", "rings")
        verdicts = [task.verify_pair(ring, "rings") for _ in range(100)]
        assert sum(1 for v in verdicts if v.approved) >= 95

    def test_wrong_pairs_rejected(self):
        pool = WorkerPool(size=30, accuracy_range=(0.85, 0.98), seed=1)
        task = VerificationTask(pool, votes_per_pair=5, seed=2)
        ring = item("gold ring", "rings")
        verdicts = [task.verify_pair(ring, "books") for _ in range(100)]
        assert sum(1 for v in verdicts if v.approved) <= 5

    def test_even_votes_rejected(self):
        with pytest.raises(ValueError):
            VerificationTask(WorkerPool(seed=0), votes_per_pair=4)

    def test_budget_charged(self):
        budget = CrowdBudget(9)
        task = VerificationTask(WorkerPool(seed=0), budget=budget, votes_per_pair=3)
        ring = item("gold ring", "rings")
        task.verify_pair(ring, "rings")
        task.verify_pair(ring, "rings")
        task.verify_pair(ring, "rings")
        assert budget.remaining == 0
        with pytest.raises(BudgetExhausted):
            task.verify_pair(ring, "rings")


class TestBudget:
    def test_accounting(self):
        budget = CrowdBudget(10, cost_per_answer=2.0)
        budget.charge(3)
        assert budget.spent == 6.0 and budget.answers == 3
        assert budget.can_afford(2)
        assert not budget.can_afford(3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CrowdBudget(-1)
        with pytest.raises(ValueError):
            CrowdBudget(10).charge(-1)


class TestPrecisionEstimator:
    def _pairs(self, correct, wrong):
        pairs = []
        for index in range(correct):
            pairs.append((item(f"ring {index}", "rings"), "rings"))
        for index in range(wrong):
            pairs.append((item(f"rug {index}", "area rugs"), "rings"))
        return pairs

    def test_estimates_near_truth(self):
        pool = WorkerPool(size=40, accuracy_range=(0.9, 0.99), seed=3)
        task = VerificationTask(pool, seed=4)
        estimator = PrecisionEstimator(task, sample_size=150, seed=5)
        estimate, verdicts = estimator.estimate(self._pairs(80, 20))
        assert abs(estimate.point - 0.8) < 0.1
        assert estimate.low < estimate.point < estimate.high
        assert len(verdicts) == 100  # whole set is smaller than sample cap

    def test_clears_floor(self):
        pool = WorkerPool(size=40, accuracy_range=(0.95, 0.99), seed=3)
        task = VerificationTask(pool, seed=4)
        estimator = PrecisionEstimator(task, sample_size=100, seed=5)
        estimate, _ = estimator.estimate(self._pairs(98, 2))
        assert estimate.clears(0.92)
        estimate2, _ = estimator.estimate(self._pairs(60, 40))
        assert not estimate2.clears(0.92)

    def test_empty_rejected(self):
        pool = WorkerPool(seed=0)
        estimator = PrecisionEstimator(VerificationTask(pool))
        with pytest.raises(ValueError):
            estimator.estimate([])

    def test_rejected_verdicts_flag_errors(self):
        pool = WorkerPool(size=40, accuracy_range=(0.95, 0.99), seed=3)
        task = VerificationTask(pool, seed=4)
        estimator = PrecisionEstimator(task, sample_size=100, seed=5)
        _, verdicts = estimator.estimate(self._pairs(50, 50))
        rejected = [v for v in verdicts if not v.approved]
        # Nearly all rejected pairs should be the genuinely wrong ones.
        wrong_ids = {f"rug {i}"[:24] for i in range(50)}
        hits = sum(1 for v in rejected if v.item_id in wrong_ids)
        assert hits / len(rejected) > 0.9
