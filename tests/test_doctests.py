"""Run the docstring examples — documentation that must stay true."""

import doctest

import pytest

import repro.analyst.analyst
import repro.catalog.generator
import repro.em.similarity
import repro.observability.metrics
import repro.observability.tracer
import repro.rulegen.confidence
import repro.utils.clock
import repro.utils.stats
import repro.utils.text
import repro.utils.vectors

MODULES = [
    repro.analyst.analyst,
    repro.catalog.generator,
    repro.em.similarity,
    repro.observability.metrics,
    repro.observability.tracer,
    repro.rulegen.confidence,
    repro.utils.clock,
    repro.utils.stats,
    repro.utils.text,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_docstring_examples(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} doctest failures"
    assert results.attempted > 0, f"{module.__name__} has no doctest examples"
