"""Direct unit coverage for ``catalog/drift.py`` and
``maintenance/taxonomy_change.py`` (previously exercised only through
examples and the scenario harness): drift-schedule boundary batches,
and split/merge plans over empty and single-rule rule sets.
"""

import pytest

from repro.catalog import CatalogGenerator, DriftInjector, build_seed_taxonomy
from repro.catalog.types import ProductItem
from repro.core import WhitelistRule
from repro.maintenance import apply_plan, plan_for_merge, plan_for_split
from repro.scenario import loads, run_scenario


def item(title, true_type=""):
    return ProductItem(item_id=title[:40], title=title, true_type=true_type)


@pytest.fixture()
def generator():
    return CatalogGenerator(build_seed_taxonomy(), seed=7)


@pytest.fixture()
def drift(generator):
    return DriftInjector(generator, seed=7)


class TestDriftInjectorUnits:
    def test_extend_slot_appends_and_keeps_old_phrases(self, generator, drift):
        before = set(generator.taxonomy.get("jeans").slot("fit"))
        drift.extend_slot("jeans", "fit", ["paperbag", "balloon fit"])
        after = set(generator.taxonomy.get("jeans").slot("fit"))
        assert before <= after
        assert {"paperbag", "balloon fit"} <= after

    def test_replace_slot_discards_old_vocabulary(self, generator, drift):
        drift.replace_slot("jeans", "fit", ["paperbag"])
        assert generator.taxonomy.get("jeans").slot("fit") == ("paperbag",)

    def test_unknown_type_raises_key_error(self, drift):
        with pytest.raises(KeyError):
            drift.extend_slot("no-such-type", "fit", ["x"])

    def test_shift_distribution_changes_effective_weight(self, generator, drift):
        jeans = generator.taxonomy.get("jeans")
        baseline = generator.effective_weight(jeans)
        drift.shift_distribution({"jeans": 9.0})
        assert generator.effective_weight(jeans) == pytest.approx(baseline * 9.0 / jeans.weight)

    def test_surge_department_scales_only_that_department(self, generator, drift):
        jeans = generator.taxonomy.get("jeans")       # clothing
        tvs = generator.taxonomy.get("televisions")   # electronics
        jeans_before = generator.effective_weight(jeans)
        tvs_before = generator.effective_weight(tvs)
        drift.surge_department("clothing", 3.0)
        assert generator.effective_weight(jeans) == pytest.approx(jeans_before * 3.0)
        assert generator.effective_weight(tvs) == pytest.approx(tvs_before)

    def test_split_type_removes_old_and_divides_weight(self, generator, drift):
        old_weight = generator.taxonomy.get("work pants").weight
        _event, replacements = drift.split_type(
            "work pants",
            {"cargo pants": ["cargo"], "workwear pants": ["canvas"]},
        )
        assert "work pants" not in generator.taxonomy
        assert {t.name for t in replacements} == {"cargo pants", "workwear pants"}
        for new_type in replacements:
            assert new_type.weight == pytest.approx(old_weight / 2)

    def test_events_are_recorded_in_order(self, drift):
        drift.extend_slot("jeans", "fit", ["a"])
        drift.surge_department("home", 2.0)
        assert [e.kind for e in drift.events] == ["extend_slot", "surge_department"]


class TestDriftScheduleBoundaries:
    """at_batch boundaries through the scenario runner: index 0 applies
    before the first batch, index batches-1 before the last."""

    def spec(self, at_batch):
        return loads(
            "name: boundary\n"
            "seed: 3\n"
            "catalog:\n"
            "  obvious_rule_types: ['*']\n"
            "traffic:\n"
            "  batches: 3\n"
            "drift:\n"
            f"  - at_batch: {at_batch}\n"
            "    op: surge_department\n"
            "    department: home\n"
            "    factor: 2.0\n"
        )

    def test_first_batch_boundary(self):
        report = run_scenario(self.spec(0))
        assert report.drift_events[0]["at_batch"] == 0

    def test_last_batch_boundary(self):
        report = run_scenario(self.spec(2))
        assert report.drift_events[0]["at_batch"] == 2

    def test_past_the_end_is_rejected_at_load_time(self):
        from repro.scenario import SpecError

        with pytest.raises(SpecError, match="past the last"):
            self.spec(3)


class TestSplitMergeEdgeCases:
    def test_split_over_empty_ruleset_plans_nothing(self):
        plan = plan_for_split([], "pants", ["jeans", "work pants"], [])
        assert plan.invalidated == []
        assert plan.retargets == {}
        assert plan.undecidable == []
        assert apply_plan([], plan) == []

    def test_split_single_rule_with_no_samples_is_undecidable(self):
        rule = WhitelistRule("pants?", "pants")
        plan = plan_for_split([rule], "pants", ["jeans", "work pants"], [])
        assert plan.invalidated == [rule.rule_id]
        assert plan.undecidable == [rule.rule_id]
        disabled = apply_plan([rule], plan)
        assert disabled == [rule]
        assert not rule.enabled

    def test_split_single_rule_with_pure_samples_retargets(self):
        rule = WhitelistRule("denim pants?", "pants")
        samples = [item(f"denim pants {i}", "jeans") for i in range(4)]
        plan = plan_for_split([rule], "pants", ["jeans", "work pants"], samples)
        assert plan.retargets == {rule.rule_id: "jeans"}
        apply_plan([rule], plan)
        assert rule.target_type == "jeans"
        assert rule.enabled

    def test_split_ignores_rules_for_other_types(self):
        bystander = WhitelistRule("tv", "televisions")
        plan = plan_for_split([bystander], "pants", ["jeans"], [])
        assert plan.invalidated == []

    def test_merge_over_empty_ruleset_plans_nothing(self):
        plan = plan_for_merge([], ["area rugs", "bath rugs"], "rugs")
        assert plan.invalidated == []
        assert plan.retargets == {}

    def test_merge_single_rule_retargets_without_undecidables(self):
        rule = WhitelistRule("bath rugs?", "bath rugs")
        plan = plan_for_merge([rule], ["area rugs", "bath rugs"], "rugs")
        assert plan.retargets == {rule.rule_id: "rugs"}
        assert plan.undecidable == []
        apply_plan([rule], plan)
        assert rule.target_type == "rugs"
        assert rule.enabled

    def test_merge_needs_old_types(self):
        with pytest.raises(ValueError):
            plan_for_merge([], [], "rugs")

    def test_split_purity_threshold_boundary(self):
        """Exactly at the threshold counts as pure (>=)."""
        rule = WhitelistRule("pants?", "pants")
        samples = (
            [item(f"blue pants {i}", "jeans") for i in range(4)]
            + [item("work pants 0", "work pants")]
        )
        plan = plan_for_split(
            [rule], "pants", ["jeans", "work pants"], samples,
            purity_threshold=0.8, min_matches=3,
        )
        assert plan.retargets == {rule.rule_id: "jeans"}
