"""Tests for the entity-matching substrate."""

import pytest

from repro.core import RuleParseError
from repro.em import (
    LearnedMatcher,
    Record,
    RuleBasedMatcher,
    block_pairs,
    blocking_recall,
    exact_match,
    generate_em_dataset,
    jaccard_3gram,
    jaccard_tokens,
    jaro_winkler,
    levenshtein,
    normalized_levenshtein,
    parse_em_rule,
    score_matches,
)


class TestSimilarity:
    def test_jaccard_tokens(self):
        assert jaccard_tokens("red wool hat", "wool hat") == pytest.approx(2 / 3)
        assert jaccard_tokens("", "") == 1.0
        assert jaccard_tokens("a thing", "") == 0.0

    def test_jaccard_3gram_typo_tolerant(self):
        assert jaccard_3gram("blue jeans", "blue jeens") > 0.4
        assert jaccard_3gram("blue jeans", "area rug") < 0.2

    def test_levenshtein(self):
        assert levenshtein("kitten", "sitting") == 3
        assert levenshtein("same", "same") == 0
        assert levenshtein("ab", "ba") == 2

    def test_levenshtein_cutoff(self):
        assert levenshtein("aaaaaaa", "bbbbbbb", cutoff=2) == 3  # cutoff+1

    def test_normalized_levenshtein(self):
        assert normalized_levenshtein("abcd", "abcd") == 1.0
        assert normalized_levenshtein("", "") == 1.0
        assert 0 <= normalized_levenshtein("abcd", "wxyz") < 0.5

    def test_jaro_winkler_prefix_bonus(self):
        assert jaro_winkler("martha", "marhta") > 0.9
        assert jaro_winkler("abc", "abc") == 1.0
        assert jaro_winkler("", "x") == 0.0

    def test_exact(self):
        assert exact_match(" Apple ", "apple") == 1.0
        assert exact_match("a", "b") == 0.0


class TestEmRuleParsing:
    def test_paper_rule(self):
        rule = parse_em_rule(
            "[a.isbn = b.isbn] & [jaccard_3g(a.title, b.title) >= 0.8] -> match"
        )
        a = Record("r1", {"isbn": "978", "title": "the long winter book"})
        b = Record("r2", {"isbn": "978", "title": "the long winter book"})
        c = Record("r3", {"isbn": "999", "title": "the long winter book"})
        assert rule.fires(a, b)
        assert not rule.fires(a, c)

    def test_missing_attribute_never_equal(self):
        rule = parse_em_rule("a.isbn = b.isbn -> match")
        a = Record("r1", {"title": "x"})
        b = Record("r2", {"title": "x"})
        assert not rule.fires(a, b)

    def test_no_match_decision(self):
        rule = parse_em_rule("lev_norm(a.title, b.title) < 0.3 -> no_match")
        assert rule.is_no_match

    def test_tilde_decision_alias(self):
        rule = parse_em_rule("a.isbn = b.isbn -> a ~ b")
        assert rule.decision == "match"

    def test_unknown_similarity(self):
        with pytest.raises(RuleParseError):
            parse_em_rule("sorcery(a.title, b.title) >= 0.5 -> match")

    def test_garbage_clause(self):
        with pytest.raises(RuleParseError):
            parse_em_rule("what even -> match")


class TestDatasetAndBlocking:
    @pytest.fixture(scope="class")
    def dataset(self):
        from repro.catalog import CatalogGenerator, build_seed_taxonomy
        gen = CatalogGenerator(build_seed_taxonomy(), seed=8)
        return generate_em_dataset(gen, n_entities=250, seed=8)

    def test_gold_pairs_share_entity(self, dataset):
        by_id = {r.record_id: r for r in dataset.records}
        for pair in dataset.gold_matches:
            left, right = sorted(pair)
            assert by_id[left].entity_id == by_id[right].entity_id

    def test_deterministic(self):
        from repro.catalog import CatalogGenerator, build_seed_taxonomy
        gen1 = CatalogGenerator(build_seed_taxonomy(), seed=8)
        gen2 = CatalogGenerator(build_seed_taxonomy(), seed=8)
        d1 = generate_em_dataset(gen1, n_entities=50, seed=8)
        d2 = generate_em_dataset(gen2, n_entities=50, seed=8)
        assert [r.fields for r in d1.records] == [r.fields for r in d2.records]

    def test_blocking_high_recall_sub_quadratic(self, dataset):
        pairs = block_pairs(dataset.records)
        n = len(dataset.records)
        assert blocking_recall(pairs, dataset.gold_matches) > 0.95
        assert len(pairs) < n * (n - 1) / 4

    def test_block_size_guard(self, dataset):
        small = block_pairs(dataset.records, max_block_size=5)
        large = block_pairs(dataset.records, max_block_size=100)
        assert len(small) <= len(large)


class TestMatchers:
    @pytest.fixture(scope="class")
    def workload(self):
        from repro.catalog import CatalogGenerator, build_seed_taxonomy
        gen = CatalogGenerator(build_seed_taxonomy(), seed=9)
        dataset = generate_em_dataset(gen, n_entities=300, seed=9)
        return dataset, block_pairs(dataset.records)

    RULES = [
        "a.isbn = b.isbn & jaccard_3g(a.title, b.title) >= 0.5 -> match",
        "jaccard(a.title, b.title) >= 0.65 & a.type = b.type -> match",
        "jaccard_3g(a.title, b.title) >= 0.8 -> match",
        "lev_norm(a.title, b.title) < 0.2 -> no_match",
    ]

    def test_rule_matcher_quality(self, workload):
        dataset, pairs = workload
        matcher = RuleBasedMatcher([parse_em_rule(r) for r in self.RULES])
        report = matcher.evaluate(pairs, dataset)
        assert report.precision > 0.75
        assert report.recall > 0.5

    def test_no_match_rules_veto(self):
        rules = [
            parse_em_rule("a.type = b.type -> match"),
            parse_em_rule("jaccard(a.title, b.title) < 0.9 -> no_match"),
        ]
        matcher = RuleBasedMatcher(rules)
        a = Record("r1", {"title": "one thing", "type": "t"})
        b = Record("r2", {"title": "another thing entirely", "type": "t"})
        assert not matcher.decide(a, b)

    def test_order_independence(self, workload):
        dataset, pairs = workload
        rules = [parse_em_rule(r) for r in self.RULES]
        forward = RuleBasedMatcher(rules).match(pairs[:500])
        backward = RuleBasedMatcher(list(reversed(rules))).match(pairs[:500])
        assert forward == backward

    def test_needs_match_rule(self):
        with pytest.raises(ValueError):
            RuleBasedMatcher([parse_em_rule("a.isbn = b.isbn -> no_match")])

    def test_learned_matcher_trains(self, workload):
        dataset, pairs = workload
        labels = [dataset.is_match(a, b) for a, b in pairs]
        matcher = LearnedMatcher().fit(pairs, labels)
        report = matcher.evaluate(pairs, dataset)
        assert report.f1 > 0.5  # in-sample sanity

    def test_learned_matcher_needs_fit(self):
        with pytest.raises(RuntimeError):
            LearnedMatcher().decide(Record("a", {"title": "x"}), Record("b", {"title": "x"}))

    def test_score_matches_edges(self):
        report = score_matches(set(), set())
        assert report.precision == 1.0 and report.recall == 1.0
