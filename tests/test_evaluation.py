"""Tests for the three rule-evaluation methods and impact tracking."""

import pytest

from repro.catalog.types import ProductItem
from repro.core import RuleSet, WhitelistRule, parse_rules
from repro.crowd import CrowdBudget, VerificationTask, WorkerPool
from repro.evaluation import (
    ImpactTracker,
    ModuleLevelEvaluator,
    PerRuleCrowdEvaluator,
    SharedValidationSetEvaluator,
    rule_quality,
    ruleset_quality,
)


def item(title, true_type):
    return ProductItem(item_id=title[:30], title=title, true_type=true_type)


HEAD_ITEMS = [item(f"gold ring {i}", "rings") for i in range(30)]
TAIL_ITEMS = [item("christmas tree pre-lit", "holiday decorations")]
WRONG_ITEMS = [item(f"key ring {i}", "keychains") for i in range(10)]
ALL_ITEMS = HEAD_ITEMS + TAIL_ITEMS + WRONG_ITEMS

HEAD_RULE = WhitelistRule("rings?", "rings")          # hits 40 items, 10 wrong
TAIL_RULE = WhitelistRule("christmas trees?", "holiday decorations")  # hits 1


class TestMetrics:
    def test_rule_quality(self):
        quality = rule_quality(HEAD_RULE, ALL_ITEMS)
        assert quality.coverage == 40
        assert quality.precision == pytest.approx(30 / 40)
        assert quality.recall == 1.0

    def test_no_matches_convention(self):
        rule = WhitelistRule("zzz", "rings")
        quality = rule_quality(rule, ALL_ITEMS)
        assert quality.precision == 1.0 and quality.recall == 0.0

    def test_ruleset_quality_micro(self):
        quality = ruleset_quality([HEAD_RULE, TAIL_RULE], ALL_ITEMS)
        assert quality.matched_correct == 31
        assert quality.matched_wrong == 10


class TestSharedValidationSet:
    def test_head_rules_evaluable_tail_blind(self):
        evaluator = SharedValidationSetEvaluator(min_touches=5)
        labels = [i.true_type for i in ALL_ITEMS]
        report = evaluator.evaluate([HEAD_RULE, TAIL_RULE], ALL_ITEMS, labels)
        assert HEAD_RULE.rule_id in report.estimates
        assert TAIL_RULE.rule_id in report.blind_rules
        assert report.estimates[HEAD_RULE.rule_id] == pytest.approx(0.75)
        assert report.blind_fraction == 0.5
        assert report.labeling_cost == len(ALL_ITEMS)

    def test_misaligned_labels_rejected(self):
        with pytest.raises(ValueError):
            SharedValidationSetEvaluator().evaluate([HEAD_RULE], ALL_ITEMS, ["x"])


@pytest.fixture()
def crowd_task():
    pool = WorkerPool(size=30, accuracy_range=(0.93, 0.99), seed=0)
    return VerificationTask(pool, budget=CrowdBudget(1_000_000), seed=1)


class TestPerRuleEvaluator:
    def test_estimates_each_rule(self, crowd_task):
        evaluator = PerRuleCrowdEvaluator(crowd_task, sample_per_rule=8)
        report = evaluator.evaluate([HEAD_RULE, TAIL_RULE], ALL_ITEMS)
        assert HEAD_RULE.rule_id in report.estimates
        assert TAIL_RULE.rule_id in report.estimates
        head = report.estimates[HEAD_RULE.rule_id]
        assert 0.4 <= head.precision <= 1.0
        assert report.estimates[TAIL_RULE.rule_id].sample_size == 1

    def test_overlap_saves_cost(self, crowd_task):
        # Two heavily overlapping rules: shared items should be verified once.
        overlap_a = WhitelistRule("rings?", "rings")
        overlap_b = WhitelistRule("gold rings?", "rings")
        with_overlap = PerRuleCrowdEvaluator(crowd_task, sample_per_rule=10,
                                             exploit_overlap=True)
        report = with_overlap.evaluate([overlap_a, overlap_b], HEAD_ITEMS)
        pool2 = WorkerPool(size=30, accuracy_range=(0.93, 0.99), seed=0)
        task2 = VerificationTask(pool2, budget=CrowdBudget(1_000_000), seed=1)
        without = PerRuleCrowdEvaluator(task2, sample_per_rule=10,
                                        exploit_overlap=False)
        report2 = without.evaluate([overlap_a, overlap_b], HEAD_ITEMS)
        assert report.items_verified <= report2.items_verified

    def test_unevaluable_rules_reported(self, crowd_task):
        untouched = WhitelistRule("zzz", "rings")
        report = PerRuleCrowdEvaluator(crowd_task).evaluate([untouched], ALL_ITEMS)
        assert report.unevaluable == [untouched.rule_id]


class TestModuleLevel:
    def test_estimates_module(self, crowd_task):
        module = RuleSet([HEAD_RULE, TAIL_RULE], name="m")
        estimate = ModuleLevelEvaluator(crowd_task, sample_size=30, seed=2).evaluate(
            module, ALL_ITEMS
        )
        assert estimate is not None
        assert estimate.items_touched == 41
        assert 0.5 < estimate.precision <= 1.0

    def test_untouched_module_returns_none(self, crowd_task):
        module = RuleSet([WhitelistRule("zzz", "x")], name="m")
        assert ModuleLevelEvaluator(crowd_task).evaluate(module, ALL_ITEMS) is None

    def test_cheaper_than_per_rule(self, crowd_task):
        # Module-level cost is one sample regardless of rule count.
        rules = [WhitelistRule(f"ring {i}", "rings") for i in range(10)]
        module = RuleSet(rules, name="m")
        estimate = ModuleLevelEvaluator(crowd_task, sample_size=20, seed=2).evaluate(
            module, HEAD_ITEMS
        )
        assert estimate.crowd_answers <= 20 * crowd_task.votes_per_pair


class TestImpactTracker:
    def test_alert_on_crossing_threshold(self):
        tracker = ImpactTracker(impact_threshold=20)
        alerts = tracker.record_batch([HEAD_RULE], ALL_ITEMS[:15], "b1")
        assert alerts == []
        alerts = tracker.record_batch([HEAD_RULE], ALL_ITEMS[:15], "b2")
        assert len(alerts) == 1
        assert alerts[0].rule_id == HEAD_RULE.rule_id

    def test_no_alert_when_evaluated(self):
        tracker = ImpactTracker(impact_threshold=5)
        tracker.mark_evaluated(HEAD_RULE.rule_id)
        alerts = tracker.record_batch([HEAD_RULE], ALL_ITEMS, "b1")
        assert alerts == []

    def test_alert_fires_once(self):
        tracker = ImpactTracker(impact_threshold=5)
        tracker.record_batch([HEAD_RULE], ALL_ITEMS, "b1")
        assert tracker.record_batch([HEAD_RULE], ALL_ITEMS, "b2") == []

    def test_worklist_ranks_by_impact(self):
        tracker = ImpactTracker(impact_threshold=1)
        tracker.record_batch([HEAD_RULE, TAIL_RULE], ALL_ITEMS, "b1")
        worklist = tracker.evaluation_worklist(2)
        assert worklist[0] == HEAD_RULE.rule_id
