"""Smoke tests: the shipped examples must keep running end-to-end.

Only the lighter examples run here (the heavyweight ones are exercised by
the benchmark suite); each main() must complete without raising.
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

LIGHT_EXAMPLES = [
    "quickstart.py",
    "entity_matching.py",
    "kb_curation.py",
    "information_extraction.py",
    "scenario_harness.py",
]


def _load_module(filename):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, filename))
    name = f"example_{filename[:-3]}"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("filename", LIGHT_EXAMPLES)
def test_example_runs(filename, capsys):
    module = _load_module(filename)
    module.main()
    output = capsys.readouterr().out
    assert output.strip(), f"{filename} produced no output"


@pytest.mark.parametrize("run", ["exec", "rulegen", "synonyms"])
def test_cli_trace_runs(run, tmp_path, capsys):
    """``repro trace <run>`` must produce a report and a loadable trace."""
    import json

    from repro.cli import main

    out = tmp_path / f"trace_{run}.json"
    argv = ["trace", run, "--items", "120", "--training", "400", "--out", str(out)]
    if run == "synonyms":
        argv += ["--rule", r"(motor | engine | \syn) oils? -> motor oil"]
    assert main(argv) == 0
    output = capsys.readouterr().out
    assert "=== trace:" in output
    assert "trace (" in output  # the span tree rendered something
    payload = json.loads(out.read_text())
    assert payload["traceEvents"], "chrome trace had no events"
