"""Tests for rule/data indexing and the executors."""

import pytest

from repro.catalog.types import ProductItem
from repro.core import (
    AttributeRule,
    PreparedItem,
    SequenceRule,
    WhitelistRule,
    parse_rules,
)
from repro.execution import (
    DataIndex,
    IndexedExecutor,
    NaiveExecutor,
    PartitionedExecutor,
    RuleIndex,
    critical_path,
    prepare,
)


def item(title, **attributes):
    return ProductItem(item_id=title[:30], title=title, attributes=attributes)


RULES = parse_rules("""
    rings? -> rings
    (motor|engine) oils? -> motor oil
    denim.*jeans? -> jeans
""") + [
    SequenceRule(("area", "rug"), "area rugs"),
    AttributeRule("isbn", "books"),
]

ITEMS = [
    item("diamond ring gold"),
    item("castrol motor oil 5 quart"),
    item("relaxed denim jeans"),
    item("shaw area rug 5x7"),
    item("mystery novel", isbn="978"),
    item("unrelated gadget"),
]


class TestRuleIndex:
    def test_candidates_are_superset_of_matches(self):
        index = RuleIndex(RULES)
        for thing in ITEMS:
            candidate_ids = {rule.rule_id for rule in index.candidates(thing)}
            for rule in RULES:
                if rule.matches(thing):
                    assert rule.rule_id in candidate_ids

    def test_attribute_rules_in_residue(self):
        index = RuleIndex(RULES)
        assert index.residue_count == 1  # attr(isbn) has no title anchor

    def test_plural_singular_bridging(self):
        index = RuleIndex([WhitelistRule("rings?", "rings")])
        candidates = index.candidates(item("two rings"))
        assert len(candidates) == 1

    def test_sequence_indexed_under_one_token(self):
        frequency = {"area": 1000, "rug": 3}
        index = RuleIndex([SequenceRule(("area", "rug"), "area rugs")],
                          token_frequency=frequency)
        # Indexed under the rare token: items with only "area" skip the rule.
        assert index.candidates(item("area code map")) == []
        assert len(index.candidates(item("rug sale"))) == 1

    def test_corpus_token_frequency(self):
        freq = RuleIndex.corpus_token_frequency(["rug mat", "rug lamp"])
        assert freq == {"rug": 2, "mat": 1, "lamp": 1}

    def test_candidates_accept_prepared_items(self):
        index = RuleIndex(RULES)
        for thing in ITEMS:
            raw_ids = {rule.rule_id for rule in index.candidates(thing)}
            prepared_ids = {
                rule.rule_id for rule in index.candidates(PreparedItem(thing))
            }
            assert raw_ids == prepared_ids


class _CountingPostings(dict):
    """Postings dict that counts lookups, to prove remove() never scans."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.lookups = 0

    def get(self, key, default=None):
        self.lookups += 1
        return super().get(key, default)


class TestRuleIndexRemove:
    def _big_index(self, n=10_000):
        rules = [
            SequenceRule((f"alpha{i}", f"beta{i}"), "t", rule_id=f"seq-{i:05d}")
            for i in range(n)
        ]
        return RuleIndex(rules), rules

    def test_remove_present_and_absent(self):
        index, rules = self._big_index(100)
        assert index.remove(rules[17].rule_id) is True
        assert index.remove(rules[17].rule_id) is False
        assert index.remove("never-existed") is False
        assert len(index) == 99

    def test_remove_does_not_scan_posting_lists(self):
        """On a 10k-rule index, removal touches only the rule's own postings."""
        index, rules = self._big_index(10_000)
        counting = _CountingPostings(index._postings)
        index._postings = counting
        counting.lookups = 0
        assert index.remove(rules[1234].rule_id) is True
        # A sequence rule lives under exactly one posting key.
        assert counting.lookups <= 2
        assert len(index) == 9_999

    def test_remove_regex_rule_clears_all_anchor_postings(self):
        rule = WhitelistRule("(motor|engine) oils?", "motor oil")
        index = RuleIndex([rule])
        assert index.remove(rule.rule_id) is True
        assert len(index) == 0
        assert index.candidates(item("castrol motor oil")) == []

    def test_remove_residue_rule(self):
        rule = AttributeRule("isbn", "books")
        index = RuleIndex([rule])
        assert index.residue_count == 1
        assert index.remove(rule.rule_id) is True
        assert index.residue_count == 0

    def test_remove_all_rules_empties_index(self):
        index, rules = self._big_index(1_000)
        for rule in rules:
            assert index.remove(rule.rule_id)
        assert len(index) == 0
        assert not index._postings
        assert not index._keys_by_rule


class TestExecutors:
    def test_naive_and_indexed_agree(self):
        naive_fired, _ = NaiveExecutor(RULES).run(ITEMS)
        indexed_fired, _ = IndexedExecutor(RULES).run(ITEMS)
        assert {k: sorted(v) for k, v in naive_fired.items()} == indexed_fired

    def test_indexed_does_less_work(self):
        _, naive_stats = NaiveExecutor(RULES).run(ITEMS)
        _, indexed_stats = IndexedExecutor(RULES).run(ITEMS)
        assert indexed_stats.rule_evaluations < naive_stats.rule_evaluations
        assert indexed_stats.matches == naive_stats.matches

    def test_work_scales_with_rules(self, corpus_items):
        many_rules = [SequenceRule((f"tok{i}", "x"), "t") for i in range(200)]
        _, naive_stats = NaiveExecutor(many_rules).run(corpus_items[:50])
        _, indexed_stats = IndexedExecutor(many_rules).run(corpus_items[:50])
        assert naive_stats.evaluations_per_item == 200
        assert indexed_stats.evaluations_per_item < 5

    def test_both_executors_return_sorted_rule_ids(self):
        """Deterministic output contract: fired lists are sorted."""
        naive_fired, _ = NaiveExecutor(RULES).run(ITEMS)
        indexed_fired, _ = IndexedExecutor(RULES).run(ITEMS)
        assert naive_fired == indexed_fired
        for fired in (naive_fired, indexed_fired):
            for hits in fired.values():
                assert hits == sorted(hits)

    def test_disabled_rules_do_not_fire(self):
        rules = parse_rules("rings? -> rings\ndiamond -> jewelry")
        rules[0].enabled = False
        target = item("diamond ring gold")
        naive_fired, _ = NaiveExecutor(rules).run([target])
        indexed_fired, _ = IndexedExecutor(rules).run([target])
        assert naive_fired == indexed_fired
        assert naive_fired[target.item_id] == [rules[1].rule_id]

    def test_executors_accept_prepared_items(self):
        prepared = [prepare(thing) for thing in ITEMS]
        from_raw, _ = NaiveExecutor(RULES).run(ITEMS)
        from_prepared, _ = NaiveExecutor(RULES).run(prepared)
        assert from_raw == from_prepared

    def test_stats_report_timing_split(self):
        _, stats = IndexedExecutor(RULES).run(ITEMS)
        assert stats.wall_time > 0
        assert stats.prepare_time >= 0
        assert stats.match_time >= 0
        assert stats.prepare_time + stats.match_time <= stats.wall_time + 1e-6
        assert stats.items_per_second > 0


class TestPreparedItem:
    def test_matches_prepared_agrees_with_matches(self):
        for thing in ITEMS:
            prepared = PreparedItem(thing)
            for rule in RULES:
                assert rule.matches(thing) == rule.matches_prepared(prepared)

    def test_duck_types_product_item_surface(self):
        thing = item("castrol motor oil 5 quart", isbn="978")
        prepared = PreparedItem(thing)
        assert prepared.title == thing.title
        assert prepared.item_id == thing.item_id
        assert prepared.attribute("ISBN") == "978"
        assert prepared.has_attribute("isbn")
        assert prepared.attribute("missing", "dflt") == "dflt"

    def test_views_are_memoized(self):
        prepared = PreparedItem(item("shaw area rug 5x7"))
        assert prepared.tokens is prepared.tokens
        assert prepared.match_text is prepared.match_text
        assert prepared.anchor_tokens is prepared.anchor_tokens

    def test_payload_round_trip_preserves_views(self):
        prepared = PreparedItem(item("relaxed denim jeans"))
        payload = prepared.to_payload()
        rebuilt = PreparedItem.from_payload(payload)
        assert rebuilt.tokens == prepared.tokens
        assert rebuilt.tokens_with_stopwords == prepared.tokens_with_stopwords
        assert rebuilt.match_text == prepared.match_text
        assert rebuilt.item == prepared.item

    def test_prepare_is_idempotent(self):
        prepared = prepare(ITEMS[0])
        assert prepare(prepared) is prepared


class TestPartitionedExecutor:
    def test_matches_single_node_results(self):
        serializable = [r for r in RULES]
        merged, stats, reports = PartitionedExecutor(serializable, n_workers=3).run(ITEMS)
        naive_fired, naive_stats = NaiveExecutor(serializable).run(ITEMS)
        assert {k: sorted(v) for k, v in naive_fired.items()} == merged
        assert stats.items == len(ITEMS)
        assert len(reports) == 3

    def test_critical_path_below_total(self):
        _, stats, reports = PartitionedExecutor(RULES, n_workers=3).run(ITEMS * 10)
        assert critical_path(reports) < stats.rule_evaluations

    def test_bad_worker_count(self):
        with pytest.raises(ValueError):
            PartitionedExecutor(RULES, n_workers=0)


class TestDataIndex:
    def test_matches_equal_full_scan(self):
        index = DataIndex(ITEMS)
        for rule in RULES:
            via_index = {i.item_id for i in index.matches(rule)}
            via_scan = {i.item_id for i in ITEMS if rule.matches(i)}
            assert via_index == via_scan

    def test_candidate_fraction_small_for_anchored_rules(self, corpus_items):
        index = DataIndex(corpus_items)
        rule = WhitelistRule("rings?", "rings")
        assert index.candidate_fraction(rule) < 0.2

    def test_unanchored_rule_scans_everything(self):
        index = DataIndex(ITEMS)
        rule = AttributeRule("isbn", "books")
        assert index.candidate_fraction(rule) == 1.0

    def test_sequence_intersection(self):
        index = DataIndex(ITEMS)
        rows = index.candidate_rows(SequenceRule(("area", "rug"), "area rugs"))
        assert len(rows) == 1
