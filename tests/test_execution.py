"""Tests for rule/data indexing and the executors."""

import pytest

from repro.catalog.types import ProductItem
from repro.core import (
    AttributeRule,
    SequenceRule,
    WhitelistRule,
    parse_rules,
)
from repro.execution import (
    DataIndex,
    IndexedExecutor,
    NaiveExecutor,
    PartitionedExecutor,
    RuleIndex,
    critical_path,
)


def item(title, **attributes):
    return ProductItem(item_id=title[:30], title=title, attributes=attributes)


RULES = parse_rules("""
    rings? -> rings
    (motor|engine) oils? -> motor oil
    denim.*jeans? -> jeans
""") + [
    SequenceRule(("area", "rug"), "area rugs"),
    AttributeRule("isbn", "books"),
]

ITEMS = [
    item("diamond ring gold"),
    item("castrol motor oil 5 quart"),
    item("relaxed denim jeans"),
    item("shaw area rug 5x7"),
    item("mystery novel", isbn="978"),
    item("unrelated gadget"),
]


class TestRuleIndex:
    def test_candidates_are_superset_of_matches(self):
        index = RuleIndex(RULES)
        for thing in ITEMS:
            candidate_ids = {rule.rule_id for rule in index.candidates(thing)}
            for rule in RULES:
                if rule.matches(thing):
                    assert rule.rule_id in candidate_ids

    def test_attribute_rules_in_residue(self):
        index = RuleIndex(RULES)
        assert index.residue_count == 1  # attr(isbn) has no title anchor

    def test_plural_singular_bridging(self):
        index = RuleIndex([WhitelistRule("rings?", "rings")])
        candidates = index.candidates(item("two rings"))
        assert len(candidates) == 1

    def test_sequence_indexed_under_one_token(self):
        frequency = {"area": 1000, "rug": 3}
        index = RuleIndex([SequenceRule(("area", "rug"), "area rugs")],
                          token_frequency=frequency)
        # Indexed under the rare token: items with only "area" skip the rule.
        assert index.candidates(item("area code map")) == []
        assert len(index.candidates(item("rug sale"))) == 1

    def test_corpus_token_frequency(self):
        freq = RuleIndex.corpus_token_frequency(["rug mat", "rug lamp"])
        assert freq == {"rug": 2, "mat": 1, "lamp": 1}


class TestExecutors:
    def test_naive_and_indexed_agree(self):
        naive_fired, _ = NaiveExecutor(RULES).run(ITEMS)
        indexed_fired, _ = IndexedExecutor(RULES).run(ITEMS)
        assert {k: sorted(v) for k, v in naive_fired.items()} == indexed_fired

    def test_indexed_does_less_work(self):
        _, naive_stats = NaiveExecutor(RULES).run(ITEMS)
        _, indexed_stats = IndexedExecutor(RULES).run(ITEMS)
        assert indexed_stats.rule_evaluations < naive_stats.rule_evaluations
        assert indexed_stats.matches == naive_stats.matches

    def test_work_scales_with_rules(self, corpus_items):
        many_rules = [SequenceRule((f"tok{i}", "x"), "t") for i in range(200)]
        _, naive_stats = NaiveExecutor(many_rules).run(corpus_items[:50])
        _, indexed_stats = IndexedExecutor(many_rules).run(corpus_items[:50])
        assert naive_stats.evaluations_per_item == 200
        assert indexed_stats.evaluations_per_item < 5


class TestPartitionedExecutor:
    def test_matches_single_node_results(self):
        serializable = [r for r in RULES]
        merged, stats, reports = PartitionedExecutor(serializable, n_workers=3).run(ITEMS)
        naive_fired, naive_stats = NaiveExecutor(serializable).run(ITEMS)
        assert {k: sorted(v) for k, v in naive_fired.items()} == merged
        assert stats.items == len(ITEMS)
        assert len(reports) == 3

    def test_critical_path_below_total(self):
        _, stats, reports = PartitionedExecutor(RULES, n_workers=3).run(ITEMS * 10)
        assert critical_path(reports) < stats.rule_evaluations

    def test_bad_worker_count(self):
        with pytest.raises(ValueError):
            PartitionedExecutor(RULES, n_workers=0)


class TestDataIndex:
    def test_matches_equal_full_scan(self):
        index = DataIndex(ITEMS)
        for rule in RULES:
            via_index = {i.item_id for i in index.matches(rule)}
            via_scan = {i.item_id for i in ITEMS if rule.matches(i)}
            assert via_index == via_scan

    def test_candidate_fraction_small_for_anchored_rules(self, corpus_items):
        index = DataIndex(corpus_items)
        rule = WhitelistRule("rings?", "rings")
        assert index.candidate_fraction(rule) < 0.2

    def test_unanchored_rule_scans_everything(self):
        index = DataIndex(ITEMS)
        rule = AttributeRule("isbn", "books")
        assert index.candidate_fraction(rule) == 1.0

    def test_sequence_intersection(self):
        index = DataIndex(ITEMS)
        rows = index.candidate_rows(SequenceRule(("area", "rug"), "area rugs"))
        assert len(rows) == 1
