"""Compiled execution layer: automaton, lowering, parity, churn, pickling.

The contract under test everywhere: the compiled path is an *optimizer*,
never a semantic fork — fired maps, evaluation counts, skip accounting,
and explain output must be indistinguishable from the interpreted
executors on every input, including the traps (plural-bridge collisions,
stop-word sequences, dirty titles, disabled rules).
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.types import ProductItem
from repro.core.errors import UnknownRuleError
from repro.core.explain import ExplanationStep
from repro.core.prepared import PreparedItem, prepare
from repro.core.rule import (
    AttributeRule,
    BlacklistRule,
    Clause,
    PredicateRule,
    SequenceRule,
    ValueConstraintRule,
    WhitelistRule,
)
from repro.core.serialize import UnserializableRuleError
from repro.execution import (
    CompiledRuleSet,
    IncrementalExecutor,
    IndexedExecutor,
    PartitionedExecutor,
    RuleIndex,
    RuleSetCompiler,
    TokenAutomaton,
    rarest_anchor,
)
from repro.execution.compiler import _lower_regex_branches
from repro.observability import Observability


def item(item_id, title, attributes=None):
    return ProductItem(
        item_id=item_id,
        title=title,
        attributes=attributes or {},
        true_type="t",
        vendor="v",
        description="",
    )


def assert_parity(rules, items, **executor_kwargs):
    """Fired map AND evaluation count identical, interpreted vs compiled."""
    fired_i, stats_i = IndexedExecutor(rules, **executor_kwargs).run(items)
    fired_c, stats_c = IndexedExecutor(rules, compiled=True, **executor_kwargs).run(items)
    assert fired_c == fired_i
    assert stats_c.rule_evaluations == stats_i.rule_evaluations
    assert stats_c.matches == stats_i.matches
    assert stats_c.items == stats_i.items
    return fired_i


class TestTokenAutomaton:
    def test_classic_overlapping_patterns(self):
        # The textbook he/she/his/hers example, lifted to token alphabet.
        ac = TokenAutomaton()
        for pid, pattern in {
            "he": ("h", "e"),
            "she": ("s", "h", "e"),
            "his": ("h", "i", "s"),
            "hers": ("h", "e", "r", "s"),
        }.items():
            ac.add(pattern, pid)
        hits = ac.scan(list("ushers"))
        assert set(hits) == {("she", 3), ("he", 3), ("hers", 5)}

    def test_matching_ids_and_end_positions(self):
        ac = TokenAutomaton()
        ac.add(("rose", "gold", "ring"), "p1")
        ac.add(("gold", "ring"), "p2")
        tokens = ["a", "rose", "gold", "ring", "b"]
        assert ac.matching_ids(tokens) == {"p1", "p2"}
        assert set(ac.scan(tokens)) == {("p1", 3), ("p2", 3)}
        assert ac.matching_ids(["gold", "rose", "ring"]) == set()

    def test_add_remove_and_generation(self):
        ac = TokenAutomaton()
        ac.add(("a", "b", "c"), "p")
        gen = ac.generation
        assert ac.matching_ids(["a", "b", "c"]) == {"p"}
        assert ac.remove("p") is True
        assert ac.remove("p") is False
        assert ac.generation == gen + 1
        assert ac.matching_ids(["a", "b", "c"]) == set()

    def test_readd_replaces_pattern(self):
        ac = TokenAutomaton()
        ac.add(("a", "b"), "p")
        ac.add(("c", "d"), "p")
        assert ac.matching_ids(["a", "b"]) == set()
        assert ac.matching_ids(["c", "d"]) == {"p"}

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            TokenAutomaton().add((), "p")

    def test_gate_tokens_cover_every_pattern(self):
        ac = TokenAutomaton()
        ac.add(("x", "y", "z"), "p1")
        ac.add(("q", "r"), "p2")
        gate = ac.gate_tokens()
        assert gate & {"x", "y", "z"}
        assert gate & {"q", "r"}


class TestRegexBranchLowering:
    def test_bare_word(self):
        assert _lower_regex_branches("ring") == ({"ring"}, set())

    def test_plural_optional_enumerates_both_surface_forms(self):
        words, phrases = _lower_regex_branches("rings?")
        assert words == {"ring", "rings"}
        assert phrases == set()

    def test_alternation_and_phrase(self):
        words, phrases = _lower_regex_branches("ring|gold band|rose gold ring")
        assert words == {"ring"}
        assert phrases == {("gold", "band"), ("rose", "gold", "ring")}

    def test_unloweable_branch_bails_entirely(self):
        assert _lower_regex_branches("ring|ba.d") is None
        assert _lower_regex_branches("ri+ng") is None


class TestRarestAnchorSharedTiebreak:
    """Satellite: the anchor tiebreak is one function used by both layers."""

    def test_ranking_frequency_then_length_then_lexicographic(self):
        freq = {"common": 100, "rare": 1, "rarer": 1}
        assert rarest_anchor(["common", "rare"], freq) == "rare"
        # tie on frequency -> longer wins
        assert rarest_anchor(["rare", "rarer"], freq) == "rarer"
        # tie on frequency and length -> lexicographically smallest
        assert rarest_anchor(["bb", "aa"], {}) == "aa"
        # missing tokens rank as frequency 0 (rarer than anything seen)
        assert rarest_anchor(["common", "unseen"], freq) == "unseen"

    def test_rule_index_delegates_to_shared_function(self):
        freq = {"gold": 50, "ring": 2}
        index = RuleIndex(token_frequency=freq)
        rule = SequenceRule(["gold", "ring"], "t", rule_id="s1")
        index.add(rule)
        assert rarest_anchor(["gold", "ring"], freq) == "ring"
        assert index._keys_by_rule["s1"] == ["ring"]

    def test_candidate_counts_comparable_between_layers(self):
        """evaluations_per_item must agree, else bench series diverge."""
        freq = {"gold": 9, "ring": 3, "band": 1}
        rules = [
            SequenceRule(["gold", "ring"], "t", rule_id="s1"),
            SequenceRule(["gold", "band"], "t", rule_id="s2"),
            WhitelistRule("rings?|band", "t", rule_id="w1"),
        ]
        items = [
            item("i1", "gold ring"),
            item("i2", "gold band special"),
            item("i3", "gold rings"),
            item("i4", "nothing here"),
        ]
        index = RuleIndex(rules, token_frequency=freq)
        compiled = RuleSetCompiler(token_frequency=freq).compile(rules)
        for it in items:
            interpreted = len(index.candidates(prepare(it)))
            _, n_evaluated = compiled.match_item(it)
            assert n_evaluated == interpreted, it.item_id


class TestCompiledParityPerRuleClass:
    def test_whitelist_word_and_plural(self):
        rules = [
            WhitelistRule("ring", "t", rule_id="w1"),
            WhitelistRule("rings?", "t", rule_id="w2"),
        ]
        items = [
            item("i1", "gold ring"),
            item("i2", "gold rings"),
            item("i3", "earrings"),
            item("i4", "ring rings"),
        ]
        fired = assert_parity(rules, items)
        assert fired == {
            "i1": ["w1", "w2"],
            "i2": ["w2"],
            "i4": ["w1", "w2"],
        }

    def test_blacklist_fires_like_whitelist_in_fired_map(self):
        rules = [BlacklistRule("toy", "jewelry", rule_id="b1")]
        fired = assert_parity(rules, [item("i1", "toy ring"), item("i2", "ring")])
        assert fired == {"i1": ["b1"]}

    def test_whitelist_phrases_all_depths(self):
        rules = [
            WhitelistRule("gold band", "t", rule_id="p2"),
            WhitelistRule("rose gold ring", "t", rule_id="p3"),
            WhitelistRule("very fine rose gold ring", "t", rule_id="p5"),
        ]
        items = [
            item("i1", "gold band"),
            item("i2", "band gold"),  # wrong order: no phrase
            item("i3", "a rose gold ring"),
            item("i4", "very fine rose gold ring x"),
            item("i5", "rose gold band"),
            item("i6", "gold gold band"),  # second occurrence is adjacent
        ]
        fired = assert_parity(rules, items)
        assert fired == {
            "i1": ["p2"],
            "i3": ["p3"],
            "i4": ["p3", "p5"],
            "i5": ["p2"],
            "i6": ["p2"],
        }

    def test_regex_fallback_closure_branch(self):
        # "colou?r" has no \w-run shape the lowerer accepts wholesale if
        # paired with an unloweable branch; the whole rule verifies via
        # its compiled regex and must still agree.
        rules = [WhitelistRule("silver .* ring", "t", rule_id="rx1")]
        items = [
            item("i1", "silver gold ring"),
            item("i2", "silver ring"),
            item("i3", "ring silver"),
        ]
        assert_parity(rules, items)

    def test_sequence_rules_all_lengths(self):
        rules = [
            SequenceRule(["ring"], "t", rule_id="s1"),
            SequenceRule(["gold", "ring"], "t", rule_id="s2"),
            SequenceRule(["fine", "gold", "ring"], "t", rule_id="s3"),
        ]
        items = [
            item("i1", "fine gold diamond ring"),  # subsequence, not contiguous
            item("i2", "ring gold fine"),  # wrong order
            item("i3", "gold x y z ring"),
            item("i4", "ring"),
        ]
        fired = assert_parity(rules, items)
        assert fired == {
            "i1": ["s1", "s2", "s3"],
            "i2": ["s1"],
            "i3": ["s1", "s2"],
            "i4": ["s1"],
        }

    def test_stopword_sequence_counts_but_never_fires(self):
        # matches_prepared walks stop-word-filtered tokens, so a sequence
        # containing a stop word cannot fire; the candidate evaluation is
        # still counted by both layers.
        rules = [SequenceRule(["of", "gold"], "t", rule_id="s1")]
        items = [item("i1", "ring of gold"), item("i2", "gold of ring")]
        fired = assert_parity(rules, items)
        assert fired == {}

    def test_attribute_and_value_rules(self):
        rules = [
            AttributeRule("ISBN", "book", rule_id="a1"),
            ValueConstraintRule("Brand", "Apple", ["laptop", "phone"], rule_id="v1"),
        ]
        items = [
            item("i1", "some product", {"isbn": "123"}),
            item("i2", "apple thing", {"brand": "APPLE"}),
            item("i3", "apple thing", {"brand": "pear"}),
            item("i4", "no attrs"),
            item("i5", "dup keys", {"Brand": "apple", "brand": "pear"}),
        ]
        fired = assert_parity(rules, items)
        assert fired == {"i1": ["a1"], "i2": ["v1"], "i5": ["v1"]}

    def test_predicate_rule_lands_in_generic_residue(self):
        rules = [
            PredicateRule([Clause("title_contains ring", lambda it: "ring" in it.title)], "t", rule_id="pr1"),
            WhitelistRule("gold", "t", rule_id="w1"),
        ]
        items = [item("i1", "gold ring"), item("i2", "silver band")]
        assert_parity(rules, items)
        compiled = RuleSetCompiler().compile(rules)
        assert "residue-generic" in compiled.lane_of("pr1")
        assert not compiled.forced_compat

    def test_unknown_anchored_rule_class_forces_compat(self):
        class ExoticRule(WhitelistRule):
            def matches_prepared(self, prepared):  # overridden semantics
                return "gold" in prepared.tokens and super().matches_prepared(prepared)

        rules = [ExoticRule("ring", "t", rule_id="x1"),
                 WhitelistRule("band", "t", rule_id="w1")]
        items = [item("i1", "gold ring"), item("i2", "silver ring"),
                 item("i3", "band")]
        fired_i, _ = IndexedExecutor(rules).run(items)
        fired_c, _ = IndexedExecutor(rules, compiled=True).run(items)
        assert fired_c == fired_i == {"i1": ["x1"], "i3": ["w1"]}
        compiled = RuleSetCompiler().compile(rules)
        assert compiled.forced_compat
        assert "compilation skipped" in compiled.lane_of("w1")


class TestPluralBridgeTrap:
    """The fire lane must never bridge: an exact-word rule does not fire
    on the plural surface form, even though the index proposes it."""

    @pytest.mark.parametrize("rule", [
        SequenceRule(["ring"], "t", rule_id="r1"),
        WhitelistRule("ring", "t", rule_id="r1"),
    ])
    def test_candidate_counted_but_no_fire_on_plural_only_title(self, rule):
        items = [item("i1", "blue rings")]
        fired_i, stats_i = IndexedExecutor([rule]).run(items)
        fired_c, stats_c = IndexedExecutor([rule], compiled=True).run(items)
        assert fired_i == fired_c == {}
        # The singular-expanded probe proposes the rule: exactly one
        # (failed) evaluation on both paths.
        assert stats_i.rule_evaluations == stats_c.rule_evaluations == 1

    def test_multi_anchor_rule_not_double_counted_via_bridge(self):
        # anchors {ring, rings}: on "rings" the rule is reachable both
        # directly and through the bridge — one candidate, like the index.
        rules = [WhitelistRule("ring|rings", "t", rule_id="w1")]
        items = [item("i1", "rings"), item("i2", "ring rings")]
        assert_parity(rules, items)


class TestDirtyTitlesAndSkipMode:
    def test_dirty_titles_route_through_compat_path(self):
        rules = [
            WhitelistRule("ring", "t", rule_id="w1"),
            SequenceRule(["gold", "ring"], "t", rule_id="s1"),
        ]
        items = [
            item("i1", "café gold ring"),     # non-ascii
            item("i2", "gold-plated ring!!"),      # punctuation
            item("i3", "GOLD Ring"),               # clean after lowering
            item("i4", ""),                        # empty title
            item("i5", "gold/ring combo"),
        ]
        assert_parity(rules, items)

    def test_skip_mode_accounting_matches_interpreted(self):
        class BadTitle:
            item_id = "bad"
            attributes = {}

            @property
            def title(self):
                raise RuntimeError("boom")

        rules = [WhitelistRule("ring", "t", rule_id="w1")]
        items = [item("i1", "a ring"), BadTitle(), item("i2", "band")]
        fired_i, stats_i = IndexedExecutor(rules, on_error="skip").run(items)
        fired_c, stats_c = IndexedExecutor(
            rules, compiled=True, on_error="skip"
        ).run(items)
        assert fired_c == fired_i == {"i1": ["w1"]}
        assert stats_c.skipped_items == stats_i.skipped_items == 1
        assert stats_c.skipped_item_ids == stats_i.skipped_item_ids == ["bad"]
        assert stats_c.items == stats_i.items == 3

    def test_raise_mode_propagates(self):
        class BadTitle:
            item_id = "bad"
            attributes = {}

            @property
            def title(self):
                raise RuntimeError("boom")

        executor = IndexedExecutor([WhitelistRule("x", "t")], compiled=True)
        with pytest.raises(RuntimeError):
            executor.run([BadTitle()])


class TestDisabledRulesAndRecompile:
    def test_disabled_rules_never_fire_and_are_not_counted(self):
        rules = [
            WhitelistRule("ring", "t", rule_id="w1"),
            WhitelistRule("ring", "t", rule_id="w2"),
        ]
        rules[1].enabled = False
        items = [item("i1", "a ring")]
        fired = assert_parity(rules, items)
        assert fired == {"i1": ["w1"]}

    def test_enabled_flip_between_runs_recompiles(self):
        rules = [WhitelistRule("ring", "t", rule_id="w1"),
                 WhitelistRule("band", "t", rule_id="w2")]
        executor = IndexedExecutor(rules, compiled=True)
        items = [item("i1", "ring band")]
        fired, _ = executor.run(items)
        assert fired == {"i1": ["w1", "w2"]}
        rules[0].enabled = False
        fired, _ = executor.run(items)
        assert fired == {"i1": ["w2"]}
        rules[0].enabled = True
        fired, stats = executor.run(items)
        assert fired == {"i1": ["w1", "w2"]}
        # back to the first fingerprint: served from the compile cache
        assert stats.compile_time == 0.0


class TestPhasedExecution:
    def test_phase_timing_split_and_identical_results(self):
        rules = [WhitelistRule("rings?", "t", rule_id="w1"),
                 SequenceRule(["gold", "ring"], "t", rule_id="s1"),
                 AttributeRule("isbn", "book", rule_id="a1")]
        items = [item(f"i{n}", f"gold ring {n}") for n in range(50)]
        items.append(item("dirty", "café ring"))
        compiled = RuleSetCompiler().compile(rules)
        fired_fast, stats_fast = compiled.execute(items)
        fired_phased, stats_phased = compiled.execute(items, phase_timing=True)
        assert fired_phased == fired_fast
        assert stats_phased.rule_evaluations == stats_fast.rule_evaluations
        assert stats_phased.prefilter_time > 0.0
        assert stats_phased.verify_time > 0.0
        assert stats_fast.prefilter_time == stats_fast.verify_time == 0.0

    def test_observability_implies_phased_spans(self):
        obs = Observability()
        rules = [WhitelistRule("ring", "t", rule_id="w1")]
        executor = IndexedExecutor(rules, compiled=True, observability=obs)
        fired, stats = executor.run([item("i1", "a ring")])
        assert fired == {"i1": ["w1"]}
        names = [span.name for span in obs.tracer.spans]
        assert "exec.compile" in names
        assert "exec.prefilter" in names
        assert "exec.verify" in names
        assert stats.compile_time > 0.0


class TestIncrementalCompiled:
    def _corpus(self):
        rules = [
            WhitelistRule("rings?", "t", rule_id="w1"),
            SequenceRule(["gold", "ring"], "t", rule_id="s1"),
            AttributeRule("isbn", "book", rule_id="a1"),
            ValueConstraintRule("brand", "apple", ["phone"], rule_id="v1"),
        ]
        items = [
            item("i1", "gold ring"),
            item("i2", "rings"),
            item("i3", "book", {"ISBN": "9"}),
            item("i4", "phone", {"brand": "Apple"}),
        ]
        return rules, items

    def test_matches_interpreted_incremental(self):
        rules, items = self._corpus()
        compiled = IncrementalExecutor(rules=rules, items=items, compiled=True)
        interpreted = IncrementalExecutor(rules=rules, items=items)
        assert compiled.fired_map() == interpreted.fired_map()
        assert (
            compiled.stats.rule_evaluations == interpreted.stats.rule_evaluations
        )

    def test_churn_cycle_keeps_parity(self):
        rules, items = self._corpus()
        compiled = IncrementalExecutor(rules=rules, items=items, compiled=True)
        interpreted = IncrementalExecutor(rules=rules, items=items)
        for ex in (compiled, interpreted):
            ex.remove_rules(["w1"])
            ex.add_rules([WhitelistRule("band", "t", rule_id="w2")])
            ex.update_rule(SequenceRule(["silver", "ring"], "t", rule_id="s1"))
            ex.add_items([item("i5", "silver band ring"), item("i2", "rings deluxe")])
            ex.remove_items(["i3"])
        assert compiled.fired_map() == interpreted.fired_map()
        # and back to (a copy of) the original rule:
        for ex in (compiled, interpreted):
            ex.update_rule(SequenceRule(["gold", "ring"], "t", rule_id="s1"))
            ex.add_rules([WhitelistRule("rings?", "t", rule_id="w1")])
            ex.remove_rules(["w2"])
        assert compiled.fired_map() == interpreted.fired_map()

    def test_disable_enable_is_snapshot_filter_only(self):
        rules, items = self._corpus()
        compiled = IncrementalExecutor(rules=rules, items=items, compiled=True)
        before = compiled.stats.rule_evaluations
        rules[0].enabled = False
        assert "w1" not in str(compiled.fired_map())
        rules[0].enabled = True
        assert compiled.fired_map()["i2"] == ["w1"]
        assert compiled.stats.rule_evaluations == before  # zero re-evaluation

    def test_refresh_parity(self):
        rules, items = self._corpus()
        compiled = IncrementalExecutor(rules=rules, items=items, compiled=True)
        interpreted = IncrementalExecutor(rules=rules, items=items)
        fired_c, op_c = compiled.refresh()
        fired_i, op_i = interpreted.refresh()
        assert fired_c == fired_i
        assert op_c.rule_evaluations == op_i.rule_evaluations


class TestPicklingContract:
    def test_compiled_artifact_round_trips_by_relowering(self):
        rules = [
            WhitelistRule("rings?|gold band", "t", rule_id="w1"),
            SequenceRule(["fine", "gold", "ring"], "t", rule_id="s1"),
            AttributeRule("isbn", "book", rule_id="a1"),
        ]
        rules[2].enabled = False
        compiled = RuleSetCompiler().compile(rules, include_disabled=True)
        clone = pickle.loads(pickle.dumps(compiled))
        items = [item("i1", "fine gold ring"), item("i2", "gold band"),
                 item("i3", "x", {"isbn": "1"})]
        for it in items:
            assert clone.match_item(it) == compiled.match_item(it)
        assert clone.include_disabled

    def test_predicate_rules_make_artifact_unpicklable(self):
        compiled = RuleSetCompiler().compile(
            [PredicateRule([Clause("title_contains x", lambda it: "x" in it.title)], "t", rule_id="p1")]
        )
        with pytest.raises(UnserializableRuleError):
            pickle.dumps(compiled)

    def test_shard_payload_size_is_independent_of_rule_count(self):
        """Satellite: shard submissions carry O(shard items), not rules."""
        items = [item(f"i{n}", f"token{n} gold ring") for n in range(40)]
        few = PartitionedExecutor(
            [WhitelistRule("ring", "t", rule_id="w0")], n_workers=4
        )
        many = PartitionedExecutor(
            [WhitelistRule(f"tok{n}", "t", rule_id=f"w{n}") for n in range(300)],
            n_workers=4,
        )
        shards_few, _, _ = few._shards(items)
        shards_many, _, _ = many._shards(items)
        for shard_few, shard_many in zip(shards_few, shards_many):
            assert len(pickle.dumps(shard_few)) == len(pickle.dumps(shard_many))

    def test_shard_payload_grows_linearly_with_items_only(self):
        executor = PartitionedExecutor(
            [WhitelistRule("ring", "t", rule_id="w0")], n_workers=1
        )
        small, _, _ = executor._shards([item(f"i{n}", "gold ring") for n in range(10)])
        large, _, _ = executor._shards([item(f"i{n}", "gold ring") for n in range(100)])
        small_bytes = len(pickle.dumps(small[0]))
        large_bytes = len(pickle.dumps(large[0]))
        assert large_bytes < small_bytes * 20  # ~10x items => ~10x bytes

    def test_prepared_payload_is_minimal(self):
        payload = prepare(item("i1", "a gold ring")).to_payload()
        assert set(payload) == {"item", "tokens_with_stopwords"}
        rebuilt = PreparedItem.from_payload(payload)
        assert rebuilt.tokens == ("gold", "ring")
        assert rebuilt.tokens_with_stopwords == ("a", "gold", "ring")


class TestPartitionedCompiled:
    def test_compiled_shards_ship_raw_items(self):
        executor = PartitionedExecutor(
            [WhitelistRule("ring", "t", rule_id="w1")], n_workers=2, compiled=True
        )
        shards, shard_ids, _ = executor._shards([item("i1", "a"), item("i2", "b")])
        assert all(isinstance(record, ProductItem) for shard in shards for record in shard)
        assert shard_ids == [["i1"], ["i2"]]

    def test_compiled_partitioned_matches_interpreted(self):
        rules = [
            WhitelistRule("rings?", "t", rule_id="w1"),
            SequenceRule(["gold", "ring"], "t", rule_id="s1"),
        ]
        items = [item(f"i{n}", f"gold ring {n}") for n in range(23)]
        fired_i, _, _ = PartitionedExecutor(rules, n_workers=3).run(items)
        fired_c, stats_c, reports = PartitionedExecutor(
            rules, n_workers=3, compiled=True
        ).run(items)
        assert fired_c == fired_i
        assert stats_c.compile_time > 0.0
        assert all(report.ok for report in reports)

    def test_compiled_artifact_reused_across_runs(self):
        executor = PartitionedExecutor(
            [WhitelistRule("ring", "t", rule_id="w1")], n_workers=2, compiled=True
        )
        items = [item("i1", "a ring")]
        executor.run(items)
        first = executor._driver_compiled
        executor.run(items)
        assert executor._driver_compiled is first


class TestExplain:
    """Satellite: every compiled match maps back to a human-readable rule."""

    CASES = [
        (WhitelistRule("rings?", "jewelry", rule_id="w1"),
         item("i1", "gold rings"), "whitelist"),
        (BlacklistRule("toy", "jewelry", rule_id="b1"),
         item("i2", "toy ring"), "blacklist"),
        (SequenceRule(["gold", "ring"], "jewelry", rule_id="s1"),
         item("i3", "gold shiny ring"), "whitelist"),
        (AttributeRule("isbn", "book", rule_id="a1"),
         item("i4", "x", {"ISBN": "12"}), "whitelist"),
        (ValueConstraintRule("brand", "apple", ["phone", "laptop"], rule_id="v1"),
         item("i5", "x", {"brand": "Apple"}), "constraint"),
    ]

    @pytest.mark.parametrize(
        "rule,matching_item,kind", CASES, ids=[c[0].rule_id for c in CASES]
    )
    def test_one_example_per_registered_rule_class(self, rule, matching_item, kind):
        compiled = RuleSetCompiler().compile([rule])
        hits, _ = compiled.match_item(matching_item)
        assert hits == [rule.rule_id]
        step = compiled.explain(matching_item, rule.rule_id)
        assert isinstance(step, ExplanationStep)
        assert step.rule_id == rule.rule_id
        assert step.kind == kind
        assert step.statement == rule.describe()
        assert "matched via compiled lane" in step.effect
        assert compiled.lane_of(rule.rule_id) in step.effect

    def test_non_match_is_explained_too(self):
        compiled = RuleSetCompiler().compile(
            [WhitelistRule("ring", "t", rule_id="w1")]
        )
        step = compiled.explain(item("i1", "gold band"), "w1")
        assert "did not match" in step.effect

    def test_unknown_rule_raises(self):
        compiled = RuleSetCompiler().compile([])
        with pytest.raises(UnknownRuleError):
            compiled.explain(item("i1", "x"), "nope")

    def test_explain_fired_covers_every_hit(self):
        rules = [WhitelistRule("gold", "t", rule_id="w1"),
                 WhitelistRule("ring", "t", rule_id="w2")]
        compiled = RuleSetCompiler().compile(rules)
        steps = compiled.explain_fired(item("i1", "gold ring"))
        assert [step.rule_id for step in steps] == ["w1", "w2"]

    def test_compiled_path_feeds_the_why_provenance_chain(self):
        """The fired maps reaching observe_fired (and from there the
        quality/provenance chain) are identical, compiled vs interpreted."""
        rules = [WhitelistRule("rings?", "t", rule_id="w1"),
                 SequenceRule(["gold", "ring"], "t", rule_id="s1")]
        items = [item("i1", "gold ring"), item("i2", "rings"), item("i3", "x")]
        snapshots = []
        for compiled in (False, True):
            obs = Observability()
            obs.attach_quality()
            IndexedExecutor(rules, compiled=compiled, observability=obs).run(items)
            health = obs.quality.health
            snapshots.append(
                {rid: health.health(rid).fires for rid in ("w1", "s1")}
            )
        assert snapshots[0] == snapshots[1]


class TestCompiledRuleSetChurn:
    def test_add_remove_patches_only_touched_lanes(self):
        compiled = CompiledRuleSet()
        compiled.add_rule(WhitelistRule("ring", "t", rule_id="w1"))
        gen = compiled.generation
        compiled.add_rule(SequenceRule(["gold", "band"], "t", rule_id="s1"))
        assert compiled.generation == gen + 1
        hits, _ = compiled.match_item(item("i1", "gold ring band"))
        assert hits == ["s1", "w1"]
        assert compiled.remove_rule("w1") is True
        assert compiled.remove_rule("w1") is False
        hits, _ = compiled.match_item(item("i1", "gold ring band"))
        assert hits == ["s1"]

    def test_duplicate_add_rejected(self):
        compiled = CompiledRuleSet([WhitelistRule("x", "t", rule_id="w1")])
        with pytest.raises(ValueError):
            compiled.add_rule(WhitelistRule("y", "t", rule_id="w1"))

    def test_layout_counts(self):
        compiled = CompiledRuleSet([
            WhitelistRule("ring|gold band|rose gold ring", "t", rule_id="w1"),
            SequenceRule(["gold", "ring"], "t", rule_id="s1"),
            AttributeRule("isbn", "book", rule_id="a1"),
        ])
        layout = compiled.layout()
        assert layout["rules"] == 3
        assert layout["depth1_fire_entries"] == 1   # "ring" branch
        assert layout["depth2_pair_entries"] == 1   # "gold band"
        assert layout["automaton_patterns"] == 1    # "rose gold ring"
        assert layout["verify_entries"] == 1        # the 2-token sequence
        assert layout["residue_rules"] == 1


# -- the hypothesis property: compiled == interpreted, arbitrary rulesets ------

_WORDS = st.sampled_from(
    ["ring", "rings", "gold", "band", "toy", "fine", "x1", "of", "the", "zz"]
)
_TITLES = st.text(
    alphabet="abcdefghij é-.!", min_size=0, max_size=30
).map(lambda s: s) | st.lists(_WORDS, min_size=0, max_size=6).map(" ".join)


@st.composite
def _rules(draw):
    kind = draw(st.integers(min_value=0, max_value=4))
    rid = f"r{draw(st.integers(min_value=0, max_value=10 ** 6))}"
    if kind == 0:
        words = draw(st.lists(_WORDS, min_size=1, max_size=3, unique=True))
        pattern = "|".join(w + ("s?" if draw(st.booleans()) else "") for w in words)
        rule = WhitelistRule(pattern, "t", rule_id=rid)
    elif kind == 1:
        phrase = " ".join(draw(st.lists(_WORDS, min_size=2, max_size=4)))
        rule = WhitelistRule(phrase, "t", rule_id=rid)
    elif kind == 2:
        rule = SequenceRule(
            draw(st.lists(_WORDS, min_size=1, max_size=4)), "t", rule_id=rid
        )
    elif kind == 3:
        rule = AttributeRule(draw(st.sampled_from(["isbn", "brand"])), "t", rule_id=rid)
    else:
        rule = ValueConstraintRule(
            "brand", draw(st.sampled_from(["apple", "acme"])), ["t"], rule_id=rid
        )
    rule.enabled = draw(st.booleans())
    return rule


@st.composite
def _items(draw):
    n = draw(st.integers(min_value=0, max_value=8))
    out = []
    for index in range(n):
        attributes = draw(
            st.dictionaries(
                st.sampled_from(["isbn", "ISBN", "brand", "Brand"]),
                st.sampled_from(["apple", "ACME", "9"]),
                max_size=2,
            )
        )
        out.append(item(f"i{index}", draw(_TITLES), attributes))
    return out


class TestHypothesisParity:
    @settings(max_examples=120, deadline=None)
    @given(
        st.lists(_rules(), min_size=0, max_size=8, unique_by=lambda r: r.rule_id),
        _items(),
    )
    def test_compiled_equals_interpreted_for_arbitrary_rulesets(self, rules, items):
        fired_i, stats_i = IndexedExecutor(rules).run(items)
        fired_c, stats_c = IndexedExecutor(rules, compiled=True).run(items)
        assert fired_c == fired_i
        assert stats_c.rule_evaluations == stats_i.rule_evaluations
        assert stats_c.matches == stats_i.matches

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(_rules(), min_size=0, max_size=6, unique_by=lambda r: r.rule_id),
        _items(),
    )
    def test_incremental_compiled_equals_batch_interpreted(self, rules, items):
        enabled = [r for r in rules]
        incremental = IncrementalExecutor(rules=enabled, items=items, compiled=True)
        fired_i, _ = IndexedExecutor(enabled).run(items)
        assert incremental.fired_map() == fired_i
