"""Incremental execution: delta maintenance is invisible in the output.

The contract under test: after ANY interleaved sequence of
``add_rules / update_rule / remove_rules / add_items / remove_items``
(plus enable/disable churn), :class:`IncrementalExecutor.fired_map` is
byte-identical to a from-scratch :class:`IndexedExecutor` run over the
executor's current rules and items — while touching only the delta
(checked through the MatchStore generation counters and the stats ledger).
"""

from __future__ import annotations

import itertools
import json
import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.generator import CatalogGenerator
from repro.catalog.batches import BatchStream
from repro.catalog.types import ProductItem
from repro.core import (
    AttributeRule,
    BlacklistRule,
    SequenceRule,
    ValueConstraintRule,
    WhitelistRule,
)
from repro.core.errors import DuplicateRuleError, UnknownRuleError
from repro.core.ruleset import RuleSet
from repro.core.serialize import rules_from_dicts
from repro.execution import (
    DataIndex,
    ExecutionStats,
    IncrementalExecutor,
    IndexedExecutor,
    MatchStore,
    NaiveExecutor,
    RuleIndex,
    prepare_all,
)
from repro.utils.clock import SimClock

GOLDEN = pathlib.Path(__file__).parent / "golden"

_ids = itertools.count()

VOCAB = (
    "ring rings gold diamond area rug rugs motor engine oil jeans denim "
    "relaxed fit mystery novel gadget lamp shade with for 5x7 pack blue"
).split()


def item(title, **attrs):
    return ProductItem(item_id=f"inc-{next(_ids):06d}", title=title, attributes=attrs)


def canonical(fired) -> str:
    return json.dumps(fired, sort_keys=True, indent=2) + "\n"


def full_fired(rules, items):
    return IndexedExecutor(list(rules)).run(list(items))[0]


# ---------------------------------------------------------------------------
# MatchStore unit behavior
# ---------------------------------------------------------------------------


class TestMatchStore:
    def test_pairs_mirrored_both_ways(self):
        store = MatchStore()
        store.set_rule_matches("r1", ["i1", "i2"])
        store.set_item_matches("i3", ["r1", "r2"])
        assert store.items_of_rule("r1") == {"i1", "i2", "i3"}
        assert store.rules_of_item("i3") == {"r1", "r2"}
        assert ("r1", "i2") in store
        assert ("r2", "i1") not in store
        assert len(store) == 4
        assert set(store.pairs()) == {
            ("r1", "i1"), ("r1", "i2"), ("r1", "i3"), ("r2", "i3"),
        }

    def test_set_rule_matches_reports_invalidations(self):
        store = MatchStore()
        store.set_rule_matches("r1", ["i1", "i2", "i3"])
        # i1 kept, i2/i3 dropped, i4 added -> 2 invalidations.
        assert store.set_rule_matches("r1", ["i1", "i4"]) == 2
        assert store.items_of_rule("r1") == {"i1", "i4"}

    def test_discards_report_invalidations_and_clean_up(self):
        store = MatchStore()
        store.set_rule_matches("r1", ["i1", "i2"])
        store.set_rule_matches("r2", ["i1"])
        assert store.discard_item("i1") == 2
        assert store.rules_of_item("i1") == frozenset()
        assert store.discard_rule("r1") == 1
        assert len(store) == 0

    def test_generation_counters_track_recomputes(self):
        store = MatchStore()
        assert store.rule_generation("r1") == 0
        store.set_rule_matches("r1", ["i1"])
        store.set_rule_matches("r1", ["i2"])
        store.set_item_matches("i9", ["r1"])
        assert store.rule_generation("r1") == 2
        assert store.item_generation("i9") == 1
        assert store.item_generation("i1") == 0  # written via rule side only
        assert store.generation == 3

    def test_fired_map_filters_and_sorts(self):
        store = MatchStore()
        store.set_item_matches("b", ["r2", "r1", "r3"])
        store.set_item_matches("a", ["r3"])
        fired = store.fired_map(frozenset({"r1", "r2"}))
        assert fired == {"b": ["r1", "r2"]}
        assert list(fired) == sorted(fired)


# ---------------------------------------------------------------------------
# Delta API: costs land on the delta, results equal the full run
# ---------------------------------------------------------------------------


def small_world():
    items = [
        item("gold rings for women"),
        item("area rug 5x7 blue"),
        item("mystery novel pack", isbn="978"),
        item("motor engine oil"),
    ]
    rules = [
        WhitelistRule("rings?", "rings", rule_id=f"w-{next(_ids):06d}"),
        SequenceRule(("area", "rug"), "rugs", rule_id=f"s-{next(_ids):06d}"),
        AttributeRule("isbn", "books", rule_id=f"a-{next(_ids):06d}"),
        BlacklistRule("motor engine", "jewelry", rule_id=f"b-{next(_ids):06d}"),
    ]
    return rules, items


class TestIncrementalExecutor:
    def test_initial_load_matches_full_run(self):
        rules, items = small_world()
        incremental = IncrementalExecutor(rules, items)
        assert incremental.fired_map() == full_fired(rules, items)
        assert incremental.rule_count == len(rules)
        assert incremental.item_count == len(items)

    def test_single_rule_edit_touches_only_its_candidates(self):
        rules, items = small_world()
        incremental = IncrementalExecutor(rules, items)
        generations_before = {
            i.item_id: incremental.store.item_generation(i.item_id) for i in items
        }
        edit = WhitelistRule("(rings?|novel)", "rings", rule_id=rules[0].rule_id)
        op = incremental.update_rule(edit)
        # Only the anchored candidates (ring/novel items) were evaluated.
        assert op.rule_evaluations == 2
        assert op.delta_rules == 1 and op.delta_items == 0
        # Item rows were not rewritten — the delta went through the rule side.
        for i in items:
            assert incremental.store.item_generation(i.item_id) \
                == generations_before[i.item_id]
        new_rules = [edit] + rules[1:]
        assert incremental.fired_map() == full_fired(new_rules, items)

    def test_update_rule_invalidates_stale_pairs(self):
        rules, items = small_world()
        incremental = IncrementalExecutor(rules, items)
        narrowed = WhitelistRule("nothingmatches", "rings", rule_id=rules[0].rule_id)
        op = incremental.update_rule(narrowed)
        assert op.invalidations == 1  # the old rings match died
        assert incremental.fired_map() == full_fired([narrowed] + rules[1:], items)

    def test_batch_arrival_costs_o_batch(self):
        rules, items = small_world()
        incremental = IncrementalExecutor(rules, items)
        rule_gens = {r.rule_id: incremental.store.rule_generation(r.rule_id)
                     for r in rules}
        batch = [item("gold rings novel"), item("blue jeans denim")]
        op = incremental.add_items(batch)
        assert op.delta_items == len(batch)
        # No rule column was wholesale recomputed by an item-side delta.
        for rule in rules:
            assert incremental.store.rule_generation(rule.rule_id) \
                == rule_gens[rule.rule_id]
        assert incremental.fired_map() == full_fired(rules, items + batch)

    def test_remove_items_and_rules(self):
        rules, items = small_world()
        incremental = IncrementalExecutor(rules, items)
        incremental.remove_items([items[0].item_id])
        incremental.remove_rules([rules[2].rule_id])
        remaining_rules = [r for r in rules if r is not rules[2]]
        assert incremental.fired_map() == full_fired(remaining_rules, items[1:])

    def test_relisted_item_is_reevaluated(self):
        rules, items = small_world()
        incremental = IncrementalExecutor(rules, items)
        relisted = ProductItem(item_id=items[0].item_id, title="motor engine oil")
        op = incremental.add_items([relisted])
        assert op.invalidations >= 1  # the old rings match died with the title
        current = [relisted] + list(items[1:])
        assert incremental.fired_map() == full_fired(rules, current)

    def test_enable_disable_is_a_zero_evaluation_delta(self):
        rules, items = small_world()
        incremental = IncrementalExecutor(rules, items)
        incremental.fired_map()
        evaluations = incremental.stats.rule_evaluations
        rules[0].enabled = False
        assert incremental.fired_map() == full_fired(rules, items)
        rules[0].enabled = True
        assert incremental.fired_map() == full_fired(rules, items)
        assert incremental.stats.rule_evaluations == evaluations

    def test_fired_map_snapshot_is_memoized(self):
        rules, items = small_world()
        incremental = IncrementalExecutor(rules, items)
        first = incremental.fired_map()
        hits_before = incremental.stats.cache_hits
        assert incremental.fired_map() is first
        assert incremental.stats.cache_hits == hits_before + 1
        incremental.add_items([item("gold rings")])
        assert incremental.fired_map() is not first

    def test_snapshot_memo_keys_on_enabled_identity_not_count(self):
        # Regression guard: the memo key must be the enabled-rule
        # *identity set*, not its size (or the store generation alone).
        # Disabling rule A while enabling rule B between snapshots keeps
        # the count and the generation unchanged; a count-keyed memo
        # would serve rule A's stale snapshot.
        rules, items = small_world()
        rules[0].enabled = True
        rules[1].enabled = False
        incremental = IncrementalExecutor(rules, items)
        first = incremental.fired_map()
        generation = incremental.store.generation
        rules[0].enabled = False
        rules[1].enabled = True  # same enabled count, different identity
        assert incremental.store.generation == generation
        second = incremental.fired_map()
        assert second is not first
        assert second == full_fired(rules, items)
        assert first != second  # the two views genuinely differ on this corpus
        # Flipping back serves the correct view again (and re-memoizes).
        rules[0].enabled = True
        rules[1].enabled = False
        assert incremental.fired_map() == first
        assert incremental.fired_map() is incremental.fired_map()

    def test_refresh_rebuilds_from_scratch(self):
        rules, items = small_world()
        incremental = IncrementalExecutor(rules, items)
        pairs = len(incremental.store)
        fired, op = incremental.refresh()
        assert op.invalidations == pairs
        assert fired == full_fired(rules, items)

    def test_per_rule_and_per_item_views(self):
        rules, items = small_world()
        incremental = IncrementalExecutor(rules, items)
        assert incremental.fired_for_rule(rules[0].rule_id) == [items[0].item_id]
        assert incremental.fired_for_item(items[0].item_id) == [rules[0].rule_id]
        rules[0].enabled = False
        assert incremental.fired_for_item(items[0].item_id) == []
        # Disabled rules keep their (condition-truth) matches visible.
        assert incremental.fired_for_rule(rules[0].rule_id) == [items[0].item_id]

    def test_duplicate_and_unknown_rule_errors(self):
        rules, items = small_world()
        incremental = IncrementalExecutor(rules, items)
        with pytest.raises(DuplicateRuleError):
            incremental.add_rules([rules[0]])
        with pytest.raises(UnknownRuleError):
            incremental.remove_rules(["no-such-rule"])
        with pytest.raises(UnknownRuleError):
            incremental.update_rule(WhitelistRule("x", "t", rule_id="no-such-rule"))
        with pytest.raises(UnknownRuleError):
            incremental.fired_for_rule("no-such-rule")

    def test_ruleset_attachment_drives_deltas(self):
        rules, items = small_world()
        ruleset = RuleSet(rules, name="tracked")
        incremental = IncrementalExecutor.for_ruleset(ruleset, items=items)
        ruleset.add(WhitelistRule("jeans", "jeans", rule_id="rs-add"))
        ruleset.replace(WhitelistRule("novel", "books", rule_id=rules[0].rule_id))
        ruleset.remove(rules[3].rule_id)
        ruleset.disable(rules[1].rule_id)
        assert incremental.fired_map() == full_fired(list(ruleset), items)
        incremental.detach()
        ruleset.add(WhitelistRule("lamp", "lamps", rule_id="after-detach"))
        assert incremental.rule_count == len(ruleset) - 1


# ---------------------------------------------------------------------------
# Hypothesis: arbitrary interleavings stay byte-identical to from-scratch
# ---------------------------------------------------------------------------

tokens = st.sampled_from(VOCAB)
titles = st.lists(tokens, min_size=1, max_size=6).map(" ".join)


@st.composite
def operations(draw):
    """One abstract mutation; applied against live state later."""
    kind = draw(st.sampled_from(
        ["add_rule", "update_rule", "remove_rule", "toggle_rule",
         "add_items", "remove_item"]
    ))
    payload = {
        "titles": draw(st.lists(titles, min_size=1, max_size=3)),
        "pick": draw(st.integers(min_value=0, max_value=10 ** 6)),
        "flavor": draw(st.integers(min_value=0, max_value=3)),
        "token": draw(tokens),
        "token2": draw(tokens),
    }
    return kind, payload


def build_rule(flavor, token, token2, rule_id=None):
    rule_id = rule_id or f"hyp-{next(_ids):06d}"
    if flavor == 0:
        return WhitelistRule(f"{token}s?", "t", rule_id=rule_id)
    if flavor == 1:
        return SequenceRule((token, token2), "t", rule_id=rule_id)
    if flavor == 2:
        return AttributeRule("isbn", "books", rule_id=rule_id)
    return BlacklistRule(f"({token}|{token2})", "t", rule_id=rule_id)


@settings(max_examples=30, deadline=None)
@given(
    seed_titles=st.lists(titles, min_size=0, max_size=5),
    ops=st.lists(operations(), min_size=1, max_size=12),
)
def test_interleaved_deltas_match_from_scratch(seed_titles, ops):
    rules = [
        WhitelistRule("rings?", "rings", rule_id=f"hyp-{next(_ids):06d}"),
        SequenceRule(("area", "rug"), "rugs", rule_id=f"hyp-{next(_ids):06d}"),
    ]
    items = [item(t, **({"isbn": "978"} if i % 2 else {}))
             for i, t in enumerate(seed_titles)]
    incremental = IncrementalExecutor(list(rules), list(items))

    for kind, payload in ops:
        pick, flavor = payload["pick"], payload["flavor"]
        token, token2 = payload["token"], payload["token2"]
        if kind == "add_rule":
            rule = build_rule(flavor, token, token2)
            rules.append(rule)
            incremental.add_rules([rule])
        elif kind == "update_rule" and rules:
            old = rules[pick % len(rules)]
            rule = build_rule(flavor, token, token2, rule_id=old.rule_id)
            rule.enabled = old.enabled
            rules[rules.index(old)] = rule
            incremental.update_rule(rule)
        elif kind == "remove_rule" and rules:
            rule = rules.pop(pick % len(rules))
            incremental.remove_rules([rule.rule_id])
        elif kind == "toggle_rule" and rules:
            rule = rules[pick % len(rules)]
            rule.enabled = not rule.enabled
        elif kind == "add_items":
            batch = [item(t) for t in payload["titles"]]
            items.extend(batch)
            incremental.add_items(batch)
        elif kind == "remove_item" and items:
            gone = items.pop(pick % len(items))
            incremental.remove_items([gone.item_id])
        # The materialized view equals a from-scratch run after EVERY step.
        assert incremental.fired_map() == full_fired(rules, items)
        naive = NaiveExecutor(list(rules)).run(list(items))[0]
        assert incremental.fired_map() == naive


# ---------------------------------------------------------------------------
# Golden corpus: byte-for-byte against the committed snapshot
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def golden_world():
    records = json.loads((GOLDEN / "catalog.json").read_text())
    items = [
        ProductItem(
            item_id=r["item_id"],
            title=r["title"],
            attributes=r["attributes"],
            true_type=r["true_type"],
            vendor=r["vendor"],
            description=r["description"],
        )
        for r in records
    ]
    rules = rules_from_dicts(json.loads((GOLDEN / "ruleset.json").read_text()))
    return rules, items


class TestGoldenIncremental:
    def test_incremental_build_reproduces_golden_bytes(self, golden_world):
        rules, items = golden_world
        half = len(items) // 2
        incremental = IncrementalExecutor(rules[: len(rules) // 2], items[:half])
        incremental.add_rules(rules[len(rules) // 2:])
        incremental.add_items(items[half:])
        assert canonical(incremental.fired_map()) == (GOLDEN / "fired.json").read_text()

    def test_churn_cycle_returns_to_golden_bytes(self, golden_world):
        rules, items = golden_world
        incremental = IncrementalExecutor(rules, items)
        # Retire a third of the rules, drop some items, then undo it all.
        retired = rules[:: 3]
        incremental.remove_rules([r.rule_id for r in retired])
        dropped = items[:: 5]
        incremental.remove_items([i.item_id for i in dropped])
        incremental.add_rules(retired)
        incremental.add_items(dropped)
        assert canonical(incremental.fired_map()) == (GOLDEN / "fired.json").read_text()


# ---------------------------------------------------------------------------
# Shared prepared cache (DataIndex / RuleIndex / executors)
# ---------------------------------------------------------------------------


class TestSharedPreparedCache:
    def test_prepare_all_populates_and_reuses_cache(self):
        cache = {}
        things = [item("gold rings"), item("area rug")]
        first = prepare_all(things, cache=cache)
        second = prepare_all(things, cache=cache)
        assert [p.item_id for p in first] == [t.item_id for t in things]
        assert all(a is b for a, b in zip(first, second))
        assert set(cache) == {t.item_id for t in things}

    def test_executor_counts_cache_hits(self):
        rules, items = small_world()
        cache = {}
        executor = IndexedExecutor(rules, prepared_cache=cache)
        _, first = executor.run(items)
        assert first.cache_misses == len(items) and first.cache_hits == 0
        _, second = executor.run(items)
        assert second.cache_hits == len(items) and second.cache_misses == 0

    def test_data_index_reuses_executor_preparations(self):
        rules, items = small_world()
        cache = {}
        NaiveExecutor(rules, prepared_cache=cache).run(items)
        index = DataIndex(items, cache=cache)
        for row, prepared in index.live_rows():
            assert cache[prepared.item_id] is prepared

    def test_rule_index_probe_uses_cache(self):
        rules, items = small_world()
        cache = {}
        index = RuleIndex(rules, prepared_cache=cache)
        index.candidates(items[0])
        assert items[0].item_id in cache

    def test_incremental_shares_one_cache_everywhere(self):
        rules, items = small_world()
        incremental = IncrementalExecutor(rules, items)
        assert set(incremental.prepared_cache) == {i.item_id for i in items}
        op = incremental.add_items([items[0]])  # re-listing: already prepared
        assert op.cache_hits == 1


# ---------------------------------------------------------------------------
# DataIndex mutation
# ---------------------------------------------------------------------------


class TestDataIndexMutation:
    def test_add_remove_keeps_matches_consistent(self):
        rules, items = small_world()
        index = DataIndex(items)
        rule = rules[0]
        assert {i.item_id for i in index.matches(rule)} == {items[0].item_id}
        index.remove(items[0].item_id)
        assert index.matches(rule) == []
        assert len(index) == len(items) - 1
        index.add(items[0])
        assert {i.item_id for i in index.matches(rule)} == {items[0].item_id}

    def test_unanchored_rules_scan_only_live_rows(self):
        rules, items = small_world()
        index = DataIndex(items)
        index.remove(items[1].item_id)
        attr_rule = rules[2]
        rows = index.candidate_rows(attr_rule)
        assert len(rows) == len(items) - 1
        assert index.candidate_fraction(attr_rule) == 1.0

    def test_duplicate_add_replaces(self):
        index = DataIndex()
        first = item("gold rings")
        index.add(first)
        replacement = ProductItem(item_id=first.item_id, title="area rug")
        index.add(replacement)
        assert len(index) == 1
        rule = SequenceRule(("area", "rug"), "rugs", rule_id=f"dx-{next(_ids):06d}")
        assert {i.item_id for i in index.matches(rule)} == {first.item_id}


# ---------------------------------------------------------------------------
# RuleIndex rarest-anchor determinism
# ---------------------------------------------------------------------------


class TestRarestAnchor:
    def test_empty_frequency_prefers_longest_then_lexicographic(self):
        index = RuleIndex()
        assert index._rarest(["ab", "abcd", "xyzw"]) == "abcd"
        assert index._rarest(["aa", "bb"]) == "aa"

    def test_missing_tokens_count_as_rare(self):
        index = RuleIndex(token_frequency={"common": 10_000, "rare": 2})
        assert index._rarest(["common", "rare"]) == "rare"
        # Unseen vocabulary beats any seen count (treated as frequency 0).
        assert index._rarest(["common", "unseen"]) == "unseen"

    def test_frequency_ties_break_by_length_then_lex(self):
        index = RuleIndex(token_frequency={"aa": 5, "bbbb": 5, "cccc": 5})
        assert index._rarest(["aa", "bbbb", "cccc"]) == "bbbb"

    def test_anchor_choice_is_token_order_independent(self):
        index = RuleIndex(token_frequency={"area": 1000, "rug": 3})
        assert index._rarest(["area", "rug"]) == "rug"
        assert index._rarest(["rug", "area"]) == "rug"
        empty = RuleIndex()
        assert empty._rarest(["abcd", "wxyz"]) == empty._rarest(["wxyz", "abcd"])


# ---------------------------------------------------------------------------
# ExecutionStats: new fields merge correctly
# ---------------------------------------------------------------------------


class TestStatsMerge:
    def test_incremental_fields_merge(self):
        a = ExecutionStats(cache_hits=2, cache_misses=1, invalidations=3,
                           delta_rules=4, delta_items=5)
        b = ExecutionStats(cache_hits=10, cache_misses=20, invalidations=30,
                           delta_rules=40, delta_items=50)
        a.merge(b)
        assert (a.cache_hits, a.cache_misses, a.invalidations,
                a.delta_rules, a.delta_items) == (12, 21, 33, 44, 55)

    def test_cache_hit_rate(self):
        assert ExecutionStats().cache_hit_rate == 0.0
        assert ExecutionStats(cache_hits=3, cache_misses=1).cache_hit_rate == 0.75


# ---------------------------------------------------------------------------
# RuleSet notifications / versioned identity
# ---------------------------------------------------------------------------


class TestRuleSetNotifications:
    def test_version_bumps_and_events_fire(self):
        ruleset = RuleSet(name="notify")
        events = []
        unsubscribe = ruleset.subscribe(lambda event, rule: events.append(
            (event, rule.rule_id)))
        rule = WhitelistRule("rings?", "rings", rule_id="n1")
        ruleset.add(rule)
        ruleset.disable("n1")
        ruleset.disable("n1")  # no-op: already disabled, no event
        ruleset.enable("n1")
        ruleset.replace(WhitelistRule("rings?|band", "rings", rule_id="n1"))
        ruleset.remove("n1")
        assert events == [
            ("added", "n1"), ("disabled", "n1"), ("enabled", "n1"),
            ("replaced", "n1"), ("removed", "n1"),
        ]
        assert ruleset.version == len(events)
        unsubscribe()
        ruleset.add(rule)
        assert len(events) == 5

    def test_revision_is_versioned_identity(self):
        ruleset = RuleSet(name="rev")
        ruleset.add(WhitelistRule("rings?", "rings", rule_id="r1"))
        assert ruleset.revision("r1") == 1
        ruleset.replace(WhitelistRule("band", "rings", rule_id="r1"))
        assert ruleset.revision("r1") == 2
        ruleset.remove("r1")
        ruleset.add(WhitelistRule("rings?", "rings", rule_id="r1"))
        assert ruleset.revision("r1") == 3  # a re-add is a new identity
        with pytest.raises(UnknownRuleError):
            ruleset.revision("missing")

    def test_replace_keeps_evaluation_order(self):
        first = WhitelistRule("rings?", "rings", rule_id="p1")
        second = WhitelistRule("rugs?", "rugs", rule_id="p2")
        ruleset = RuleSet([first, second], name="order")
        ruleset.replace(WhitelistRule("bands?", "rings", rule_id="p1"))
        assert [r.rule_id for r in ruleset] == ["p1", "p2"]
        assert ruleset.get("p1").pattern == "bands?"

    def test_disable_type_notifies_per_rule(self):
        ruleset = RuleSet(name="types")
        ruleset.add(WhitelistRule("rings?", "rings", rule_id="t1"))
        ruleset.add(WhitelistRule("bands?", "rings", rule_id="t2"))
        ruleset.add(WhitelistRule("rugs?", "rugs", rule_id="t3"))
        events = []
        ruleset.subscribe(lambda event, rule: events.append((event, rule.rule_id)))
        assert ruleset.disable_type("rings") == ["t1", "t2"]
        assert events == [("disabled", "t1"), ("disabled", "t2")]


# ---------------------------------------------------------------------------
# BatchStream subscription
# ---------------------------------------------------------------------------


class TestBatchStreamSubscription:
    def test_follow_batches_drives_item_deltas(self, taxonomy):
        generator = CatalogGenerator(taxonomy, seed=11)
        stream = BatchStream(generator, clock=SimClock(), seed=11)
        rules = [WhitelistRule("rings?", "rings", rule_id=f"bs-{next(_ids):06d}")]
        incremental = IncrementalExecutor(rules)
        unsubscribe = incremental.follow_batches(stream)
        batches = list(stream.take(2))
        arrived = [i for batch in batches for i in batch.items]
        assert incremental.item_count == len(arrived)
        assert incremental.fired_map() == full_fired(rules, arrived)
        unsubscribe()
        stream.next_batch()
        assert incremental.item_count == len(arrived)
