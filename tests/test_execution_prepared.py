"""Property tests: all executors agree, byte for byte, on any corpus.

The prepared-item fast path is an optimization, not a semantics change:
Naive, Indexed, and Partitioned executors must produce identical ``fired``
maps over randomized rule/item corpora — including plural anchors (the
index's singular-bridging), residue rules (attribute rules with no title
anchor), alternation regexes, and disabled rules.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.types import ProductItem
from repro.core import (
    AttributeRule,
    BlacklistRule,
    SequenceRule,
    ValueConstraintRule,
    WhitelistRule,
)
from repro.execution import IndexedExecutor, NaiveExecutor, PartitionedExecutor

# A vocabulary engineered to exercise the tricky corners: plural/singular
# pairs ("ring"/"rings"), stop words ("with", "for"), shared stems, and
# tokens that appear in both rules and titles.
VOCAB = (
    "ring rings gold diamond area rug rugs motor engine oil jeans denim "
    "relaxed fit mystery novel gadget lamp shade with for 5x7 pack blue"
).split()

_ids = itertools.count()

tokens = st.sampled_from(VOCAB)
titles = st.lists(tokens, min_size=1, max_size=8).map(" ".join)


@st.composite
def items(draw):
    title = draw(titles)
    attrs = {}
    if draw(st.booleans()):
        attrs["isbn"] = "978"
    if draw(st.booleans()):
        attrs["brand_name"] = draw(st.sampled_from(["apple", "castrol", "shaw"]))
    return ProductItem(item_id=f"item-{next(_ids):06d}", title=title, attributes=attrs)


@st.composite
def regex_rules(draw):
    cls = draw(st.sampled_from([WhitelistRule, BlacklistRule]))
    base = draw(tokens)
    if draw(st.booleans()):
        pattern = f"{base}s?"
    elif draw(st.booleans()):
        pattern = f"({base}|{draw(tokens)})"
    else:
        pattern = f"{base} {draw(tokens)}"
    return cls(pattern, "some type", rule_id=f"rx-{next(_ids):06d}")


@st.composite
def sequence_rules(draw):
    sequence = tuple(draw(st.lists(tokens, min_size=1, max_size=3)))
    return SequenceRule(sequence, "some type", rule_id=f"sq-{next(_ids):06d}")


@st.composite
def attribute_rules(draw):
    attribute = draw(st.sampled_from(["isbn", "brand_name", "missing_attr"]))
    return AttributeRule(attribute, "books", rule_id=f"at-{next(_ids):06d}")


@st.composite
def value_rules(draw):
    value = draw(st.sampled_from(["apple", "castrol", "nope"]))
    return ValueConstraintRule(
        "brand_name", value, ["laptops", "phones"], rule_id=f"vl-{next(_ids):06d}"
    )


@st.composite
def rule_corpora(draw):
    rules = draw(
        st.lists(
            st.one_of(regex_rules(), sequence_rules(), attribute_rules(), value_rules()),
            min_size=1,
            max_size=12,
        )
    )
    # Randomly disable a subset: disabled rules must never fire anywhere.
    for rule in rules:
        if draw(st.booleans()) and draw(st.booleans()):
            rule.enabled = False
    return rules


@settings(max_examples=40, deadline=None)
@given(rules=rule_corpora(), corpus=st.lists(items(), min_size=0, max_size=15),
       n_workers=st.integers(min_value=1, max_value=3))
def test_all_executors_agree(rules, corpus, n_workers):
    naive_fired, naive_stats = NaiveExecutor(rules).run(corpus)
    indexed_fired, indexed_stats = IndexedExecutor(rules).run(corpus)
    partitioned_fired, part_stats, _ = PartitionedExecutor(
        rules, n_workers=n_workers
    ).run(corpus)

    assert naive_fired == indexed_fired
    assert naive_fired == partitioned_fired
    # The index proposes a superset, never more work than the naive scan.
    assert indexed_stats.rule_evaluations <= naive_stats.rule_evaluations
    assert part_stats.items == len(corpus)


@settings(max_examples=40, deadline=None)
@given(rules=rule_corpora(), corpus=st.lists(items(), min_size=0, max_size=10))
def test_index_candidates_are_sound(rules, corpus):
    """Every matching (enabled or not) rule appears among the candidates."""
    from repro.execution import RuleIndex

    index = RuleIndex(rules)
    for thing in corpus:
        candidate_ids = {rule.rule_id for rule in index.candidates(thing)}
        for rule in rules:
            if rule.matches(thing):
                assert rule.rule_id in candidate_ids
