"""Tests for classification explanations and taxonomy validation."""

import pytest

from repro.catalog.types import ProductItem, ProductType, Taxonomy
from repro.catalog.types import validate_product_type
from repro.core import RuleSet, explain_verdict, parse_rules


def item(title, **attributes):
    return ProductItem(item_id=title[:24], title=title, attributes=attributes)


@pytest.fixture()
def ruleset():
    return RuleSet(parse_rules("""
        rings? -> rings
        key rings? -> NOT rings
        value(brand_name)=apple -> laptop computers|smart phones
        laptops? -> laptop computers
    """))


class TestExplainVerdict:
    def test_whitelist_assertion_explained(self, ruleset):
        explanation = explain_verdict(ruleset, item("gold diamond ring"))
        assert explanation.outcome == "rings"
        assert len(explanation.steps) == 1
        assert explanation.steps[0].kind == "whitelist"
        assert "asserted 'rings'" in explanation.steps[0].effect

    def test_veto_explained(self, ruleset):
        explanation = explain_verdict(ruleset, item("retractable key ring"))
        assert explanation.outcome is None
        kinds = [step.kind for step in explanation.steps]
        assert "whitelist" in kinds and "blacklist" in kinds
        whitelist_step = next(s for s in explanation.steps if s.kind == "whitelist")
        assert "later vetoed" in whitelist_step.effect

    def test_constraint_explained(self, ruleset):
        explanation = explain_verdict(
            ruleset, item("apple ring laptop", brand_name="apple"))
        constraint_steps = [s for s in explanation.steps if s.kind == "constraint"]
        assert constraint_steps
        assert "laptop computers" in constraint_steps[0].effect
        ring_step = next(s for s in explanation.steps
                         if s.kind == "whitelist" and "'rings'" in s.effect)
        assert "dropped by a constraint" in ring_step.effect

    def test_no_rules_fired(self, ruleset):
        explanation = explain_verdict(ruleset, item("garden hose"))
        assert explanation.steps == []
        assert "no rule fired" in explanation.render()

    def test_render_is_complete(self, ruleset):
        rendered = explain_verdict(ruleset, item("gold ring")).render()
        assert "outcome: rings" in rendered
        assert "[whitelist]" in rendered


class TestChimeraExplain:
    def test_pipeline_explanation(self, generator):
        from repro.chimera import Chimera
        from repro.core import parse_rules as parse

        chimera = Chimera.build(seed=0)
        chimera.add_whitelist_rules(parse("rings? -> rings"))
        chimera.add_blacklist_rules(parse("key rings? -> NOT rings"))
        chimera.add_training(generator.generate_labeled(800))
        chimera.retrain(min_examples_per_type=3)

        text = chimera.explain_item(item("sapphire gold ring"))
        assert "stage rule-based" in text
        assert "final: rings" in text

        trap = chimera.explain_item(item("retractable key ring"))
        assert "filter vetoes" in trap
        assert "final: rings" not in trap


class TestTaxonomyValidation:
    def test_seed_taxonomy_is_clean(self, taxonomy):
        assert taxonomy.validate() == []

    def test_missing_slot_reported(self):
        bad = ProductType(
            name="widgets", department="d", heads=("widget",),
            modifier_slots={"style": ("neat",)},
            templates=("{mod:nonexistent} {head}",),
        )
        problems = validate_product_type(bad)
        assert any("missing slot 'nonexistent'" in p for p in problems)

    def test_placeholder_free_template_reported(self):
        bad = ProductType(
            name="widgets", department="d", heads=("widget",),
            templates=("just words",),
        )
        problems = validate_product_type(bad)
        assert any("no placeholders" in p for p in problems)

    def test_empty_phrase_reported(self):
        bad = ProductType(
            name="widgets", department="d", heads=("widget",),
            modifier_slots={"style": ("",)},
        )
        problems = validate_product_type(bad)
        assert any("empty phrase" in p for p in problems)

    def test_taxonomy_validate_aggregates(self):
        taxonomy = Taxonomy([
            ProductType(name="ok", department="d", heads=("thing",)),
            ProductType(name="bad", department="d", heads=("x",),
                        templates=("{mod:gone} {head}",)),
        ])
        problems = taxonomy.validate()
        assert len(problems) == 1 and problems[0].startswith("bad:")
