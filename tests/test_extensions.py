"""Tests for the extension features: DSL UDFs, persistence, crowd synonym
judging, partitioned EM, merge planning, and the CLI."""

import json
import os

import pytest

from repro.catalog import CatalogGenerator, build_seed_taxonomy
from repro.catalog.types import ProductItem
from repro.core import (
    RuleParseError,
    RuleRegistry,
    RuleSet,
    RuleStatus,
    UdfRegistry,
    UnknownUdfError,
    WhitelistRule,
    load_registry,
    load_ruleset,
    parse_rule,
    save_registry,
    save_ruleset,
)
from repro.crowd import CrowdBudget, CrowdSynonymJudge, WorkerPool
from repro.em import (
    PartitionedEmMatcher,
    RuleBasedMatcher,
    block_pairs,
    generate_em_dataset,
    parse_em_rule,
)
from repro.maintenance import apply_plan, plan_for_merge


def item(title, **attributes):
    return ProductItem(item_id=title[:24], title=title, attributes=attributes)


class TestUdfClauses:
    def test_udf_in_conjunction(self):
        udfs = UdfRegistry({"long_title": lambda i: len(i.title.split()) >= 5})
        rule = parse_rule("udf(long_title) & rings? -> rings", udfs=udfs)
        assert rule.matches(item("five word gold diamond ring"))
        assert not rule.matches(item("gold ring"))

    def test_udf_alone_builds_predicate_rule(self):
        udfs = UdfRegistry({"always": lambda i: True})
        rule = parse_rule("udf(always) -> NOT medicine", udfs=udfs)
        assert rule.is_blacklist
        assert rule.matches(item("anything"))

    def test_unknown_udf(self):
        with pytest.raises(UnknownUdfError):
            parse_rule("udf(missing) -> t", udfs=UdfRegistry())

    def test_udf_without_registry(self):
        with pytest.raises(RuleParseError):
            parse_rule("udf(x) -> t")

    def test_registry_rejects_noncallable(self):
        with pytest.raises(ValueError):
            UdfRegistry({"bad": 42})

    def test_names_listing(self):
        udfs = UdfRegistry({"b": lambda i: True, "a": lambda i: False})
        assert udfs.names() == ["a", "b"]
        assert "a" in udfs


class TestPersistence:
    def test_ruleset_round_trip(self, tmp_path):
        path = str(tmp_path / "rules.json")
        original = RuleSet([
            WhitelistRule("rings?", "rings", confidence=0.8),
            WhitelistRule("jeans?", "jeans"),
        ], name="mine")
        original.disable(list(original)[1].rule_id)
        save_ruleset(original, path)
        loaded = load_ruleset(path)
        assert loaded.name == "mine"
        assert len(loaded) == 2
        assert len(loaded.active_rules()) == 1
        assert loaded.apply(item("gold ring")).labels == ["rings"]

    def test_ruleset_file_is_plain_json(self, tmp_path):
        path = str(tmp_path / "rules.json")
        save_ruleset(RuleSet([WhitelistRule("a", "t")]), path)
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["kind"] == "ruleset"

    def test_registry_round_trip(self, tmp_path):
        path = str(tmp_path / "registry.json")
        registry = RuleRegistry()
        deployed = registry.submit(WhitelistRule("rings?", "rings"), actor="kay")
        registry.validate(deployed, 0.95)
        registry.deploy(deployed)
        draft = registry.submit(WhitelistRule("jeans?", "jeans"))
        save_registry(registry, path)

        loaded = load_registry(path)
        assert loaded.status_of(deployed) is RuleStatus.DEPLOYED
        assert loaded.status_of(draft) is RuleStatus.DRAFT
        assert loaded.precision_of(deployed) == 0.95
        assert loaded.get(deployed).enabled
        assert not loaded.get(draft).enabled
        # Audit trail restored verbatim.
        actions = [(e.actor, e.action) for e in loaded.audit_for(deployed)]
        assert actions == [("kay", "submit"), ("analyst", "validated"),
                           ("analyst", "deployed")]

    def test_kind_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "rules.json")
        save_ruleset(RuleSet([WhitelistRule("a", "t")]), path)
        with pytest.raises(ValueError):
            load_registry(path)

    def test_loaded_registry_keeps_working(self, tmp_path):
        path = str(tmp_path / "registry.json")
        registry = RuleRegistry()
        rule_id = registry.submit(WhitelistRule("rings?", "rings"))
        save_registry(registry, path)
        loaded = load_registry(path)
        loaded.validate(rule_id, 0.9)
        loaded.deploy(rule_id)
        assert loaded.deployed_ruleset().apply(item("a ring")).labels == ["rings"]


class TestCrowdSynonymJudge:
    @pytest.fixture()
    def judge(self, taxonomy):
        return CrowdSynonymJudge(taxonomy, WorkerPool(seed=1),
                                 budget=CrowdBudget(10_000), seed=2)

    def test_statistically_sound(self, judge):
        yes = sum(judge.judge_synonym("motor oil", "vehicle", "truck")
                  for _ in range(60))
        no = sum(judge.judge_synonym("motor oil", "vehicle", "olive")
                 for _ in range(60))
        assert yes >= 50
        assert no <= 10

    def test_budget_charged(self, taxonomy):
        budget = CrowdBudget(9)
        judge = CrowdSynonymJudge(taxonomy, WorkerPool(seed=1), budget=budget)
        for _ in range(3):
            judge.judge_synonym("motor oil", "vehicle", "truck")
        assert budget.remaining == 0

    def test_slot_none_uses_all_modifiers(self, judge):
        yes = sum(judge.judge_synonym("motor oil", None, "synthetic")
                  for _ in range(30))
        assert yes >= 24  # "synthetic" is in the grade family

    def test_even_votes_rejected(self, taxonomy):
        with pytest.raises(ValueError):
            CrowdSynonymJudge(taxonomy, WorkerPool(seed=1), votes_per_candidate=2)

    def test_drives_discovery_session(self, taxonomy):
        from repro.synonym import DiscoverySession, SynonymTool
        generator = CatalogGenerator(taxonomy, seed=91)
        corpus = [i.title for i in generator.generate_items(4000)]
        tool = SynonymTool(r"(motor | engine | \syn) oils? -> motor oil", corpus)
        judge = CrowdSynonymJudge(taxonomy, WorkerPool(seed=3), seed=4)
        report = DiscoverySession(tool, judge, slot="vehicle", patience=2).run()
        family = set(taxonomy.get("motor oil").slot("vehicle"))
        assert len(set(report.synonyms_found) & family) >= 5


class TestPartitionedEm:
    SOURCES = [
        "jaccard(a.title, b.title) >= 0.7 & a.type = b.type -> match",
        "lev_norm(a.title, b.title) < 0.2 -> no_match",
    ]

    @pytest.fixture(scope="class")
    def workload(self):
        generator = CatalogGenerator(build_seed_taxonomy(), seed=92)
        dataset = generate_em_dataset(generator, n_entities=200, seed=92)
        return dataset, block_pairs(dataset.records)

    def test_matches_single_node(self, workload):
        dataset, pairs = workload
        single = RuleBasedMatcher(
            [parse_em_rule(s) for s in self.SOURCES]).match(pairs)
        sharded, reports = PartitionedEmMatcher(self.SOURCES, n_workers=4).match(pairs)
        assert sharded == single
        assert sum(r.pairs for r in reports) == len(pairs)

    def test_bad_rule_fails_at_construction(self):
        with pytest.raises(Exception):
            PartitionedEmMatcher(["nonsense -> match"])

    def test_needs_match_rule(self):
        with pytest.raises(ValueError):
            PartitionedEmMatcher(["lev_norm(a.title, b.title) < 0.2 -> no_match"])


class TestMergePlanning:
    def test_merge_retargets_everything(self):
        rules = [WhitelistRule("work pants?", "work pants"),
                 WhitelistRule("jeans?", "jeans"),
                 WhitelistRule("rings?", "rings")]
        plan = plan_for_merge(rules, ["work pants", "jeans"], "pants")
        assert len(plan.invalidated) == 2
        assert set(plan.retargets.values()) == {"pants"}
        assert plan.undecidable == []
        apply_plan(rules, plan)
        assert rules[0].target_type == "pants"
        assert rules[1].target_type == "pants"
        assert rules[2].target_type == "rings"

    def test_needs_old_types(self):
        with pytest.raises(ValueError):
            plan_for_merge([], [], "x")


class TestCli:
    def test_catalog_writes_jsonl(self, tmp_path, capsys):
        from repro.cli import main
        out = str(tmp_path / "items.jsonl")
        assert main(["catalog", "--items", "25", "--out", out]) == 0
        with open(out) as handle:
            rows = [json.loads(line) for line in handle]
        assert len(rows) == 25
        assert all("title" in row and "true_type" in row for row in rows)

    def test_rulegen_then_classify(self, tmp_path, capsys):
        from repro.cli import main
        rules_path = str(tmp_path / "rules.json")
        assert main(["rulegen", "--training", "2500", "--quota", "30",
                     "--out", rules_path]) == 0
        assert os.path.exists(rules_path)
        assert main(["classify", "--rules", rules_path, "--items", "300",
                     "--training", "1000"]) == 0
        output = capsys.readouterr().out
        metrics = json.loads(output[output.index("{"):])
        assert metrics["items"] == 300
        assert metrics["true_precision"] >= 0.85

    def test_synonyms_command(self, capsys):
        from repro.cli import main
        code = main(["synonyms", "--rule",
                     r"(motor | engine | \syn) oils? -> motor oil",
                     "--slot", "vehicle", "--corpus", "3000"])
        assert code == 0
        output = capsys.readouterr().out
        assert "synonyms found" in output

    def test_synonyms_bad_rule_errors(self, capsys):
        from repro.cli import main
        assert main(["synonyms", "--rule", r"(zzz | \syn) qqq -> nothing",
                     "--corpus", "500"]) == 1
