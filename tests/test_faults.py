"""Deterministic fault-injection tests for the resilient partitioned executor.

Every failure path — crash, hang/straggler, corrupt output, full-cluster
death — is driven by a scheduled :class:`FaultPlan`; no test sleeps, kills
processes, or touches the wall clock. Backoff is observed through a
:class:`VirtualSleeper` and jitter through a seeded RNG.
"""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.types import ProductItem
from repro.core import AttributeRule, SequenceRule, parse_rules
from repro.execution import (
    CorruptShardOutput,
    DegradedRunError,
    ExecutionStats,
    IndexedExecutor,
    NaiveExecutor,
    PartitionedExecutor,
    RetryPolicy,
    WorkerCrash,
    WorkerHang,
    validate_shard_output,
)
from repro.testing import ANY, FaultKind, FaultPlan, FaultSpec, VirtualSleeper


def item(title, item_id=None, **attributes):
    return ProductItem(item_id=item_id or title[:40], title=title, attributes=attributes)


RULES = parse_rules("""
    rings? -> rings
    (motor|engine) oils? -> motor oil
    denim.*jeans? -> jeans
""") + [
    SequenceRule(("area", "rug"), "area rugs"),
    AttributeRule("isbn", "books"),
]

ITEMS = [
    item("diamond ring gold"),
    item("castrol motor oil 5 quart"),
    item("relaxed denim jeans"),
    item("shaw area rug 5x7"),
    item("mystery novel", isbn="978"),
    item("unrelated gadget"),
    item("two gold rings boxed"),
    item("engine oil filter"),
]

BASELINE, _ = NaiveExecutor(RULES).run(ITEMS)


def executor(n_workers=3, plan=None, max_attempts=3, sleeper=None, **kwargs):
    return PartitionedExecutor(
        RULES,
        n_workers=n_workers,
        fault_plan=plan,
        retry_policy=RetryPolicy(
            max_attempts=max_attempts, base_delay=0.01, multiplier=2.0,
            max_delay=1.0, jitter=0.5,
        ),
        sleep=sleeper if sleeper is not None else VirtualSleeper(),
        **kwargs,
    )


class TestFaultPlan:
    def test_wildcards_match_everything(self):
        spec = FaultSpec(FaultKind.CRASH)
        assert spec.applies_to(0, 0, 0) and spec.applies_to(7, 3, 2)

    def test_pinned_coordinates(self):
        spec = FaultSpec(FaultKind.HANG, worker=1, shard=2, attempt=0)
        assert spec.applies_to(1, 2, 0)
        assert not spec.applies_to(1, 2, 1)
        assert not spec.applies_to(0, 2, 0)

    def test_first_matching_spec_wins(self):
        plan = FaultPlan().crash(worker=1).hang(worker=1)
        assert plan.fault_for(1, 0, 0).kind is FaultKind.CRASH

    def test_builders_chain(self):
        plan = FaultPlan().kill_worker(0).hang_worker(1).corrupt(worker=2)
        assert [s.kind for s in plan.specs] == [
            FaultKind.CRASH, FaultKind.HANG, FaultKind.CORRUPT,
        ]
        assert len(plan) == 3

    def test_random_plan_is_deterministic(self):
        a = FaultPlan.random_plan(seed=99, n_workers=6, rate=0.8)
        b = FaultPlan.random_plan(seed=99, n_workers=6, rate=0.8)
        assert a.specs == b.specs
        c = FaultPlan.random_plan(seed=100, n_workers=6, rate=0.8)
        assert a.specs != c.specs  # different seed, different schedule

    def test_random_plan_spares_workers(self):
        plan = FaultPlan.random_plan(seed=5, n_workers=4, rate=1.0, spare_workers=2)
        assert plan.specs  # rate=1.0 faults every non-spared slot
        assert all(spec.worker >= 2 for spec in plan.specs)

    def test_random_plan_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            FaultPlan.random_plan(seed=0, n_workers=2, rate=1.5)

    def test_describe_lists_specs(self):
        plan = FaultPlan().crash(worker=1).corrupt(detail="garbage")
        text = plan.describe()
        assert "crash" in text and "garbage" in text
        assert FaultPlan().describe() == "fault plan: (healthy)"

    def test_blocking_spec_to_exception(self):
        crash = FaultSpec(FaultKind.CRASH).to_exception(0, 1, 2)
        hang = FaultSpec(FaultKind.HANG).to_exception(0, 1, 2)
        assert isinstance(crash, WorkerCrash) and isinstance(hang, WorkerHang)
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.CORRUPT).to_exception(0, 0, 0)


class TestRetryPolicy:
    def test_backoff_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, jitter=0.0, max_delay=10.0)
        rng = random.Random(0)
        assert [policy.backoff_delay(a, rng) for a in range(4)] == [
            pytest.approx(0.1), pytest.approx(0.2), pytest.approx(0.4), pytest.approx(0.8),
        ]

    def test_backoff_is_capped(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, jitter=0.0, max_delay=2.5)
        assert policy.backoff_delay(5, random.Random(0)) == pytest.approx(2.5)

    def test_jitter_bounds_and_determinism(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=1.0, jitter=0.5)
        a = policy.backoff_delay(0, random.Random(42))
        b = policy.backoff_delay(0, random.Random(42))
        assert a == b  # same seed, same jitter
        assert 0.1 <= a <= 0.15

    def test_rejects_bad_parameters(self):
        for kwargs in (
            {"max_attempts": 0}, {"base_delay": -1}, {"multiplier": 0.5}, {"jitter": -0.1},
        ):
            with pytest.raises(ValueError):
                RetryPolicy(**kwargs)

    def test_immediate_policy_never_sleeps(self):
        policy = RetryPolicy.immediate(max_attempts=5)
        assert policy.backoff_delay(3, random.Random(0)) == 0.0


class TestShardOutputValidation:
    def _stats(self, items):
        stats = ExecutionStats()
        stats.items = items
        return stats

    def test_accepts_valid_output(self):
        fired = {"a": ["r1"], "b": ["r1", "r2"]}
        out = validate_shard_output(fired, self._stats(2), ["a", "b"], frozenset({"r1", "r2"}))
        assert out == fired

    @pytest.mark.parametrize(
        "fired, items",
        [
            ("garbage", ["a"]),                          # not a dict
            ({"ghost": ["r1"]}, ["a"]),                  # unknown item
            ({"a": []}, ["a"]),                          # empty hit list
            ({"a": ["bogus"]}, ["a"]),                   # unknown rule
            ({"a": ["r2", "r1"]}, ["a"]),                # unsorted
            ({"a": "r1"}, ["a"]),                        # not a list
        ],
    )
    def test_rejects_corrupt_fired_maps(self, fired, items):
        with pytest.raises(CorruptShardOutput):
            validate_shard_output(fired, self._stats(len(items)), items, frozenset({"r1", "r2"}))

    def test_rejects_mangled_stats(self):
        with pytest.raises(CorruptShardOutput):
            validate_shard_output({"a": ["r1"]}, "nope", ["a"], frozenset({"r1"}))
        with pytest.raises(CorruptShardOutput):
            validate_shard_output({"a": ["r1"]}, self._stats(7), ["a"], frozenset({"r1"}))

    def test_duplicate_item_ids_are_legitimate(self):
        # A vendor batch may repeat an item id; the shard still counts rows.
        out = validate_shard_output(
            {"a": ["r1"]}, self._stats(3), ["a", "a", "a"], frozenset({"r1"})
        )
        assert out == {"a": ["r1"]}


class TestSingleWorkerDeath:
    """Acceptance: killing any single worker still yields the complete map."""

    @pytest.mark.parametrize("worker", [0, 1, 2])
    @pytest.mark.parametrize("kind", ["kill", "hang"])
    def test_complete_despite_dead_worker(self, worker, kind):
        plan = FaultPlan()
        (plan.kill_worker if kind == "kill" else plan.hang_worker)(worker)
        result = executor(n_workers=3, plan=plan, max_attempts=3).run_detailed(ITEMS)
        assert result.complete
        assert result.fired == BASELINE
        # The dead worker's shard was re-dispatched elsewhere.
        report = result.reports[worker]
        assert report.ok and report.retries >= 1 and report.worker_id != worker

    def test_crash_then_recover_on_retry(self):
        plan = FaultPlan().crash(worker=1, attempt=0)  # transient: first attempt only
        result = executor(n_workers=3, plan=plan).run_detailed(ITEMS)
        assert result.complete and result.fired == BASELINE
        assert result.total_retries == 1
        assert [e.kind for e in result.fault_events] == ["crash"]

    def test_corrupt_worker_is_caught_and_retried(self):
        for detail in ("alien-item", "alien-rule", "unsorted", "garbage", "bad-stats"):
            plan = FaultPlan().corrupt(worker=2, attempt=0, detail=detail)
            result = executor(n_workers=3, plan=plan).run_detailed(ITEMS)
            assert result.complete, detail
            assert result.fired == BASELINE, detail
            assert any(e.kind == "corrupt" for e in result.fault_events), detail

    def test_triggered_faults_are_logged_on_the_plan(self):
        plan = FaultPlan().kill_worker(1)
        executor(n_workers=3, plan=plan).run_detailed(ITEMS)
        assert plan.triggered
        assert all(t.worker == 1 for t in plan.triggered)


class TestBackoff:
    def test_sleeps_are_virtual_and_grow(self):
        sleeper = VirtualSleeper()
        plan = FaultPlan().crash(shard=0, attempt=0).crash(shard=0, attempt=1)
        result = executor(
            n_workers=3, plan=plan, max_attempts=4, sleeper=sleeper
        ).run_detailed(ITEMS)
        assert result.complete
        assert len(sleeper.naps) == 2  # one backoff per failed round
        assert sleeper.naps[1] > sleeper.naps[0]  # exponential growth
        assert all(nap < 0.05 for nap in sleeper.naps)  # never a real-scale delay

    def test_jitter_is_seeded(self):
        def run(seed):
            sleeper = VirtualSleeper()
            plan = FaultPlan().crash(shard=1, attempt=0)
            executor(
                n_workers=3, plan=plan, sleeper=sleeper, retry_seed=seed
            ).run_detailed(ITEMS)
            return sleeper.naps

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_no_sleep_when_no_faults(self):
        sleeper = VirtualSleeper()
        result = executor(n_workers=3, sleeper=sleeper).run_detailed(ITEMS)
        assert result.complete and sleeper.naps == []

    def test_no_sleep_after_final_attempt(self):
        sleeper = VirtualSleeper()
        plan = FaultPlan().crash()  # everything always crashes
        executor(n_workers=2, plan=plan, max_attempts=2, sleeper=sleeper).run_detailed(ITEMS)
        assert len(sleeper.naps) == 1  # only between attempts 0 and 1


class TestDegradedMode:
    def test_total_failure_degrades_instead_of_raising(self):
        plan = FaultPlan().crash()
        result = executor(n_workers=3, plan=plan, max_attempts=2).run_detailed(ITEMS)
        assert result.degraded and not result.complete
        assert result.fired == {}
        assert sorted(result.skipped_item_ids) == sorted(i.item_id for i in ITEMS)
        assert result.skipped_shards == [0, 1, 2]
        assert all(r.status == "skipped" and not r.ok for r in result.reports)
        assert result.stats.skipped_items == len(ITEMS)

    def test_require_complete_raises_on_degraded(self):
        plan = FaultPlan().crash()
        result = executor(n_workers=2, plan=plan, max_attempts=2).run_detailed(ITEMS)
        with pytest.raises(DegradedRunError, match="degraded"):
            result.require_complete()

    def test_require_complete_passthrough_when_healthy(self):
        result = executor(n_workers=2).run_detailed(ITEMS)
        assert result.require_complete() is result

    def test_one_shard_lost_keeps_the_rest(self):
        # Shard 1 fails on every worker it rotates to; others stay healthy.
        plan = FaultPlan().crash(shard=1)
        result = executor(n_workers=3, plan=plan, max_attempts=3).run_detailed(ITEMS)
        assert result.degraded
        assert result.skipped_shards == [1]
        shard_1_ids = {i.item_id for k, i in enumerate(ITEMS) if k % 3 == 1}
        assert set(result.skipped_item_ids) == shard_1_ids
        expected = {k: v for k, v in BASELINE.items() if k not in shard_1_ids}
        assert result.fired == expected
        skip_events = [e for e in result.fault_events if e.action == "skip"]
        assert len(skip_events) == 1 and skip_events[0].shard_id == 1

    def test_run_keeps_three_tuple_and_reports(self):
        plan = FaultPlan().kill_worker(0)
        fired, stats, reports = executor(n_workers=3, plan=plan).run(ITEMS)
        assert fired == BASELINE
        assert stats.retries >= 1
        assert [r.shard_id for r in reports] == [0, 1, 2]

    def test_real_worker_exception_is_contained(self):
        ex = executor(n_workers=2, max_attempts=2)
        ex.rule_payloads.append({"kind": "mystery", "target_type": "t"})
        result = ex.run_detailed(ITEMS)  # every shard rebuild raises
        assert result.degraded and result.fired == {}
        assert all(e.kind == "crash" for e in result.fault_events)


class TestShardReportMerge:
    """Satellite: per-shard reports surface retry/skip accounting."""

    def test_healthy_reports(self):
        result = executor(n_workers=3).run_detailed(ITEMS)
        assert [r.shard_id for r in result.reports] == [0, 1, 2]
        assert all(r.status == "ok" and r.attempts == 1 and r.retries == 0
                   for r in result.reports)
        assert sum(r.items for r in result.reports) == len(ITEMS)
        assert sum(r.matches for r in result.reports) == result.stats.matches
        assert sum(r.rule_evaluations for r in result.reports) == (
            result.stats.rule_evaluations
        )

    def test_retry_counts_in_reports_and_stats(self):
        plan = FaultPlan().crash(shard=2, attempt=0).crash(shard=2, attempt=1)
        result = executor(n_workers=3, plan=plan, max_attempts=4).run_detailed(ITEMS)
        report = result.reports[2]
        assert report.retries == 2 and report.attempts == 3 and report.ok
        assert result.stats.retries == 2

    def test_worker_rotation_is_recorded(self):
        plan = FaultPlan().crash(shard=0, attempt=0)
        result = executor(n_workers=3, plan=plan).run_detailed(ITEMS)
        # shard 0, attempt 1 lands on worker (0 + 1) % 3 == 1
        assert result.reports[0].worker_id == 1

    def test_merged_stats_exclude_skipped_shards(self):
        plan = FaultPlan().crash(shard=0)
        result = executor(n_workers=2, plan=plan, max_attempts=2).run_detailed(ITEMS)
        ok_items = sum(r.items for r in result.reports if r.ok)
        assert result.stats.items == ok_items
        assert result.stats.skipped_item_ids == result.skipped_item_ids


# -- hypothesis: the degraded-mode contract over arbitrary fault plans ---------

fault_kinds = st.sampled_from(list(FaultKind))
coords = st.one_of(st.none(), st.integers(min_value=0, max_value=3))
specs = st.builds(
    FaultSpec,
    kind=fault_kinds,
    worker=coords,
    shard=coords,
    attempt=coords,
)


class TestFaultProperties:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_any_plan_with_a_spared_worker_completes(self, seed):
        """≥1 healthy worker + enough retries ⇒ byte-identical fired map."""
        plan = FaultPlan.random_plan(seed=seed, n_workers=4, rate=0.9,
                                     max_faulted_attempts=4, spare_workers=1)
        result = PartitionedExecutor(
            RULES, n_workers=4, fault_plan=plan,
            retry_policy=RetryPolicy.immediate(max_attempts=4),
            sleep=VirtualSleeper(),
        ).run_detailed(ITEMS)
        assert result.complete, plan.describe()
        assert result.fired == BASELINE

    @settings(max_examples=40, deadline=None)
    @given(plan_specs=st.lists(specs, max_size=6))
    def test_fired_map_is_baseline_minus_reported_skips(self, plan_specs):
        """Whatever the faults, fired == no-fault map minus explicit skips."""
        plan = FaultPlan(plan_specs)
        result = PartitionedExecutor(
            RULES, n_workers=4, fault_plan=plan,
            retry_policy=RetryPolicy.immediate(max_attempts=3),
            sleep=VirtualSleeper(),
        ).run_detailed(ITEMS)
        skipped = set(result.skipped_item_ids)
        expected = {k: v for k, v in BASELINE.items() if k not in skipped}
        assert result.fired == expected
        # Every input item is accounted for: merged or explicitly skipped.
        merged_shards = {r.shard_id for r in result.reports if r.ok}
        for index, thing in enumerate(ITEMS):
            if index % 4 in merged_shards:
                assert thing.item_id not in skipped
            else:
                assert thing.item_id in skipped
        assert result.degraded == bool(result.skipped_shards)


class TestChaosSeed:
    """CI chaos-job entry point: a randomized-but-logged fault plan seed.

    The workflow exports REPRO_CHAOS_SEED (and prints it in the job log),
    so any failure is replayable locally with the same seed.
    """

    def test_chaos_plan_from_environment_seed(self):
        seed = int(os.environ.get("REPRO_CHAOS_SEED", "0xC0FFEE"), 0)
        plan = FaultPlan.random_plan(seed=seed, n_workers=4, rate=0.5,
                                     max_faulted_attempts=3, spare_workers=1)
        print(f"chaos fault-plan seed={seed}: {plan.describe()}")
        result = PartitionedExecutor(
            RULES, n_workers=4, fault_plan=plan,
            retry_policy=RetryPolicy.immediate(max_attempts=4),
            sleep=VirtualSleeper(),
        ).run_detailed(ITEMS)
        assert result.complete, f"seed={seed}\n{plan.describe()}"
        assert result.fired == BASELINE


class TestSingleNodeDegradedMode:
    """Item-level on_error="skip" on the single-node executors."""

    def _poisoned_items(self):
        return ITEMS[:3] + [ProductItem(item_id="bad", title=None)] + ITEMS[3:]

    @pytest.mark.parametrize("executor_cls", [NaiveExecutor, IndexedExecutor])
    def test_bad_record_is_skipped_not_fatal(self, executor_cls):
        fired, stats = executor_cls(RULES, on_error="skip").run(self._poisoned_items())
        assert fired == BASELINE
        assert stats.skipped_items == 1
        assert stats.skipped_item_ids == ["bad"]
        assert stats.items == len(ITEMS) + 1  # every row is accounted for

    def test_bad_record_raises_by_default(self):
        with pytest.raises(AttributeError):
            NaiveExecutor(RULES).run(self._poisoned_items())

    def test_failing_rule_skips_item_under_degraded_mode(self):
        from repro.core.rule import Clause, PredicateRule

        bomb = PredicateRule(
            [Clause("explodes", lambda item: 1 / 0)], "t", rule_id="pred-bomb"
        )
        fired, stats = NaiveExecutor(RULES + [bomb], on_error="skip").run(ITEMS)
        assert fired == {}  # the bomb fires on every item, so all are skipped
        assert stats.skipped_items == len(ITEMS)
        with pytest.raises(ZeroDivisionError):
            NaiveExecutor(RULES + [bomb]).run(ITEMS)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            NaiveExecutor(RULES, on_error="ignore")

    def test_stats_merge_carries_resilience_ledger(self):
        a, b = ExecutionStats(), ExecutionStats()
        a.retries, a.skipped_items, a.skipped_item_ids = 2, 1, ["x"]
        b.retries, b.skipped_items, b.skipped_item_ids = 1, 2, ["y", "z"]
        a.merge(b)
        assert (a.retries, a.skipped_items, a.skipped_item_ids) == (3, 3, ["x", "y", "z"])
