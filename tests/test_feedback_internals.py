"""Focused tests for feedback-loop internals: training accumulation,
retrain triggering, and report bookkeeping."""

import pytest

from repro.analyst import SimulatedAnalyst
from repro.catalog import CatalogGenerator, build_seed_taxonomy
from repro.catalog.generator import LabeledTitle
from repro.chimera import Chimera, FeedbackLoop
from repro.crowd import CrowdBudget, PrecisionEstimator, VerificationTask, WorkerPool


@pytest.fixture()
def parts(taxonomy, generator, clock):
    chimera = Chimera.build(seed=3)
    chimera.add_training(generator.generate_labeled(1200))
    chimera.retrain(min_examples_per_type=4)
    analyst = SimulatedAnalyst(taxonomy, clock=clock, seed=4)
    pool = WorkerPool(seed=5)
    task = VerificationTask(pool, budget=CrowdBudget(10**6), seed=6)
    estimator = PrecisionEstimator(task, sample_size=50, seed=7)
    return chimera, analyst, estimator


class TestTrainingAccumulation:
    def test_pending_counter(self, parts):
        chimera, _, _ = parts
        before = chimera.pending_training
        chimera.add_training([LabeledTitle("gold ring", "rings")] * 10)
        assert chimera.pending_training == before + 10
        chimera.retrain(min_examples_per_type=1)
        assert chimera.pending_training == 0

    def test_retrain_uses_accumulated_data(self, parts, generator):
        chimera, _, _ = parts
        # A brand-new pseudo-type only exists in accumulated training data.
        chimera.add_training(
            [LabeledTitle(f"zzqx gadget {i}", "zz-widgets") for i in range(20)]
        )
        chimera.retrain(min_examples_per_type=5)
        labels = chimera.learning_stage.ensemble.known_labels()
        assert "zz-widgets" in labels

    def test_retrain_threshold_triggers_in_loop(self, parts, generator):
        chimera, analyst, estimator = parts
        loop = FeedbackLoop(chimera, estimator, analyst, precision_floor=0.5,
                            manual_label_budget_per_batch=100, retrain_every=80)
        # Force plenty of declines by suppressing learning for a department.
        chimera.voting.confidence_threshold = 0.95
        loop.process_batch(generator.generate_items(150), "b1")
        # Manual labels flow in; once past retrain_every the buffer clears.
        loop.process_batch(generator.generate_items(150), "b2")
        assert chimera.pending_training < 80


class TestReports:
    def test_report_fields_consistent(self, parts, generator):
        chimera, analyst, estimator = parts
        loop = FeedbackLoop(chimera, estimator, analyst, precision_floor=0.9)
        report = loop.process_batch(generator.generate_items(120), "batch-x")
        assert report.batch_id == "batch-x"
        assert 1 <= report.attempts <= 3
        assert 0.0 <= report.coverage <= 1.0
        assert report in loop.reports

    def test_empty_batch_trivially_accepted(self, parts):
        chimera, analyst, estimator = parts
        loop = FeedbackLoop(chimera, estimator, analyst)
        report = loop.process_batch([], "empty")
        assert report.accepted
        assert report.coverage == 0.0
