"""Golden regression corpus: frozen catalog + ruleset + fired map.

The three snapshots in ``tests/golden/`` are committed artifacts
(regenerated only deliberately, via ``tests/golden/make_golden.py``).
Every executor must reproduce the stored fired map **byte-for-byte** —
any diff here means matching semantics drifted, which in an industrial
rule system is a production incident, not a refactor detail.
"""

import json
import pathlib

import pytest

from repro.catalog.types import ProductItem
from repro.core.serialize import rules_from_dicts, rules_to_dicts
from repro.execution import (
    IndexedExecutor,
    NaiveExecutor,
    PartitionedExecutor,
    RetryPolicy,
)
from repro.testing import FaultPlan, VirtualSleeper

GOLDEN = pathlib.Path(__file__).parent / "golden"


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


@pytest.fixture(scope="module")
def golden_items():
    records = json.loads((GOLDEN / "catalog.json").read_text())
    return [
        ProductItem(
            item_id=r["item_id"],
            title=r["title"],
            attributes=r["attributes"],
            true_type=r["true_type"],
            vendor=r["vendor"],
            description=r["description"],
        )
        for r in records
    ]


@pytest.fixture(scope="module")
def golden_rules():
    return rules_from_dicts(json.loads((GOLDEN / "ruleset.json").read_text()))


@pytest.fixture(scope="module")
def golden_fired_text():
    return (GOLDEN / "fired.json").read_text()


class TestGoldenSnapshotIntegrity:
    def test_catalog_is_canonically_formatted(self):
        text = (GOLDEN / "catalog.json").read_text()
        assert text == canonical(json.loads(text))

    def test_ruleset_round_trips_to_identical_bytes(self, golden_rules):
        stored = (GOLDEN / "ruleset.json").read_text()
        assert canonical(rules_to_dicts(golden_rules)) == stored

    def test_corpus_shape(self, golden_items, golden_rules, golden_fired_text):
        assert len(golden_items) == 120
        assert len(golden_rules) == 61
        kinds = {type(rule).__name__ for rule in golden_rules}
        assert kinds == {
            "WhitelistRule", "SequenceRule", "AttributeRule", "ValueConstraintRule",
        }
        fired = json.loads(golden_fired_text)
        item_ids = {item.item_id for item in golden_items}
        assert set(fired) <= item_ids
        assert len(fired) >= 100  # the corpus is not trivially empty


class TestExecutorsReproduceGoldenFiredMap:
    def test_naive(self, golden_items, golden_rules, golden_fired_text):
        fired, _ = NaiveExecutor(golden_rules).run(golden_items)
        assert canonical(fired) == golden_fired_text

    def test_indexed(self, golden_items, golden_rules, golden_fired_text):
        fired, _ = IndexedExecutor(golden_rules).run(golden_items)
        assert canonical(fired) == golden_fired_text

    @pytest.mark.parametrize("n_workers", [1, 3, 5])
    def test_partitioned(self, golden_items, golden_rules, golden_fired_text,
                         n_workers):
        fired, _, _ = PartitionedExecutor(
            golden_rules, n_workers=n_workers
        ).run(golden_items)
        assert canonical(fired) == golden_fired_text

    def test_partitioned_with_a_dead_worker(self, golden_items, golden_rules,
                                            golden_fired_text):
        """Fault tolerance must not change a single fired byte."""
        result = PartitionedExecutor(
            golden_rules,
            n_workers=4,
            fault_plan=FaultPlan().kill_worker(2),
            retry_policy=RetryPolicy.immediate(max_attempts=3),
            sleep=VirtualSleeper(),
        ).run_detailed(golden_items)
        assert result.complete
        assert canonical(result.fired) == golden_fired_text


class TestCompiledPathReproducesGoldenFiredMap:
    """The compiled layer (DESIGN.md §11) against the same frozen corpus:
    every compiled executor variant — batch, parallel, faulted, pooled,
    and incrementally churned — must reproduce the stored bytes."""

    def test_compiled_indexed(self, golden_items, golden_rules,
                              golden_fired_text):
        fired, stats = IndexedExecutor(
            golden_rules, compiled=True
        ).run(golden_items)
        assert canonical(fired) == golden_fired_text
        assert stats.compile_time > 0.0

    def test_compiled_matches_interpreted_evaluation_count(
            self, golden_items, golden_rules):
        _, interpreted = IndexedExecutor(golden_rules).run(golden_items)
        _, compiled = IndexedExecutor(
            golden_rules, compiled=True
        ).run(golden_items)
        assert compiled.rule_evaluations == interpreted.rule_evaluations

    @pytest.mark.parametrize("n_workers", [1, 3, 5])
    def test_compiled_partitioned(self, golden_items, golden_rules,
                                  golden_fired_text, n_workers):
        fired, _, _ = PartitionedExecutor(
            golden_rules, n_workers=n_workers, compiled=True
        ).run(golden_items)
        assert canonical(fired) == golden_fired_text

    def test_compiled_partitioned_with_a_dead_worker(
            self, golden_items, golden_rules, golden_fired_text):
        result = PartitionedExecutor(
            golden_rules,
            n_workers=4,
            compiled=True,
            fault_plan=FaultPlan().kill_worker(2),
            retry_policy=RetryPolicy.immediate(max_attempts=3),
            sleep=VirtualSleeper(),
        ).run_detailed(golden_items)
        assert result.complete
        assert canonical(result.fired) == golden_fired_text

    def test_compiled_process_pool(self, golden_items, golden_rules,
                                   golden_fired_text):
        fired, _, _ = PartitionedExecutor(
            golden_rules, n_workers=2, compiled=True, use_processes=True
        ).run(golden_items)
        assert canonical(fired) == golden_fired_text

    def test_incremental_churn_cycle_returns_to_golden(
            self, golden_items, golden_rules, golden_fired_text):
        """Remove five rules, add equivalent copies back: once the ruleset
        is semantically restored, the compiled incremental view must be
        byte-identical to the frozen map again."""
        from repro.execution import IncrementalExecutor

        rules = rules_from_dicts(rules_to_dicts(golden_rules))
        executor = IncrementalExecutor(rules=rules, items=golden_items,
                                       compiled=True)
        churned = rules[:5]
        executor.remove_rules([rule.rule_id for rule in churned])
        readded = rules_from_dicts(rules_to_dicts(churned))
        executor.add_rules(readded)
        assert canonical(executor.fired_map()) == golden_fired_text


class TestGoldenScenarios:
    """Frozen scenario health reports (tests/golden/scenarios/).

    A scenario report is a pure function of (spec, seed); these snapshots
    pin the whole event loop — stream draws, drift, churn, classification,
    fired-map digests, exit evaluation — byte-for-byte. Regenerate only
    deliberately via ``tests/golden/scenarios/make_scenarios.py``.
    """

    SCENARIOS = ("golden-quiet", "golden-eventful")

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_report_matches_snapshot_byte_for_byte(self, name):
        from repro.scenario import load_scenario, run_scenario

        spec_path = GOLDEN / "scenarios" / f"{name}.yaml"
        frozen = (GOLDEN / "scenarios" / f"{name}.report.json").read_text()
        report = run_scenario(load_scenario(str(spec_path)))
        assert report.to_json() == frozen

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_snapshot_passed_its_exit_conditions(self, name):
        frozen = json.loads(
            (GOLDEN / "scenarios" / f"{name}.report.json").read_text()
        )
        assert frozen["passed"] is True
