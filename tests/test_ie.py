"""Tests for the information-extraction substrate."""

import pytest

from repro.catalog.types import ProductItem
from repro.ie import (
    DictionaryExtractor,
    IEPipeline,
    NormalizationRules,
    PerceptronTagger,
    color_extractor,
    size_extractor,
    volume_extractor,
    weight_extractor,
)


class TestRegexExtractors:
    def test_weight(self):
        found = weight_extractor().extract("ships at 12.5 lbs boxed")
        assert [e.value for e in found] == ["12.5 lbs"]

    def test_weight_units(self):
        for text, expected in [("2 kg pack", "2 kg"), ("40 oz jar", "40 oz")]:
            assert weight_extractor().extract(text)[0].value == expected

    def test_volume(self):
        assert volume_extractor().extract("motor oil 5 quart jug")[0].value == "5 quart"

    def test_size(self):
        values = [e.value for e in size_extractor().extract("jeans 38x30 size 9")]
        assert "38x30" in values

    def test_color_vocabulary(self):
        found = color_extractor().extract("navy blue tote")
        assert found[0].value == "navy"

    def test_no_match(self):
        assert weight_extractor().extract("no numbers here") == []

    def test_invalid_pattern_rejected(self):
        from repro.ie.extractors import RegexExtractor
        with pytest.raises(ValueError):
            RegexExtractor("x", "(unclosed")


class TestDictionaryExtractor:
    BRANDS = ["castrol", "pennzoil", "hewlett packard", "lg"]

    def test_exact_match(self):
        extractor = DictionaryExtractor("brand", self.BRANDS)
        found = extractor.extract("Castrol GTX motor oil")
        assert found[0].value == "castrol"

    def test_multiword_entry(self):
        extractor = DictionaryExtractor("brand", self.BRANDS)
        found = extractor.extract("hewlett packard laserjet")
        assert found[0].value == "hewlett packard"

    def test_typo_tolerance(self):
        extractor = DictionaryExtractor("brand", self.BRANDS, max_edits=1)
        found = extractor.extract("castrl motor oil")
        assert found and found[0].value == "castrol"

    def test_short_entries_not_fuzzy(self):
        extractor = DictionaryExtractor("brand", self.BRANDS, max_edits=1)
        # "lg" must not fuzzily match random 1-2 char tokens.
        assert not extractor.extract("a la carte")

    def test_context_markers(self):
        extractor = DictionaryExtractor(
            "brand", self.BRANDS, context_markers=("brand", "by"))
        assert extractor.extract("brand: castrol quality oil")
        assert not extractor.extract("castrol quality oil")

    def test_empty_dictionary_rejected(self):
        with pytest.raises(ValueError):
            DictionaryExtractor("brand", [])


class TestNormalization:
    def test_variants_collapse(self):
        rules = NormalizationRules({
            "IBM": "IBM Corporation",
            "IBM Inc.": "IBM Corporation",
            "the Big Blue": "IBM Corporation",
        })
        assert rules.normalize_value("ibm inc") == "IBM Corporation"
        assert rules.normalize_value("the big blue") == "IBM Corporation"
        assert rules.normalize_value("unrelated") == "unrelated"

    def test_conflicting_mapping_rejected(self):
        rules = NormalizationRules({"x": "One"})
        with pytest.raises(ValueError):
            rules.add("x", "Two")

    def test_apply_rewrites_extractions(self):
        from repro.ie.extractors import Extraction
        rules = NormalizationRules({"ibm": "IBM Corporation"})
        normalized = rules.apply([Extraction("brand", "ibm", 0, 1, "dict:brand")])
        assert normalized[0].value == "IBM Corporation"
        assert normalized[0].extractor.endswith("+norm")


class TestPipeline:
    def test_evaluation_against_catalog(self, generator):
        brands = set()
        for product_type in generator.taxonomy:
            brands.update(product_type.brands)
        pipeline = IEPipeline([
            DictionaryExtractor("brand", brands, context_markers=("brand", "by")),
            weight_extractor(),
            volume_extractor(),
        ])
        report = pipeline.evaluate(generator.generate_items(300))
        brand_precision, brand_recall, support = report.row("brand")
        assert brand_precision > 0.9
        assert brand_recall > 0.9
        assert support > 10

    def test_extract_attributes_dedupes(self):
        pipeline = IEPipeline([weight_extractor()])
        item = ProductItem(item_id="1", title="2 lbs and 3 lbs")
        assert pipeline.extract_attributes(item) == {"weight": "2 lbs"}

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            IEPipeline([])


class TestPerceptronTagger:
    @staticmethod
    def _training():
        # Brand always follows the marker token "brand"; negatives include
        # oil/brand tokens in varied contexts so weights generalize.
        sentences = [["brand", brand, "oil"] for brand in
                     ("castrol", "pennzoil", "mobil", "valvoline")] * 3
        labels = [[False, True, False]] * len(sentences)
        negatives = [
            ["pure", "oil", "jug"], ["fresh", "oil", "pack"],
            ["quality", "oil", "deal"], ["new", "brand", "today"],
            ["top", "brand", "value"],
        ] * 3
        sentences += negatives
        labels += [[False] * 3] * len(negatives)
        return sentences, labels

    def test_learns_positional_pattern(self):
        sentences, labels = self._training()
        tagger = PerceptronTagger(epochs=10).fit(sentences, labels)
        assert tagger.tag(["brand", "quaker", "oil"]) == [False, True, False]

    def test_extract_spans(self):
        sentences, labels = self._training()
        tagger = PerceptronTagger(epochs=10).fit(sentences, labels)
        assert tagger.extract_spans("brand castrol oil") == ["castrol"]

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            PerceptronTagger().tag(["x"])

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            PerceptronTagger().fit([["a"]], [])
