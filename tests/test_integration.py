"""Cross-module integration tests: the paper's end-to-end workflows."""

import pytest

from repro.analyst import SimulatedAnalyst
from repro.catalog import BatchStream, CatalogGenerator, DriftInjector
from repro.chimera import Chimera, FeedbackLoop, IncidentManager, PrecisionMonitor
from repro.core import RuleRegistry, RuleSet, RuleStatus, parse_rules
from repro.crowd import CrowdBudget, PrecisionEstimator, VerificationTask, WorkerPool
from repro.evaluation import ModuleLevelEvaluator, ruleset_quality
from repro.execution import IndexedExecutor, NaiveExecutor
from repro.rulegen import RuleGenerator
from repro.synonym import DiscoverySession, SynonymTool
from repro.utils.clock import SimClock


class TestOngoingClassification:
    """Section 3.3's loop: classify, evaluate, patch, improve over time."""

    def test_precision_floor_held_over_stream(self, taxonomy):
        clock = SimClock()
        generator = CatalogGenerator(taxonomy, seed=101)
        chimera = Chimera.build(seed=101)
        chimera.add_training(generator.generate_labeled(2000))
        chimera.retrain(min_examples_per_type=5)
        analyst = SimulatedAnalyst(taxonomy, clock=clock, seed=102)
        pool = WorkerPool(seed=103)
        task = VerificationTask(pool, budget=CrowdBudget(10**6), seed=104)
        estimator = PrecisionEstimator(task, sample_size=60, seed=105)
        loop = FeedbackLoop(chimera, estimator, analyst, precision_floor=0.92)
        stream = BatchStream(generator, clock=clock, seed=106)

        reports = [loop.process_batch(batch.items, batch.batch_id)
                   for batch in stream.take(5)]
        accepted = [r for r in reports if r.accepted]
        assert len(accepted) >= 4
        assert all(r.true_precision >= 0.85 for r in accepted)

    def test_registry_manages_generated_rules(self, taxonomy):
        generator = CatalogGenerator(taxonomy, seed=111)
        training = generator.generate_labeled(2500)
        result = RuleGenerator(min_support=0.05, q=20).generate(training)
        registry = RuleRegistry()
        registry.submit_all(result.high_confidence, actor="rulegen")
        test_items = generator.generate_items(800)
        for rule in result.high_confidence:
            quality = ruleset_quality([rule], test_items)
            registry.validate(rule.rule_id, quality.precision)
            if quality.precision >= 0.92:
                registry.deploy(rule.rule_id)
        deployed = registry.deployed_ruleset()
        assert len(deployed) > 0
        quality = ruleset_quality(list(deployed), test_items)
        assert quality.precision >= 0.92


class TestSynonymToRule:
    """Section 5.1 tool output feeds a Chimera rule module."""

    def test_expanded_rule_raises_recall(self, taxonomy):
        generator = CatalogGenerator(taxonomy, seed=121)
        corpus_items = generator.generate_items(6000)
        corpus = [item.title for item in corpus_items]
        tool = SynonymTool(r"(motor | engine | \syn) oils? -> motor oil", corpus)
        analyst = SimulatedAnalyst(taxonomy, seed=122, synonym_judgement_accuracy=1.0)
        report = DiscoverySession(tool, analyst, slot="vehicle", patience=2).run()
        assert report.succeeded

        seed_rules = RuleSet(parse_rules("(motor|engine) oils? -> motor oil"))
        expanded_rules = RuleSet(parse_rules(
            f"{report.expanded_pattern} -> motor oil"
        ))
        test_items = generator.generate_items(2000)
        seed_quality = ruleset_quality(list(seed_rules), test_items)
        expanded_quality = ruleset_quality(list(expanded_rules), test_items)
        assert expanded_quality.recall > seed_quality.recall
        assert expanded_quality.precision >= 0.9


class TestIncidentWorkflow:
    """Section 2.2: drift -> detect -> scale down -> repair -> restore."""

    def test_full_playbook(self, mutable_taxonomy):
        clock = SimClock()
        generator = CatalogGenerator(mutable_taxonomy, seed=131)
        chimera = Chimera.build(seed=131)
        chimera.add_training(generator.generate_labeled(2000))
        chimera.retrain(min_examples_per_type=5)
        analyst = SimulatedAnalyst(mutable_taxonomy, clock=clock, seed=132,
                                   verification_accuracy=1.0, labeling_accuracy=1.0)
        monitor = PrecisionMonitor(floor=0.92, window=4)
        incidents = IncidentManager(chimera)

        baseline = chimera.classify_batch(generator.generate_items(300))
        assert baseline.true_precision() >= 0.92

        drift = DriftInjector(generator, seed=133)
        drift.shift_head_vocabulary("jeans", ["dungaree", "boys short"])
        drift.replace_slot("jeans", "fabric", ["serge", "twill"])
        drift.shift_distribution({"jeans": 20.0})
        degraded = chimera.classify_batch(generator.generate_items(300))
        assert degraded.true_precision() < baseline.true_precision()

        incident = incidents.open_incident(["jeans", "shorts"], at=clock.now)
        incidents.scale_down(incident)
        errors = [(item, label)
                  for item, label in degraded.classified_pairs
                  if item.true_type != label][:30]
        incidents.repair(incident, analyst, errors)
        incidents.restore(incident)

        recovered = chimera.classify_batch(generator.generate_items(300))
        assert recovered.true_precision() > degraded.true_precision()


class TestExecutionAgreesAtScale:
    def test_generated_rules_indexed_equivalence(self, labeled_training, corpus_items):
        result = RuleGenerator(min_support=0.05, q=30).generate(labeled_training)
        rules = result.rules
        items = corpus_items[:300]
        naive_fired, naive_stats = NaiveExecutor(rules).run(items)
        indexed_fired, indexed_stats = IndexedExecutor(rules).run(items)
        assert {k: sorted(v) for k, v in naive_fired.items()} == indexed_fired
        assert indexed_stats.rule_evaluations * 5 < naive_stats.rule_evaluations


class TestModuleEvaluationPipeline:
    def test_generated_module_clears_floor(self, taxonomy, labeled_training):
        generator = CatalogGenerator(taxonomy, seed=141)
        result = RuleGenerator(min_support=0.05, q=30).generate(labeled_training)
        module = RuleSet(result.high_confidence, name="rulegen-high")
        pool = WorkerPool(size=40, accuracy_range=(0.92, 0.99), seed=142)
        task = VerificationTask(pool, budget=CrowdBudget(10**6), seed=143)
        estimate = ModuleLevelEvaluator(task, sample_size=120, seed=144).evaluate(
            module, generator.generate_items(1500)
        )
        assert estimate is not None
        assert estimate.precision >= 0.9
