"""Tests for the KB-construction and tagging/event substrates."""

import pytest

from repro.kb import CurationLog, CurationRule, KbBuilder, KnowledgeBase
from repro.tagging import (
    EntityLinker,
    EventMonitor,
    EventSpec,
    TweetGenerator,
)


class TestKnowledgeBase:
    def test_edges_and_queries(self):
        kb = KnowledgeBase()
        kb.add_edge("root", "electronics")
        kb.add_edge("electronics", "laptops")
        assert kb.children("electronics") == ["laptops"]
        assert kb.parents("laptops") == ["electronics"]

    def test_cycle_rejected(self):
        kb = KnowledgeBase()
        kb.add_edge("a", "b")
        with pytest.raises(ValueError):
            kb.add_edge("b", "a")

    def test_self_edge_rejected(self):
        with pytest.raises(ValueError):
            KnowledgeBase().add_edge("a", "a")

    def test_brand_tables(self):
        kb = KnowledgeBase()
        kb.set_brand_types("Apple", ["laptops", "phones"])
        assert kb.brand_types("apple") == {"laptops", "phones"}
        kb.remove_brand_type("apple", "phones")
        assert kb.brand_types("apple") == {"laptops"}
        kb.remove_brand_type("apple", "laptops")
        assert not kb.has_brand("apple")

    def test_remove_missing_edge(self):
        with pytest.raises(KeyError):
            KnowledgeBase().remove_edge("a", "b")

    def test_diff(self):
        a, b = KnowledgeBase(), KnowledgeBase()
        a.add_edge("r", "x")
        b.add_edge("r", "y")
        diff = a.diff(b)
        assert diff["edges_only_here"] == 1
        assert diff["edges_only_there"] == 1


class TestKbBuilder:
    def test_same_day_identical(self, taxonomy):
        builder = KbBuilder(taxonomy, seed=1)
        assert builder.build(3).diff(builder.build(3)) == {
            "edges_only_here": 0, "edges_only_there": 0, "brand_type_diffs": 0}

    def test_different_days_differ(self, taxonomy):
        builder = KbBuilder(taxonomy, seed=1)
        diff = builder.build(1).diff(builder.build(2))
        assert diff["edges_only_here"] + diff["edges_only_there"] > 0

    def test_systematic_errors_recur(self, taxonomy):
        builder = KbBuilder(taxonomy, seed=1, systematic_noise_edges=2)
        for day in range(4):
            kb = builder.build(day)
            for wrong_department, victim in builder.systematic_edges:
                assert kb.has_edge(wrong_department, victim)

    def test_contains_taxonomy(self, taxonomy):
        kb = KbBuilder(taxonomy, seed=1).build(0)
        assert kb.has_edge("jewelry", "rings")
        assert "laptop computers" in kb.brand_types("apple")


class TestCuration:
    def test_rule_applies_and_reports_noop(self):
        kb = KnowledgeBase()
        kb.add_edge("garden", "area rugs")
        rule = CurationRule("remove_edge", "garden", "area rugs")
        assert rule.apply(kb) is True
        assert rule.apply(kb) is False  # already gone

    def test_unknown_action(self):
        with pytest.raises(ValueError):
            CurationRule("explode", "a", "b")

    def test_replay_fixes_systematic_errors(self, taxonomy):
        builder = KbBuilder(taxonomy, seed=2, systematic_noise_edges=2)
        kb0 = builder.build(0)
        log = CurationLog()
        for wrong_department, victim in builder.systematic_edges:
            log.record(CurationRule("remove_edge", wrong_department, victim), kb0)
        kb1 = builder.build(1)
        applied = log.replay(kb1)
        assert applied == len(builder.systematic_edges)
        for wrong_department, victim in builder.systematic_edges:
            assert not kb1.has_edge(wrong_department, victim)

    def test_stale_rules_detected(self):
        log = CurationLog()
        log.record(CurationRule("remove_edge", "never", "there"))
        for _ in range(3):
            log.replay(KnowledgeBase())
        assert len(log.stale_rules(min_replays=3)) == 1


class TestEntityLinker:
    @pytest.fixture()
    def linker(self, taxonomy):
        kb = KbBuilder(taxonomy, seed=0, noise_edges_per_build=0,
                       noise_brands_per_build=0, systematic_noise_edges=0).build(0)
        return EntityLinker(kb, blacklist=["apple"])

    def test_longest_mention_wins(self, linker):
        mentions = linker.link("new laptop computers on sale")
        entities = [m.entity for m in mentions]
        assert "laptop computers" in entities

    def test_blacklist_drops(self, linker):
        mentions = linker.link("apple pie recipe")
        assert all(m.entity != "apple" for m in mentions)

    def test_sentence_straddlers_dropped(self, taxonomy):
        kb = KbBuilder(taxonomy, seed=0).build(0)
        linker = EntityLinker(kb, extra_entities=["great samsung"])
        mentions = linker.link("this is great. samsung makes phones")
        assert all(m.entity != "great samsung" for m in mentions)

    def test_editorial_controls(self, taxonomy):
        kb = KbBuilder(taxonomy, seed=0).build(0)
        linker = EntityLinker(kb, editorial_drops=["sony"])
        assert all(m.entity != "sony" for m in linker.link("sony headphones"))


class TestEventMonitoring:
    EVENTS = {
        "superbowl": ("touchdown", "quarterback", "halftime"),
        "oscars": ("redcarpet", "bestpicture", "acceptance"),
    }

    def test_generator_ground_truth(self):
        gen = TweetGenerator(self.EVENTS, seed=0)
        tweets = gen.stream(200, event_fraction=0.5)
        tagged = [t for t in tweets if t.true_event]
        assert 60 <= len(tagged) <= 140

    def test_conservative_mode_raises_precision(self):
        gen = TweetGenerator(self.EVENTS, leakage=0.3, seed=1)
        tweets = gen.stream(600)
        monitor = EventMonitor([
            EventSpec("superbowl", set(self.EVENTS["superbowl"])),
            EventSpec("oscars", set(self.EVENTS["oscars"])),
        ])
        before = {r.event: r for r in monitor.evaluate(tweets)}
        monitor.make_conservative("superbowl", 2)
        monitor.make_conservative("oscars", 2)
        after = {r.event: r for r in monitor.evaluate(tweets)}
        for event in self.EVENTS:
            assert after[event].precision >= before[event].precision
            assert after[event].recall <= before[event].recall

    def test_cannot_lower_threshold(self):
        monitor = EventMonitor([EventSpec("e", {"a", "b"}, min_keyword_matches=2)])
        with pytest.raises(ValueError):
            monitor.make_conservative("e", 1)

    def test_blacklist_term(self):
        monitor = EventMonitor([EventSpec("e", {"touchdown", "halftime"})])
        from repro.tagging import Tweet
        tweet = Tweet("t1", "touchdown celebration spam", None)
        assert monitor.assign(tweet) == "e"
        monitor.add_blacklist_term("e", "spam")
        assert monitor.assign(tweet) is None

    def test_unknown_event(self):
        monitor = EventMonitor([EventSpec("e", {"a", "b"})])
        with pytest.raises(KeyError):
            monitor.make_conservative("nope", 2)
