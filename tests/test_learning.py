"""Tests for the learning substrate."""

import numpy as np
import pytest

from repro.learning import (
    KNearestNeighbors,
    LabelEncoder,
    LinearSvmClassifier,
    LogisticRegressionClassifier,
    MultinomialNaiveBayes,
    TfidfVectorizer,
    VotingEnsemble,
)

CLASSIFIERS = [
    MultinomialNaiveBayes,
    KNearestNeighbors,
    LinearSvmClassifier,
    LogisticRegressionClassifier,
]


@pytest.fixture(scope="module")
def small_training():
    titles = [
        "diamond accent ring white gold", "eternity ring sterling silver",
        "wedding band ring rose gold", "promise ring titanium",
        "denim carpenter jeans relaxed", "skinny stretch denim jeans",
        "bootcut indigo jeans men", "straight leg jeans women",
        "shaw area rug 5x7", "braided area rug ivory",
        "oriental rug contemporary", "tufted floral area rug",
    ]
    labels = ["rings"] * 4 + ["jeans"] * 4 + ["area rugs"] * 4
    return titles, labels


class TestLabelEncoder:
    def test_round_trip(self):
        enc = LabelEncoder().fit(["a", "b", "a"])
        assert enc.classes == ["a", "b"]
        assert enc.decode(int(enc.encode(["b"])[0])) == "b"

    def test_unseen_label(self):
        enc = LabelEncoder().fit(["a"])
        with pytest.raises(ValueError):
            enc.encode(["zzz"])


class TestTfidfVectorizer:
    def test_shapes(self, small_training):
        titles, _ = small_training
        matrix = TfidfVectorizer().fit_transform(titles)
        assert matrix.shape[0] == len(titles)
        assert matrix.shape[1] == TfidfVectorizer().fit(titles).n_features

    def test_rows_unit_norm(self, small_training):
        titles, _ = small_training
        matrix = TfidfVectorizer().fit_transform(titles)
        norms = np.sqrt(np.asarray(matrix.multiply(matrix).sum(axis=1))).ravel()
        assert np.allclose(norms[norms > 0], 1.0)

    def test_unseen_tokens_ignored(self, small_training):
        titles, _ = small_training
        vec = TfidfVectorizer().fit(titles)
        row = vec.transform(["completely unknown words here"])
        assert row.nnz == 0

    def test_min_df_filters(self, small_training):
        titles, _ = small_training
        full = TfidfVectorizer(min_df=1).fit(titles).n_features
        filtered = TfidfVectorizer(min_df=2).fit(titles).n_features
        assert filtered < full

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            TfidfVectorizer().fit([])

    def test_transform_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            TfidfVectorizer().transform(["x"])


@pytest.mark.parametrize("classifier_cls", CLASSIFIERS, ids=lambda c: c.__name__)
class TestClassifiers:
    def test_learns_separable_data(self, classifier_cls, small_training):
        titles, labels = small_training
        clf = classifier_cls().fit(titles, labels)
        predictions = clf.predict_batch(titles)
        accuracy = sum(
            1 for pred, label in zip(predictions, labels) if pred[0].label == label
        ) / len(labels)
        assert accuracy >= 0.9

    def test_generalizes(self, classifier_cls, small_training):
        titles, labels = small_training
        clf = classifier_cls().fit(titles, labels)
        assert clf.predict("sapphire ring gold")[0].label == "rings"
        assert clf.predict("blue denim jeans")[0].label == "jeans"

    def test_weights_normalized(self, classifier_cls, small_training):
        titles, labels = small_training
        clf = classifier_cls().fit(titles, labels)
        predictions = clf.predict("ring")
        assert all(0.0 <= p.weight <= 1.0 for p in predictions)
        assert abs(sum(p.weight for p in predictions) - 1.0) < 1e-6

    def test_predict_before_fit_rejected(self, classifier_cls):
        with pytest.raises(RuntimeError):
            classifier_cls().predict("x")

    def test_misaligned_input_rejected(self, classifier_cls):
        with pytest.raises(ValueError):
            classifier_cls().fit(["a"], ["x", "y"])

    def test_empty_training_rejected(self, classifier_cls):
        with pytest.raises(ValueError):
            classifier_cls().fit([], [])


class TestVotingEnsemble:
    def test_combines_members(self, small_training):
        titles, labels = small_training
        ensemble = VotingEnsemble(
            [MultinomialNaiveBayes(), KNearestNeighbors(k=3)]
        ).fit(titles, labels)
        assert ensemble.predict("wedding band ring")[0].label == "rings"

    def test_member_weights_bias_vote(self, small_training):
        titles, labels = small_training
        heavy_nb = VotingEnsemble(
            [MultinomialNaiveBayes(), KNearestNeighbors(k=3)], weights=[10.0, 0.1]
        ).fit(titles, labels)
        nb_alone = MultinomialNaiveBayes().fit(titles, labels)
        for title in titles:
            assert heavy_nb.predict(title)[0].label == nb_alone.predict(title)[0].label

    def test_empty_members_rejected(self):
        with pytest.raises(ValueError):
            VotingEnsemble([])

    def test_weight_count_mismatch(self):
        with pytest.raises(ValueError):
            VotingEnsemble([MultinomialNaiveBayes()], weights=[1.0, 2.0])

    def test_batch_empty(self, small_training):
        titles, labels = small_training
        ensemble = VotingEnsemble([MultinomialNaiveBayes()]).fit(titles, labels)
        assert ensemble.predict_batch([]) == []

    def test_known_labels(self, small_training):
        titles, labels = small_training
        ensemble = VotingEnsemble([MultinomialNaiveBayes()]).fit(titles, labels)
        assert ensemble.known_labels() == sorted(set(labels))
