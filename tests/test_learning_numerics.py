"""Numeric sanity tests for the learning substrate internals."""

import numpy as np
import pytest

from repro.learning import (
    KNearestNeighbors,
    LogisticRegressionClassifier,
    MultinomialNaiveBayes,
    TfidfVectorizer,
)
from repro.learning.base import _normalize_scores
from repro.learning.logistic import _softmax


class TestScoreNormalization:
    def test_softmax_rows_sum_to_one(self):
        logits = np.array([[1.0, 2.0, 3.0], [-5.0, 0.0, 5.0]])
        probabilities = _softmax(logits)
        assert np.allclose(probabilities.sum(axis=1), 1.0)
        assert (probabilities > 0).all()

    def test_softmax_stable_for_huge_logits(self):
        logits = np.array([[1e6, 1e6 - 1.0]])
        probabilities = _softmax(logits)
        assert np.isfinite(probabilities).all()
        assert probabilities[0, 0] > probabilities[0, 1]

    def test_normalize_scores_monotone(self):
        scores = np.array([3.0, 1.0, 2.0])
        weights = _normalize_scores(scores)
        assert weights[0] > weights[2] > weights[1]
        assert abs(weights.sum() - 1.0) < 1e-9

    def test_normalize_scores_uniform_on_ties(self):
        weights = _normalize_scores(np.array([4.0, 4.0]))
        assert np.allclose(weights, 0.5)


class TestNaiveBayesInternals:
    def test_priors_follow_class_frequency(self):
        titles = ["gold ring"] * 8 + ["blue jeans"] * 2
        labels = ["rings"] * 8 + ["jeans"] * 2
        clf = MultinomialNaiveBayes().fit(titles, labels)
        priors = np.exp(clf._log_prior)
        by_label = dict(zip(clf.encoder.classes, priors))
        assert by_label["rings"] == pytest.approx(0.8)
        assert by_label["jeans"] == pytest.approx(0.2)

    def test_likelihoods_are_distributions(self):
        titles = ["gold ring", "blue jeans", "area rug"]
        labels = ["rings", "jeans", "area rugs"]
        clf = MultinomialNaiveBayes().fit(titles, labels)
        row_sums = np.exp(clf._log_likelihood).sum(axis=1)
        assert np.allclose(row_sums, 1.0)


class TestKnnInternals:
    def test_k_clipped_to_training_size(self):
        clf = KNearestNeighbors(k=50).fit(["gold ring", "blue jeans"],
                                          ["rings", "jeans"])
        # With only 2 training rows, prediction must still work.
        assert clf.predict("gold ring")[0].label == "rings"

    def test_block_size_does_not_change_results(self):
        titles = [f"item number {i} gold ring" for i in range(30)] + \
                 [f"item number {i} blue jeans" for i in range(30)]
        labels = ["rings"] * 30 + ["jeans"] * 30
        big = KNearestNeighbors(block_size=512).fit(titles, labels)
        small = KNearestNeighbors(block_size=3).fit(titles, labels)
        queries = ["gold ring sale", "jeans cheap", "item number 5"]
        for query in queries:
            assert [p.label for p in big.predict(query)] == \
                   [p.label for p in small.predict(query)]


class TestLogisticInternals:
    def test_scores_are_log_probabilities(self):
        clf = LogisticRegressionClassifier(epochs=30).fit(
            ["gold ring", "blue jeans"], ["rings", "jeans"])
        scores = clf._scores(["gold ring"])
        assert (scores <= 0).all()  # log p <= 0
        assert np.allclose(np.exp(scores).sum(axis=1), 1.0, atol=1e-6)


class TestVectorizerDeterminism:
    def test_vocabulary_order_stable(self):
        titles = ["b a c", "c b d"]
        vocab1 = TfidfVectorizer().fit(titles).vocabulary
        vocab2 = TfidfVectorizer().fit(titles).vocabulary
        assert vocab1 == vocab2
        assert list(vocab1) == sorted(vocab1)
