"""Tests for rule maintenance: subsumption, overlap, staleness, taxonomy
change, and consolidation."""

import pytest

from repro.catalog.types import ProductItem
from repro.core import BlacklistRule, SequenceRule, WhitelistRule
from repro.maintenance import (
    StalenessMonitor,
    apply_plan,
    consolidate_rules,
    faulty_branches,
    find_overlaps,
    find_subsumptions,
    localization_cost,
    plan_for_split,
    prune_redundant,
    split_consolidated,
)


def item(title, true_type=""):
    return ProductItem(item_id=title[:30], title=title, true_type=true_type)


class TestSubsumption:
    def test_paper_example_syntactic(self):
        general = WhitelistRule("jeans?", "jeans")
        specific = WhitelistRule("denim.*jeans?", "jeans")
        pairs = find_subsumptions([general, specific])
        assert len(pairs) == 1
        assert pairs[0].general_id == general.rule_id
        assert pairs[0].redundant_id == specific.rule_id
        assert pairs[0].evidence == "syntactic"

    def test_sequence_rule_subsumption(self):
        general = SequenceRule(("jeans",), "jeans")
        specific = SequenceRule(("denim", "jeans"), "jeans")
        pairs = find_subsumptions([general, specific])
        assert [(p.general_id, p.redundant_id) for p in pairs] == [
            (general.rule_id, specific.rule_id)
        ]

    def test_different_targets_never_subsume(self):
        a = WhitelistRule("jeans?", "jeans")
        b = WhitelistRule("denim.*jeans?", "denim wear")
        assert find_subsumptions([a, b]) == []

    def test_empirical_subsumption(self):
        general = WhitelistRule("(gold|silver) rings?", "rings")
        specific = WhitelistRule("gold rings?", "rings")
        items = [item(f"gold ring {i}") for i in range(5)] + [item("silver ring")]
        pairs = find_subsumptions([general, specific], items)
        empirical = [p for p in pairs if p.evidence.startswith("empirical")]
        assert len(empirical) == 1
        assert empirical[0].redundant_id == specific.rule_id

    def test_prune_redundant(self):
        general = WhitelistRule("jeans?", "jeans")
        specific = WhitelistRule("denim.*jeans?", "jeans")
        pairs = find_subsumptions([general, specific])
        kept = prune_redundant([general, specific], pairs)
        assert kept == [general]


class TestOverlap:
    def test_paper_example_overlap(self):
        a = WhitelistRule("(abrasive|sanding)[ ](wheels?|discs?)", "abrasive wheels & discs")
        b = WhitelistRule("abrasive.*(wheels?|discs?)", "abrasive wheels & discs")
        items = [item("abrasive wheel 60 grit"), item("abrasive grinding disc"),
                 item("sanding disc"), item("flap wheel")]
        pairs = find_overlaps([a, b], items, threshold=0.3, min_shared=1)
        assert len(pairs) == 1
        assert pairs[0].shared == 1  # "abrasive wheel" matches both forms

    def test_threshold_filters(self):
        a = WhitelistRule("rings?", "rings")
        b = WhitelistRule("gold", "rings")
        items = [item("gold ring"), item("gold ring 2"), item("silver ring"),
                 item("gold chain"), item("ring box")]
        assert find_overlaps([a, b], items, threshold=0.9) == []
        assert find_overlaps([a, b], items, threshold=0.3)

    def test_blacklists_ignored(self):
        a = BlacklistRule("rings?", "rings")
        b = BlacklistRule("rings?", "rings")
        assert find_overlaps([a, b], [item("a ring")]) == []


class TestStaleness:
    def test_imprecise_rule_flagged(self):
        monitor = StalenessMonitor(window_batches=3, precision_floor=0.9)
        rule = WhitelistRule("rings?", "rings")
        good = [item(f"ring {i}", "rings") for i in range(6)]
        bad = [item(f"key ring {i}", "keychains") for i in range(6)]
        monitor.observe_batch([rule], good + bad)
        flagged = monitor.imprecise_rules(min_hits=5)
        assert [health.rule_id for health in flagged] == [rule.rule_id]
        assert flagged[0].precision == pytest.approx(0.5)

    def test_precision_window_rolls(self):
        monitor = StalenessMonitor(window_batches=2, precision_floor=0.9)
        rule = WhitelistRule("rings?", "rings")
        monitor.observe_batch([rule], [item("key ring", "keychains")] * 6)
        monitor.observe_batch([rule], [item("gold ring", "rings")] * 6)
        monitor.observe_batch([rule], [item("gold ring", "rings")] * 6)
        # Window no longer contains the bad batch.
        assert monitor.imprecise_rules(min_hits=5) == []

    def test_inapplicable_rule_flagged(self):
        monitor = StalenessMonitor(window_batches=10)
        rule = WhitelistRule("pagers?", "pagers")
        for _ in range(5):
            monitor.observe_batch([rule], [item("smartphone", "smart phones")])
        flagged = monitor.inapplicable_rules(idle_batches=5)
        assert [health.rule_id for health in flagged] == [rule.rule_id]

    def test_verified_correct_overrides_ground_truth(self):
        monitor = StalenessMonitor(window_batches=3, precision_floor=0.9)
        rule = WhitelistRule("rings?", "rings")
        items = [item(f"ring {i}", "rings") for i in range(10)]
        monitor.observe_batch([rule], items, verified_correct={rule.rule_id: 2})
        health = monitor.health(rule.rule_id)
        assert health.correct == 2

    def test_unknown_rule(self):
        with pytest.raises(KeyError):
            StalenessMonitor().health("nope")


class TestTaxonomyChange:
    def setup_method(self):
        self.pants_rule = WhitelistRule("pants?", "pants")
        self.jeans_rule = WhitelistRule("denim pants?", "pants")
        self.sample = (
            [item(f"denim pants {i}", "jeans") for i in range(5)]
            + [item(f"cargo work pants {i}", "work pants") for i in range(5)]
        )

    def test_plan_invalidates_and_retargets(self):
        plan = plan_for_split(
            [self.pants_rule, self.jeans_rule], "pants",
            ["jeans", "work pants"], self.sample,
        )
        assert set(plan.invalidated) == {self.pants_rule.rule_id, self.jeans_rule.rule_id}
        # "denim pants" rules land purely in jeans -> retarget proposal.
        assert plan.retargets[self.jeans_rule.rule_id] == "jeans"
        # the broad "pants" rule covers both new types -> undecidable.
        assert self.pants_rule.rule_id in plan.undecidable

    def test_apply_plan(self):
        plan = plan_for_split(
            [self.pants_rule, self.jeans_rule], "pants",
            ["jeans", "work pants"], self.sample,
        )
        disabled = apply_plan([self.pants_rule, self.jeans_rule], plan)
        assert self.jeans_rule.target_type == "jeans"
        assert disabled == [self.pants_rule]
        assert not self.pants_rule.enabled

    def test_needs_new_types(self):
        with pytest.raises(ValueError):
            plan_for_split([], "pants", [], [])


class TestConsolidation:
    def setup_method(self):
        self.rules = [
            WhitelistRule("gold rings?", "rings"),
            WhitelistRule("silver rings?", "rings"),
            WhitelistRule("wedding bands?", "rings"),
        ]

    def test_consolidated_matches_union(self):
        consolidated = consolidate_rules(self.rules)
        probes = [item("gold ring"), item("silver rings"), item("wedding band"),
                  item("area rug")]
        for probe in probes:
            union = any(rule.matches(probe) for rule in self.rules)
            assert consolidated.rule.matches(probe) == union

    def test_split_restores_branches(self):
        consolidated = consolidate_rules(self.rules)
        split = split_consolidated(consolidated)
        assert [r.pattern for r in split] == [r.pattern for r in self.rules]

    def test_mixed_targets_rejected(self):
        with pytest.raises(ValueError):
            consolidate_rules([WhitelistRule("a", "x"), WhitelistRule("b", "y")])

    def test_faulty_branch_found(self):
        consolidated = consolidate_rules(self.rules)
        bad = item("wedding band for watches")  # suppose this misclassifies
        assert faulty_branches(consolidated, bad) == [2]

    def test_localization_cost_grows_with_branches(self):
        few = consolidate_rules(self.rules[:2])
        many = consolidate_rules(
            [WhitelistRule(f"style{i} rings?", "rings") for i in range(16)]
            + [WhitelistRule("wedding bands?", "rings")]
        )
        bad = item("wedding band")
        assert localization_cost(many, bad) > localization_cost(few, item("silver ring"))

    def test_cost_zero_when_rule_innocent(self):
        consolidated = consolidate_rules(self.rules)
        assert localization_cost(consolidated, item("area rug")) == 0

    def test_simple_rule_cost_is_one(self):
        single = consolidate_rules(self.rules[:1])
        assert localization_cost(single, item("gold ring")) == 1
