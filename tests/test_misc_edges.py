"""Edge-case tests rounding out coverage across smaller surfaces."""

import pytest

from repro.catalog import CatalogGenerator, build_seed_taxonomy
from repro.catalog.types import ProductItem
from repro.catalog.vocabulary import brand_knowledge
from repro.chimera import GateAction, GateKeeper, VotingMaster
from repro.core import Prediction, SequenceRule, WhitelistRule
from repro.crowd import CrowdBudget
from repro.execution import PartitionedExecutor
from repro.learning import TfidfVectorizer


def item(title, **attributes):
    return ProductItem(item_id=title[:24], title=title, attributes=attributes)


class TestBrandKnowledge:
    def test_matches_taxonomy_brands(self, taxonomy):
        knowledge = brand_knowledge()
        assert "apple" in knowledge
        for brand, types in knowledge.items():
            for type_name in types:
                assert type_name in taxonomy

    def test_returns_copy(self):
        knowledge = brand_knowledge()
        knowledge["apple"] = ()
        assert brand_knowledge()["apple"] != ()


class TestGateKeeperEdges:
    def test_min_title_tokens(self):
        gate = GateKeeper(min_title_tokens=3)
        assert gate.process(item("two words")).action is GateAction.REJECT
        assert gate.process(item("three word title")).action is GateAction.PASS


class TestVotingMasterWeights:
    def test_explicit_weight_overrides_default(self):
        master = VotingMaster(stage_weights={"rule-based": 0.1})
        assert master.weight_for("rule-based") == 0.1
        assert master.weight_for("learning") == 1.0
        assert master.weight_for("unknown-stage") == 1.0

    def test_threshold_bounds(self):
        with pytest.raises(ValueError):
            VotingMaster(confidence_threshold=1.5)


class TestPredictionValidation:
    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            Prediction("t", weight=-0.1)


class TestBudgetCost:
    def test_cost_per_answer_scales(self):
        budget = CrowdBudget(10, cost_per_answer=2.5)
        budget.charge(4)
        assert budget.spent == 10.0
        assert not budget.can_afford(1)


class TestVectorizerBigrams:
    def test_bigram_channel_separates_phrases(self):
        titles = ["wedding band gold", "rubber band pack",
                  "wedding ring", "band practice"]
        with_bigrams = TfidfVectorizer(use_bigrams=True).fit(titles)
        without = TfidfVectorizer(use_bigrams=False).fit(titles)
        assert "wedding_band" in with_bigrams.vocabulary
        assert "wedding_band" not in without.vocabulary
        assert with_bigrams.n_features > without.n_features


class TestPartitionedProcesses:
    def test_process_pool_matches_serial(self):
        rules = [SequenceRule(("gold", "ring"), "rings"),
                 WhitelistRule("rugs?", "area rugs")]
        generator = CatalogGenerator(build_seed_taxonomy(), seed=81)
        items = generator.generate_items(60)
        serial, serial_stats, _ = PartitionedExecutor(
            rules, n_workers=2, use_processes=False).run(items)
        parallel, parallel_stats, _ = PartitionedExecutor(
            rules, n_workers=2, use_processes=True).run(items)
        assert serial == parallel
        assert serial_stats.matches == parallel_stats.matches


class TestGeneratorRates:
    def test_corner_case_rate_roughly_respected(self, taxonomy):
        generator = CatalogGenerator(taxonomy, seed=91, corner_case_rate=0.5,
                                     trap_rate=0.0)
        titles = [generator.generate_title(taxonomy.get("rings"))
                  for _ in range(300)]
        # Corner-case ring titles omit the head noun entirely.
        cornered = sum(1 for title in titles if "ring" not in title)
        assert 0.3 < cornered / len(titles) < 0.7

    def test_zero_rates_disable_features(self, taxonomy):
        generator = CatalogGenerator(taxonomy, seed=92, corner_case_rate=0.0,
                                     trap_rate=0.0)
        titles = [generator.generate_title(taxonomy.get("oil filters"))
                  for _ in range(100)]
        assert all("oil filter" in title for title in titles)
