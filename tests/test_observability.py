"""Unit coverage for the observability layer: tracer, metrics, exporters.

Every timing assertion runs on a TickClock, so durations are exact
functions of clock-read counts — no sleeps, no tolerances.
"""

import io
import json

import pytest

from repro.observability import (
    NULL_OBSERVABILITY,
    NULL_TRACER,
    MetricsRegistry,
    Observability,
    Tracer,
    chrome_trace_events,
    ensure_observability,
    render_report,
    render_span_tree,
    span_to_dict,
    write_chrome_trace,
    write_trace_jsonl,
)
from repro.utils.clock import TickClock
from repro.utils.text import cache_stats, clear_caches, tokenize


class TestTracer:
    def test_nested_spans_link_parents(self):
        tracer = Tracer(clock=TickClock(step=1.0))
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # spans are collected in end order: inner closes first.
        assert [s.name for s in tracer.spans] == ["inner", "outer"]

    def test_tick_clock_durations_are_deterministic(self):
        tracer = Tracer(clock=TickClock(step=0.5))
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        # reads: a.start=0.0, b.start=0.5, b.end=1.0, a.end=1.5
        assert tracer.find("b")[0].duration == pytest.approx(0.5)
        assert tracer.find("a")[0].duration == pytest.approx(1.5)
        assert tracer.total_time("a") == pytest.approx(1.5)

    def test_attributes_at_open_and_set_attribute(self):
        tracer = Tracer(clock=TickClock())
        with tracer.span("run", items=3) as span:
            span.set_attribute("matches", 7)
        assert tracer.spans[0].attributes == {"items": 3, "matches": 7}

    def test_exception_is_recorded_not_swallowed(self):
        tracer = Tracer(clock=TickClock())
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        span = tracer.spans[0]
        assert span.finished
        assert span.attributes["error"] == "RuntimeError"

    def test_on_span_end_hooks_fire_in_end_order(self):
        tracer = Tracer(clock=TickClock(step=0.25))
        seen = []
        tracer.on_span_end.append(lambda s: seen.append((s.name, s.duration)))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert seen == [("inner", 0.25), ("outer", 0.75)]

    def test_current_and_roots(self):
        tracer = Tracer(clock=TickClock())
        assert tracer.current is None
        with tracer.span("root") as root:
            assert tracer.current is root
            with tracer.span("child") as child:
                assert tracer.current is child
        assert tracer.current is None
        assert tracer.roots() == [root]
        assert tracer.children_of(root) == [child]

    def test_disabled_tracer_records_nothing(self):
        with NULL_TRACER.span("ignored", any=1) as span:
            span.set_attribute("also", "ignored")
        assert NULL_TRACER.spans == []

    def test_clear_drops_finished_spans_keeps_hooks(self):
        tracer = Tracer(clock=TickClock())
        hook = lambda s: None  # noqa: E731
        tracer.on_span_end.append(hook)
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.spans == []
        assert tracer.on_span_end == [hook]


class TestMetricsRegistry:
    def test_counter_is_monotonic(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        assert registry.counter("c").value == 5
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_labels_address_distinct_children(self):
        registry = MetricsRegistry()
        registry.counter("fired", rule_id="a").inc()
        registry.counter("fired", rule_id="b").inc(2)
        series = registry.series("fired")
        assert series["fired{rule_id=a}"].value == 1
        assert series["fired{rule_id=b}"].value == 2

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5)
        gauge.dec(2)
        gauge.inc(1)
        assert gauge.value == 4

    def test_histogram_buckets_and_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        assert hist.bucket_counts == [1, 1, 1]  # <=0.1, <=1.0, overflow
        assert hist.count == 3
        assert hist.min == 0.05 and hist.max == 5.0
        assert hist.mean == pytest.approx((0.05 + 0.5 + 5.0) / 3)

    def test_bad_histogram_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=(1.0, 0.1))

    def test_observe_fired_accumulates_per_rule(self):
        registry = MetricsRegistry()
        registry.observe_fired({"i1": ["r1", "r2"], "i2": ["r1"]})
        registry.observe_fired({"i3": ["r1"]})
        series = registry.series("rule_fired_total")
        assert series["rule_fired_total{rule_id=r1}"].value == 3
        assert series["rule_fired_total{rule_id=r2}"].value == 1

    def test_observe_text_cache_surfaces_lru_stats(self):
        clear_caches()
        tokenize("Blue Jeans")
        tokenize("Blue Jeans")
        registry = MetricsRegistry()
        registry.observe_text_cache()
        gauges = registry.snapshot()["gauges"]
        assert gauges["text_cache_hits{fn=tokenize}"] == 1
        assert gauges["text_cache_misses{fn=tokenize}"] == 1
        assert gauges["text_cache_size{fn=tokenize}"] == 1
        assert gauges["text_cache_maxsize{fn=tokenize}"] == 32768
        assert gauges["text_cache_hit_rate{fn=tokenize}"] == pytest.approx(0.5)
        assert "text_cache_hits{fn=normalize}" in gauges

    def test_cache_stats_reset_by_clear(self):
        clear_caches()
        stats = cache_stats()
        assert stats["tokenize"]["size"] == 0
        assert stats["tokenize"]["hits"] == 0

    def test_report_lines_are_sorted_and_typed(self):
        registry = MetricsRegistry()
        registry.counter("b_total").inc()
        registry.counter("a_total").inc()
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.2)
        lines = registry.report_lines()
        assert lines[0].startswith("counter   a_total")
        assert lines[1].startswith("counter   b_total")
        assert any(line.startswith("gauge     g = 1.5") for line in lines)
        assert any(line.startswith("histogram h count=1") for line in lines)


def sample_tracer():
    tracer = Tracer(clock=TickClock(step=0.5))
    with tracer.span("run", items=2):
        with tracer.span("prepare"):
            pass
        with tracer.span("match"):
            pass
    return tracer


class TestExporters:
    def test_span_to_dict_roundtrips_through_json(self):
        tracer = sample_tracer()
        payload = json.loads(json.dumps(span_to_dict(tracer.spans[0])))
        assert payload["name"] == "prepare"
        assert payload["duration"] == 0.5

    def test_jsonl_writes_one_span_per_line(self):
        tracer = sample_tracer()
        buffer = io.StringIO()
        count = write_trace_jsonl(tracer.spans, buffer)
        lines = buffer.getvalue().strip().splitlines()
        assert count == len(lines) == 3
        names = [json.loads(line)["name"] for line in lines]
        assert names == ["prepare", "match", "run"]  # end order

    def test_chrome_trace_events_are_relative_microseconds(self):
        tracer = sample_tracer()
        events = chrome_trace_events(tracer.spans)
        by_name = {event["name"]: event for event in events}
        assert by_name["run"]["ts"] == 0.0  # timeline starts at zero
        assert by_name["run"]["ph"] == "X"
        assert by_name["prepare"]["ts"] == pytest.approx(0.5e6)
        assert by_name["prepare"]["dur"] == pytest.approx(0.5e6)
        # nesting depth -> tid lane
        assert by_name["run"]["tid"] == 0
        assert by_name["prepare"]["tid"] == 1

    def test_chrome_trace_file_is_loadable(self, tmp_path):
        tracer = sample_tracer()
        target = tmp_path / "trace.json"
        count = write_chrome_trace(tracer.spans, str(target))
        payload = json.loads(target.read_text())
        assert count == 3
        assert len(payload["traceEvents"]) == 3
        assert payload["displayTimeUnit"] == "ms"

    def test_render_span_tree_indents_children(self):
        tracer = sample_tracer()
        lines = render_span_tree(tracer.spans)
        assert lines[0].startswith("run")
        assert lines[1].startswith("  prepare")
        assert lines[2].startswith("  match")

    def test_render_report_includes_both_sections(self):
        tracer = sample_tracer()
        registry = MetricsRegistry()
        registry.counter("x_total").inc()
        report = render_report(tracer, registry, title="t")
        assert "=== t ===" in report
        assert "trace (3 spans):" in report
        assert "counter   x_total = 1" in report

    def test_render_report_empty(self):
        assert "(nothing recorded)" in render_report(None, None)


class TestObservabilityFacade:
    def test_ensure_observability_defaults_to_shared_null(self):
        assert ensure_observability(None) is NULL_OBSERVABILITY
        obs = Observability()
        assert ensure_observability(obs) is obs

    def test_null_instance_is_inert(self):
        with NULL_OBSERVABILITY.span("x") as span:
            span.set_attribute("k", "v")
        NULL_OBSERVABILITY.observe_fired({"i": ["r"]})
        assert NULL_OBSERVABILITY.tracer.spans == []
        assert NULL_OBSERVABILITY.metrics.snapshot()["counters"] == {}

    def test_report_and_exports_through_facade(self, tmp_path):
        obs = Observability(clock=TickClock(step=0.5))
        with obs.span("run"):
            pass
        obs.metrics.counter("c_total").inc()
        report = obs.report(title="facade")
        assert "=== facade ===" in report and "run" in report
        chrome = tmp_path / "c.json"
        jsonl = tmp_path / "t.jsonl"
        assert obs.write_chrome_trace(str(chrome)) == 1
        assert obs.write_trace_jsonl(str(jsonl)) == 1
        assert json.loads(chrome.read_text())["traceEvents"]
