"""Observability is strictly observational: on/off runs are byte-identical.

The load-bearing property of the whole layer (DESIGN.md §9): attaching a
tracer + metrics registry to any executor — or to the Chimera pipeline —
must not change a single byte of output. These tests run every executor
twice over the golden corpus (observability off, then on with a
deterministic TickClock) and compare canonical-JSON fired maps, plus a
hypothesis sweep over random rule/item subsets so the property is not an
artifact of one fixed corpus.
"""

import json
import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.types import ProductItem
from repro.core.serialize import rules_from_dicts
from repro.execution import (
    IncrementalExecutor,
    IndexedExecutor,
    NaiveExecutor,
    PartitionedExecutor,
    RetryPolicy,
)
from repro.observability import Observability
from repro.testing import FaultPlan, VirtualSleeper
from repro.utils.clock import TickClock

GOLDEN = pathlib.Path(__file__).parent / "golden"


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def load_items():
    records = json.loads((GOLDEN / "catalog.json").read_text())
    return [
        ProductItem(
            item_id=r["item_id"],
            title=r["title"],
            attributes=r["attributes"],
            true_type=r["true_type"],
            vendor=r["vendor"],
            description=r["description"],
        )
        for r in records
    ]


ITEMS = load_items()
RULES = rules_from_dicts(json.loads((GOLDEN / "ruleset.json").read_text()))


def observed():
    return Observability(clock=TickClock(step=0.001))


def run_naive(rules, items, obs):
    return NaiveExecutor(rules, observability=obs).run(items)[0]


def run_indexed(rules, items, obs):
    return IndexedExecutor(rules, observability=obs).run(items)[0]


def run_partitioned(rules, items, obs):
    executor = PartitionedExecutor(
        rules, n_workers=3, sleep=VirtualSleeper(), observability=obs
    )
    return executor.run(items)[0]


def run_incremental(rules, items, obs):
    executor = IncrementalExecutor(rules, items, observability=obs)
    return dict(executor.fired_map())


EXECUTOR_RUNNERS = {
    "naive": run_naive,
    "indexed": run_indexed,
    "partitioned": run_partitioned,
    "incremental": run_incremental,
}


class TestGoldenCorpusOnOffIdentity:
    @pytest.mark.parametrize("name", sorted(EXECUTOR_RUNNERS))
    def test_fired_map_byte_identical(self, name):
        runner = EXECUTOR_RUNNERS[name]
        plain = runner(RULES, ITEMS, None)
        obs = observed()
        traced = runner(RULES, ITEMS, obs)
        assert canonical(traced) == canonical(plain)
        # The instrumented run genuinely recorded something.
        assert obs.tracer.spans
        assert obs.metrics.snapshot()

    def test_partitioned_identity_under_retry(self):
        # Even with a fault-triggered retry, tracing must not perturb the
        # recovered output.
        plan_off = FaultPlan().corrupt(shard=1, attempt=0, detail="alien-item")
        plan_on = FaultPlan().corrupt(shard=1, attempt=0, detail="alien-item")
        plain = PartitionedExecutor(
            RULES, n_workers=3, sleep=VirtualSleeper(), fault_plan=plan_off
        ).run(ITEMS)[0]
        traced = PartitionedExecutor(
            RULES, n_workers=3, sleep=VirtualSleeper(), fault_plan=plan_on,
            observability=observed(),
        ).run(ITEMS)[0]
        assert canonical(traced) == canonical(plain)

    def test_chimera_stage_spans_do_not_change_labels(self):
        from repro.chimera import Chimera

        batch = ITEMS[:40]
        plain = Chimera.build(seed=3)
        traced = Chimera.build(seed=3, observability=observed())
        plain_out = plain.classify_batch(batch)
        traced_out = traced.classify_batch(batch)
        assert [(r.item.item_id, r.label, r.source) for r in plain_out.results] == [
            (r.item.item_id, r.label, r.source) for r in traced_out.results
        ]
        assert [i.item_id for i in plain_out.rejected] == [
            i.item_id for i in traced_out.rejected
        ]


@settings(max_examples=25, deadline=None)
@given(
    rule_seed=st.integers(min_value=0, max_value=2**16),
    item_seed=st.integers(min_value=0, max_value=2**16),
    name=st.sampled_from(sorted(EXECUTOR_RUNNERS)),
)
def test_on_off_identity_on_random_subsets(rule_seed, item_seed, name):
    import random

    rules = random.Random(rule_seed).sample(RULES, k=min(20, len(RULES)))
    items = random.Random(item_seed).sample(ITEMS, k=min(30, len(ITEMS)))
    runner = EXECUTOR_RUNNERS[name]
    plain = runner(rules, items, None)
    traced = runner(rules, items, observed())
    assert canonical(traced) == canonical(plain)
