"""Property-based tests (hypothesis) for core data structures and invariants."""

import math
import random
import re

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.catalog.types import ProductItem
from repro.core import (
    RuleSet,
    SequenceRule,
    WhitelistRule,
    check_order_independence,
    compile_title_regex,
    extract_anchor_literals,
)
from repro.core.serialize import rule_from_dict, rule_to_dict
from repro.em.similarity import (
    jaccard_3gram,
    jaccard_tokens,
    jaro_winkler,
    levenshtein,
    normalized_levenshtein,
)
from repro.rulegen import confidence_score, mine_frequent_sequences
from repro.utils.sampling import reservoir_sample
from repro.utils.stats import wilson_interval
from repro.utils.text import contains_word_sequence, normalize_text, tokenize
from repro.utils.vectors import SparseVector, cosine_similarity

words = st.text(alphabet="abcdefghij", min_size=1, max_size=6)
word_lists = st.lists(words, min_size=0, max_size=12)
titles = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789 -.,!?", min_size=0, max_size=60
)


class TestTextProperties:
    @given(titles)
    def test_normalize_idempotent(self, text):
        once = normalize_text(text)
        assert normalize_text(once) == once

    @given(titles)
    def test_tokenize_output_is_normalized(self, text):
        for token in tokenize(text):
            assert token == token.lower()
            assert " " not in token

    @given(word_lists, word_lists)
    def test_subsequence_of_concatenation(self, prefix, sequence):
        # Any sequence is contained in (anything + itself in order).
        title = prefix + list(sequence)
        assert contains_word_sequence(title, sequence)

    @given(word_lists, word_lists)
    def test_subsequence_transitive_with_deletion(self, title, sequence):
        assume(contains_word_sequence(title, sequence))
        if sequence:
            shorter = sequence[:-1]
            assert contains_word_sequence(title, shorter)


class TestStatsProperties:
    @given(st.integers(min_value=0, max_value=1000), st.integers(min_value=1, max_value=1000))
    def test_wilson_bounds(self, successes, trials):
        assume(successes <= trials)
        low, high = wilson_interval(successes, trials)
        assert 0.0 <= low <= high <= 1.0
        point = successes / trials
        assert low - 1e-9 <= point <= high + 1e-9

    @given(st.lists(st.integers(), min_size=0, max_size=200),
           st.integers(min_value=0, max_value=20), st.integers())
    def test_reservoir_invariants(self, stream, k, seed):
        sample = reservoir_sample(stream, k, random.Random(seed))
        assert len(sample) == min(k, len(stream))
        for value in sample:
            assert value in stream


class TestVectorProperties:
    vectors = st.dictionaries(words, st.floats(min_value=-5, max_value=5,
                                               allow_nan=False), max_size=8)

    @given(vectors)
    def test_normalized_norm(self, data):
        vec = SparseVector(data).normalized()
        assert vec.norm() == 0.0 or abs(vec.norm() - 1.0) < 1e-6

    @given(vectors, vectors)
    def test_cosine_bounded_and_symmetric(self, a_data, b_data):
        a, b = SparseVector(a_data), SparseVector(b_data)
        sim = cosine_similarity(a, b)
        assert -1.0 - 1e-9 <= sim <= 1.0 + 1e-9
        assert abs(sim - cosine_similarity(b, a)) < 1e-9


class TestSimilarityProperties:
    @given(titles, titles)
    def test_levenshtein_metric_axioms(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)
        assert (levenshtein(a, b) == 0) == (a == b)

    @given(titles, titles, titles)
    @settings(max_examples=30)
    def test_levenshtein_triangle(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(titles, titles)
    def test_similarities_bounded(self, a, b):
        for function in (jaccard_tokens, jaccard_3gram, normalized_levenshtein):
            value = function(a, b)
            assert 0.0 <= value <= 1.0
        assert 0.0 <= jaro_winkler(a[:20], b[:20]) <= 1.0 + 1e-9

    @given(titles)
    def test_self_similarity(self, a):
        assert jaccard_tokens(a, a) == 1.0
        assert normalized_levenshtein(a, a) == 1.0


class TestRuleProperties:
    @given(st.lists(words, min_size=1, max_size=4), word_lists)
    def test_sequence_rule_matches_iff_subsequence(self, sequence, title_words):
        assume(all(token not in ("a", "i") for token in sequence))
        rule = SequenceRule(sequence, "t")
        title = " ".join(title_words)
        expected = contains_word_sequence(tokenize(title), tuple(sequence))
        assert rule.matches_text(title) == expected

    @given(st.lists(words, min_size=1, max_size=3))
    def test_serialization_round_trip(self, sequence):
        rule = SequenceRule(sequence, "t", support=0.5)
        clone = rule_from_dict(rule_to_dict(rule))
        assert clone.token_sequence == rule.token_sequence

    @given(st.lists(words, min_size=1, max_size=5).map("|".join))
    def test_anchor_soundness_for_disjunctions(self, pattern):
        anchors = extract_anchor_literals(pattern)
        assume(anchors is not None)
        compiled = compile_title_regex(pattern)
        # Every branch word is a matching title; it must contain an anchor.
        for branch in pattern.split("|"):
            title = f"xx {branch} yy"
            if compiled.search(title):
                assert any(anchor in title for anchor in anchors)

    @given(st.lists(st.tuples(words, words), min_size=1, max_size=6),
           st.integers(min_value=0, max_value=2**30))
    @settings(max_examples=25)
    def test_order_independence_always_holds(self, specs, seed):
        rules = []
        for index, (pattern_word, target) in enumerate(specs):
            rules.append(WhitelistRule(pattern_word, target))
        ruleset = RuleSet(rules)
        items = [ProductItem(item_id=str(i), title=f"{w} thing")
                 for i, (w, _) in enumerate(specs)]
        report = check_order_independence(ruleset, items, trials=3, seed=seed)
        assert report.holds


class TestRulegenProperties:
    @given(st.lists(st.lists(words, min_size=1, max_size=6), min_size=1, max_size=15),
           st.floats(min_value=0.2, max_value=1.0))
    @settings(max_examples=25)
    def test_mined_support_counts_correct(self, title_tokens, min_support):
        frequent = mine_frequent_sequences(title_tokens, min_support, max_length=3)
        threshold = math.ceil(min_support * len(title_tokens))
        for sequence, count in frequent.items():
            actual = sum(
                1 for tokens in title_tokens
                if contains_word_sequence(tokens, sequence)
            )
            assert actual == count
            assert count >= threshold

    @given(st.lists(words, min_size=1, max_size=4), words,
           st.floats(min_value=0, max_value=1))
    def test_confidence_bounded(self, sequence, type_name, support):
        assume(type_name.strip())
        value = confidence_score(sequence, type_name, support)
        assert 0.0 <= value <= 1.0
