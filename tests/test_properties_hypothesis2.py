"""Second round of property-based tests: feedback algebra, rule-set
invariants, consolidation equivalence, blocking soundness, persistence."""

import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.catalog.types import ProductItem
from repro.core import RuleSet, WhitelistRule
from repro.core.persistence import load_ruleset, save_ruleset
from repro.em.blocking import block_pairs
from repro.em.records import Record
from repro.em.similarity import jaccard_tokens
from repro.execution import RuleIndex
from repro.maintenance import consolidate_rules, split_consolidated
from repro.synonym.rocchio import RocchioFeedback
from repro.utils.vectors import SparseVector

words = st.text(alphabet="abcdefghij", min_size=2, max_size=6)
vectors = st.dictionaries(words, st.floats(min_value=0.01, max_value=5,
                                           allow_nan=False), min_size=0, max_size=6)


def item(title):
    return ProductItem(item_id=title[:32], title=title)


class TestRocchioAlgebra:
    @given(vectors, vectors)
    def test_no_feedback_is_identity(self, prefix_data, suffix_data):
        feedback = RocchioFeedback(SparseVector(prefix_data),
                                   SparseVector(suffix_data), alpha=1.0)
        before_prefix, before_suffix = feedback.prefix, feedback.suffix
        feedback.update([], [])
        assert feedback.prefix == before_prefix
        assert feedback.suffix == before_suffix

    @given(vectors, vectors)
    def test_accepts_only_grow_components(self, golden, accepted):
        feedback = RocchioFeedback(SparseVector(golden), SparseVector(),
                                   alpha=1.0, beta=0.5, gamma=0.5)
        feedback.update([(SparseVector(accepted), SparseVector())], [])
        for key in accepted:
            assert feedback.prefix[key] >= SparseVector(golden)[key]

    @given(vectors)
    def test_rejections_never_create_negatives(self, rejected):
        feedback = RocchioFeedback(SparseVector({"x": 1.0}), SparseVector(),
                                   gamma=10.0)
        feedback.update([], [(SparseVector(rejected), SparseVector())])
        assert all(value > 0 for _, value in feedback.prefix.items())


class TestRuleSetInvariants:
    @given(st.lists(st.tuples(words, words), min_size=1, max_size=8), words)
    @settings(max_examples=40)
    def test_disable_enable_round_trip(self, specs, title_word):
        ruleset = RuleSet([WhitelistRule(w, t) for w, t in specs])
        probe = item(f"{title_word} thing")
        baseline = ruleset.apply(probe).labels
        for rule in list(ruleset):
            ruleset.disable(rule.rule_id)
        assert ruleset.apply(probe).labels == []
        for rule in list(ruleset):
            ruleset.enable(rule.rule_id)
        assert ruleset.apply(probe).labels == baseline

    @given(st.lists(st.tuples(words, words), min_size=1, max_size=8))
    @settings(max_examples=40)
    def test_disable_type_only_affects_that_type(self, specs):
        ruleset = RuleSet([WhitelistRule(w, t) for w, t in specs])
        target = specs[0][1]
        ruleset.disable_type(target)
        for word, type_name in specs:
            verdict = ruleset.apply(item(f"{word} thing"))
            assert target not in verdict.labels
            if type_name != target:
                assert type_name in verdict.labels


class TestConsolidationEquivalence:
    @given(st.lists(words, min_size=1, max_size=6, unique=True),
           st.lists(words, min_size=1, max_size=10))
    @settings(max_examples=40)
    def test_consolidated_equals_union(self, patterns, probe_words):
        rules = [WhitelistRule(pattern, "t") for pattern in patterns]
        consolidated = consolidate_rules(rules)
        for word in probe_words:
            probe = item(f"{word} thing")
            union = any(rule.matches(probe) for rule in rules)
            assert consolidated.rule.matches(probe) == union

    @given(st.lists(words, min_size=1, max_size=6, unique=True))
    def test_split_recovers_patterns(self, patterns):
        rules = [WhitelistRule(pattern, "t") for pattern in patterns]
        consolidated = consolidate_rules(rules)
        assert [r.pattern for r in split_consolidated(consolidated)] == patterns


class TestRuleIndexSoundness:
    @given(st.lists(st.tuples(words, words), min_size=1, max_size=10),
           st.lists(words, min_size=1, max_size=6))
    @settings(max_examples=40)
    def test_candidates_superset_of_matches(self, specs, title_words):
        rules = [WhitelistRule(w, t) for w, t in specs]
        index = RuleIndex(rules)
        probe = item(" ".join(title_words))
        candidate_ids = {rule.rule_id for rule in index.candidates(probe)}
        for rule in rules:
            if rule.matches(probe):
                assert rule.rule_id in candidate_ids

    @given(st.lists(st.tuples(words, words), min_size=2, max_size=8))
    @settings(max_examples=30)
    def test_remove_shrinks_candidates(self, specs):
        rules = [WhitelistRule(w, t) for w, t in specs]
        index = RuleIndex(rules)
        victim = rules[0]
        assert index.remove(victim.rule_id)
        probe = item(f"{specs[0][0]} thing")
        assert victim.rule_id not in {r.rule_id for r in index.candidates(probe)}
        assert not index.remove(victim.rule_id)  # already gone


class TestBlockingSoundness:
    @given(st.lists(st.tuples(words, words, words), min_size=2, max_size=15))
    @settings(max_examples=30)
    def test_blocked_pairs_share_a_token(self, rows):
        records = [
            Record(record_id=f"r{i}", fields={"title": f"{a} {b} {c}"})
            for i, (a, b, c) in enumerate(rows)
        ]
        for left, right in block_pairs(records, max_block_size=50):
            assert jaccard_tokens(left.get("title"), right.get("title")) > 0


class TestPersistenceProperty:
    @given(st.lists(st.tuples(words, words), min_size=1, max_size=8),
           st.lists(words, min_size=1, max_size=5))
    @settings(max_examples=25, deadline=None)  # tempdir I/O can outlast the default 200ms
    def test_round_trip_preserves_verdicts(self, specs, probe_words):
        import os
        import tempfile

        original = RuleSet([WhitelistRule(w, t) for w, t in specs])
        with tempfile.TemporaryDirectory() as directory:
            path = os.path.join(directory, "rules.json")
            save_ruleset(original, path)
            loaded = load_ruleset(path)
        for word in probe_words:
            probe = item(f"{word} thing")
            assert loaded.apply(probe).labels == original.apply(probe).labels
