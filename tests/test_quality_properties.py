"""Telemetry-transparency properties (the ISSUE 5 acceptance bar).

The rule-quality telemetry layer is *strictly observational*: it records
attribution chains from values the pipeline computed anyway and never
feeds back into classification. These tests prove that contract:

1. Chimera labels are **byte-identical** with telemetry on or off — for
   the frozen golden corpus, untrained and fully trained;
2. executor fired maps are **byte-identical** with an Observability +
   attached quality telemetry vs. no observability at all, across all
   four executors — including the partitioned executor under
   fault-injected retries;
3. ``why``/``blame`` reconstruct the exact vote chain for every golden
   corpus item (winners fired, winners voted the final label, blame is
   the inverse of fired);
4. a vocabulary shift in the item stream raises a fire-rate-drift alert
   naming the starved rule.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.catalog.types import ProductItem
from repro.chimera import Chimera
from repro.core import AttributeRule, SequenceRule, parse_rules
from repro.core.serialize import rules_from_dicts
from repro.execution import (
    IncrementalExecutor,
    IndexedExecutor,
    NaiveExecutor,
    PartitionedExecutor,
    RetryPolicy,
)
from repro.observability import Observability
from repro.observability.provenance import vote_rule_id
from repro.observability.quality import QualityTelemetry, RuleHealthTracker
from repro.testing import FaultPlan, VirtualSleeper
from repro.utils.text import clear_caches

GOLDEN = pathlib.Path(__file__).parent / "golden"


@pytest.fixture(scope="module")
def golden_items():
    rows = json.loads((GOLDEN / "catalog.json").read_text())
    return [
        ProductItem(
            item_id=row["item_id"],
            title=row["title"],
            attributes=dict(row.get("attributes", {})),
            true_type=row.get("true_type", ""),
            vendor=row.get("vendor", ""),
            description=row.get("description", ""),
        )
        for row in rows
    ]


@pytest.fixture(scope="module")
def golden_rules():
    return rules_from_dicts(json.loads((GOLDEN / "ruleset.json").read_text()))


def build_chimera(rules, seed=7, telemetry=False, train_items=()):
    chimera = Chimera.build(seed=seed)
    chimera.add_whitelist_rules(
        [r for r in rules if not r.is_blacklist and not r.is_constraint]
    )
    chimera.add_blacklist_rules([r for r in rules if r.is_blacklist])
    labeled = [item for item in train_items if item.true_type]
    if labeled:
        chimera.learning_stage.fit(
            [item.title for item in labeled], [item.true_type for item in labeled]
        )
    if telemetry:
        chimera.enable_quality_telemetry()
    return chimera


def classify_signature(chimera, items):
    """Everything an item's outcome consists of, in order."""
    result = chimera.classify_batch(list(items))
    signature = [(r.item.item_id, r.label, r.source) for r in result.results]
    signature.extend(
        (item.item_id, None, "gate-reject") for item in result.rejected
    )
    return signature


# ---------------------------------------------------------------------------
# 1. Chimera byte-identity
# ---------------------------------------------------------------------------


class TestChimeraByteIdentity:
    def test_untrained_pipeline(self, golden_items, golden_rules):
        clear_caches()
        plain = classify_signature(
            build_chimera(golden_rules, telemetry=False), golden_items
        )
        traced = classify_signature(
            build_chimera(golden_rules, telemetry=True), golden_items
        )
        assert plain == traced

    def test_trained_pipeline(self, golden_items, golden_rules):
        clear_caches()
        plain = classify_signature(
            build_chimera(
                golden_rules, telemetry=False, train_items=golden_items
            ),
            golden_items,
        )
        traced = classify_signature(
            build_chimera(
                golden_rules, telemetry=True, train_items=golden_items
            ),
            golden_items,
        )
        assert plain == traced

    def test_identity_survives_reclassification(self, golden_items, golden_rules):
        # Re-running the same batch must stay identical even as the
        # telemetry side accumulates state (ring buffer, health windows).
        plain = build_chimera(golden_rules, telemetry=False)
        traced = build_chimera(golden_rules, telemetry=True)
        for _ in range(3):
            assert classify_signature(plain, golden_items) == classify_signature(
                traced, golden_items
            )
        assert traced.quality.health.total_batches == 3


# ---------------------------------------------------------------------------
# 2. Executor fired-map identity (all four executors, faults included)
# ---------------------------------------------------------------------------


EXEC_RULES = parse_rules("""
    rings? -> rings
    (motor|engine) oils? -> motor oil
    denim.*jeans? -> jeans
    gold .* rings? -> rings
""") + [
    SequenceRule(("area", "rug"), "area rugs"),
    AttributeRule("isbn", "books"),
]


def exec_items(n=40):
    titles = [
        "diamond ring gold",
        "castrol motor oil 5 quart",
        "relaxed denim jeans",
        "shaw area rug 5x7",
        "gold diamond rings boxed",
        "engine oil treatment",
        "plain widget",
    ]
    return [
        ProductItem(
            item_id=f"x-{i:03d}",
            title=titles[i % len(titles)],
            attributes={"isbn": "978"} if i % 11 == 0 else {},
        )
        for i in range(n)
    ]


def quality_observability():
    observability = Observability()
    observability.attach_quality()
    return observability


class TestExecutorFiredMapIdentity:
    def test_naive(self):
        items = exec_items()
        plain, _ = NaiveExecutor(EXEC_RULES).run(items)
        obs = quality_observability()
        traced, _ = NaiveExecutor(EXEC_RULES, observability=obs).run(items)
        assert plain == traced
        assert obs.quality.health.total_batches == 1

    def test_indexed(self):
        items = exec_items()
        plain, _ = IndexedExecutor(EXEC_RULES).run(items)
        traced, _ = IndexedExecutor(
            EXEC_RULES, observability=quality_observability()
        ).run(items)
        assert plain == traced

    def test_incremental(self):
        items = exec_items()
        plain = IncrementalExecutor(rules=EXEC_RULES, items=items).fired_map()
        obs = quality_observability()
        traced = IncrementalExecutor(
            rules=EXEC_RULES, items=items, observability=obs
        ).fired_map()
        assert plain == traced

    def test_partitioned_under_fault_injected_retries(self):
        items = exec_items()
        plain, _, _ = PartitionedExecutor(EXEC_RULES, n_workers=3).run(items)

        def faulted(observability):
            return PartitionedExecutor(
                EXEC_RULES,
                n_workers=3,
                fault_plan=FaultPlan().crash(worker=1).crash(worker=2),
                retry_policy=RetryPolicy(
                    max_attempts=4, base_delay=0.01, multiplier=2.0,
                    max_delay=1.0, jitter=0.5,
                ),
                sleep=VirtualSleeper(),
                retry_seed=99,
                observability=observability,
            )

        recovered, stats, _ = faulted(None).run(items)
        assert plain == recovered
        assert stats.retries > 0, "the fault plan should have forced retries"

        obs = quality_observability()
        traced, traced_stats, _ = faulted(obs).run(items)
        assert plain == traced
        assert traced_stats.retries > 0
        # The telemetry side really observed the run.
        assert obs.quality.health.fire_rate(EXEC_RULES[0].rule_id) > 0

    def test_random_fault_plans_keep_identity(self):
        items = exec_items(30)
        plain, _, _ = PartitionedExecutor(EXEC_RULES, n_workers=4).run(items)
        for seed in range(5):
            obs = quality_observability()
            traced, _, _ = PartitionedExecutor(
                EXEC_RULES,
                n_workers=4,
                fault_plan=FaultPlan.random_plan(seed, n_workers=4, rate=0.4),
                retry_policy=RetryPolicy(
                    max_attempts=5, base_delay=0.01, multiplier=2.0,
                    max_delay=1.0, jitter=0.5,
                ),
                sleep=VirtualSleeper(),
                retry_seed=seed,
                observability=obs,
            ).run(items)
            assert plain == traced, f"fired map diverged under fault seed {seed}"


# ---------------------------------------------------------------------------
# 3. Vote-chain reconstruction over the golden corpus
# ---------------------------------------------------------------------------


class TestGoldenVoteChain:
    @pytest.fixture(scope="class")
    def classified(self, golden_items, golden_rules):
        chimera = build_chimera(golden_rules, telemetry=True)
        result = chimera.classify_batch(golden_items, batch_id="golden")
        return chimera, result

    def test_every_item_has_a_complete_chain(self, classified, golden_items):
        chimera, result = classified
        assert len(chimera.quality.provenance) == len(golden_items)
        for item_result in result.results:
            chain = chimera.why(item_result.item.item_id)
            assert chain, f"no provenance for {item_result.item.item_id}"
            record = chain[-1]
            assert record.label == item_result.label
            assert record.source == item_result.source
            assert record.batch_id == "golden"

            fired = record.fired_rule_ids()
            winners = record.winning_rule_ids()
            assert set(winners) <= set(fired)
            if record.label is not None and record.source == "pipeline":
                assert record.final_vote is not None
                assert record.final_vote[0] == record.label
                # Each winner's stage really voted the final label.
                for winner in winners:
                    voted = [
                        label
                        for trace in record.stages
                        for label, _weight, source in trace.votes
                        if vote_rule_id(source) == winner
                    ]
                    assert record.label in voted
        for item in result.rejected:
            chain = chimera.why(item.item_id)
            assert chain and chain[-1].source == "gate-reject"
            assert chain[-1].label is None

    def test_blame_is_the_inverse_of_fired(self, classified):
        chimera, _result = classified
        log = chimera.quality.provenance
        fired_index = {}
        for record in log.records:
            for rule_id in record.fired_rule_ids():
                fired_index.setdefault(rule_id, []).append(record.item_id)
        assert fired_index, "expected the golden ruleset to fire somewhere"
        for rule_id, item_ids in fired_index.items():
            blamed = [record.item_id for record in chimera.blame(rule_id)]
            assert blamed == item_ids
        # And blame never invents records for silent rules.
        assert chimera.blame("no-such-rule") == []

    def test_health_totals_match_provenance(self, classified, golden_items):
        chimera, _result = classified
        health = chimera.quality.health
        assert health.total_batches == 1
        assert health.total_items == len(golden_items)
        fired_total = sum(
            len(record.fired_rule_ids())
            for record in chimera.quality.provenance.records
        )
        assert sum(health.total_fires.values()) == fired_total


# ---------------------------------------------------------------------------
# 4. Drift detection end to end
# ---------------------------------------------------------------------------


class TestDriftDetection:
    def test_vocabulary_shift_raises_fire_rate_drift(self):
        rules = parse_rules("""
            rings? -> rings
            lamps? -> lamps
        """)
        rings_id = rules[0].rule_id
        chimera = Chimera.build(seed=11)
        chimera.add_whitelist_rules(rules)
        tracker = RuleHealthTracker(
            window=8, baseline_batches=2, drift_min_delta=0.1, drift_tolerance=0.5
        )
        chimera.enable_quality_telemetry(QualityTelemetry(health=tracker))

        def batch(titles, tag):
            return [
                ProductItem(item_id=f"{tag}-{i}", title=title)
                for i, title in enumerate(titles)
            ]

        steady = ["gold ring", "brass lamp", "silver rings", "desk lamp"] * 5
        chimera.classify_batch(batch(steady, "b0"))
        chimera.classify_batch(batch(steady, "b1"))
        assert tracker.baseline is not None
        assert tracker.alerts == []

        # The catalog vocabulary shifts: "ring" disappears from titles.
        shifted = ["brass lamp", "floor lamp", "desk lamp", "lamp shade"] * 5
        chimera.classify_batch(batch(shifted, "b2"))

        drift = [a for a in tracker.alerts if a.kind == "fire-rate-drift"]
        assert drift, "vocabulary shift should raise a drift alert"
        assert rings_id in drift[0].rule_ids
        assert tracker.health(rings_id).drifted
