"""Unit tests for the rule-quality telemetry subsystem.

Covers the provenance layer (ring buffer, spooling, why/blame), the
per-rule health tracker (windows, baseline drift, precision joins,
alert fan-out), the incident wiring (watch_quality auto-open, rule-level
scale-down/restore), the bounded-history satellites (PrecisionMonitor
retention, MetricsRegistry label cardinality), and the ``repro monitor``
CLI. The cross-cutting byte-identity properties live in
``tests/test_quality_properties.py``.
"""

from __future__ import annotations

import io
import json
import pathlib

import pytest

from repro.chimera import Chimera
from repro.chimera.incidents import IncidentManager
from repro.chimera.monitoring import PrecisionMonitor
from repro.core import parse_rules
from repro.observability import Observability
from repro.observability.metrics import (
    DEFAULT_MAX_RULE_LABELS,
    OTHER_RULE_LABEL,
    MetricsRegistry,
)
from repro.observability.provenance import (
    ProvenanceLog,
    ProvenanceRecord,
    StageTrace,
    render_record,
    vote_rule_id,
)
from repro.observability.quality import (
    QualityTelemetry,
    RuleAlert,
    RuleHealthTracker,
)

GOLDEN = pathlib.Path(__file__).parent / "golden"


def make_record(
    item_id,
    label,
    *,
    seq=0,
    batch_id="b0",
    source="pipeline",
    stages=(),
    ranked=(),
    final=None,
    filter_fired=(),
    filter_vetoed=(),
):
    return ProvenanceRecord(
        seq,
        item_id,
        batch_id,
        label,
        source,
        "classify",
        "",
        tuple(stages),
        tuple(ranked),
        final,
        tuple(filter_fired),
        tuple(filter_vetoed),
    )


def rule_trace(stage, fired, label=None, weight=1.0):
    votes = (
        tuple((label, weight, f"{stage}:{rule_id}") for rule_id in fired)
        if label is not None
        else ()
    )
    return StageTrace(stage, tuple(fired), votes)


# ---------------------------------------------------------------------------
# ProvenanceRecord / StageTrace
# ---------------------------------------------------------------------------


class TestProvenanceRecord:
    def test_fired_rule_ids_merges_stages_and_filter(self):
        record = make_record(
            "i1",
            "rings",
            stages=(
                rule_trace("rule-based", ("r1", "r2")),
                rule_trace("attr-value", ("r2", "r3")),
            ),
            filter_fired=("r3", "r4"),
        )
        # First-seen order, duplicates across stages collapsed.
        assert record.fired_rule_ids() == ("r1", "r2", "r3", "r4")

    def test_fired_rule_ids_single_stage_fast_path(self):
        trace = rule_trace("rule-based", ("r1", "r2"))
        record = make_record("i1", "rings", stages=(trace,))
        assert record.fired_rule_ids() == ("r1", "r2")
        # Memoized: the same tuple comes back on re-query.
        assert record.fired_rule_ids() is record.fired_rule_ids()

    def test_winning_rule_ids_match_final_label(self):
        record = make_record(
            "i1",
            "rings",
            stages=(
                rule_trace("rule-based", ("r1",), label="rings"),
                rule_trace("attr-value", ("r2",), label="jeans"),
            ),
        )
        assert record.winning_rule_ids() == ("r1",)

    def test_winning_rule_ids_empty_without_label(self):
        record = make_record(
            "i1", None, source="low-confidence-or-filtered",
            stages=(rule_trace("rule-based", ("r1",), label="rings"),),
        )
        assert record.winning_rule_ids() == ()

    def test_learning_votes_never_win_as_rules(self):
        # A learning vote's source names the model, not a fired rule, so
        # it must not show up as a winning *rule* id.
        trace = StageTrace("learning", (), (("rings", 0.8, "learning:nb"),))
        record = make_record("i1", "rings", stages=(trace,))
        assert record.winning_rule_ids() == ()
        assert vote_rule_id("learning:nb") == "nb"

    def test_round_trip_dict(self):
        record = make_record(
            "i1",
            "rings",
            seq=7,
            stages=(
                StageTrace(
                    "rule-based",
                    ("r1",),
                    (("rings", 1.0, "rule-based:r1"),),
                    ("jeans",),
                    ("rings", "jewelry"),
                ),
            ),
            ranked=(("rings", 0.9), ("jeans", 0.1)),
            final=("rings", 0.9),
            filter_fired=("f1",),
            filter_vetoed=("jeans",),
        )
        clone = ProvenanceRecord.from_dict(
            json.loads(json.dumps(record.to_dict()))
        )
        assert clone == record
        assert clone.stages[0].constrained_to == ("rings", "jewelry")

    def test_render_record_names_the_chain(self):
        record = make_record(
            "i1",
            "rings",
            stages=(rule_trace("rule-based", ("r1",), label="rings"),),
            ranked=(("rings", 1.0),),
            final=("rings", 1.0),
        )
        rendered = "\n".join(render_record(record))
        assert "item i1" in rendered
        assert "r1" in rendered
        assert "voting master" in rendered


# ---------------------------------------------------------------------------
# ProvenanceLog
# ---------------------------------------------------------------------------


class TestProvenanceLog:
    def test_seq_assignment_is_monotonic(self):
        log = ProvenanceLog(capacity=10)
        first = log.record(make_record("a", "rings"))
        second = log.record(make_record("b", "rings"))
        assert (first.seq, second.seq) == (1, 2)
        # An explicit seq keeps later auto-assignment monotonic past it.
        log.record(make_record("c", "rings", seq=10))
        assert log.record(make_record("d", "rings")).seq == 11

    def test_why_returns_item_history_oldest_first(self):
        log = ProvenanceLog(capacity=10)
        log.record(make_record("a", None, source="no-votes"))
        log.record(make_record("b", "jeans"))
        log.record(make_record("a", "rings"))
        labels = [record.label for record in log.why("a")]
        assert labels == [None, "rings"]
        assert log.why("missing") == []

    def test_ring_eviction_keeps_capacity_and_deindexes(self):
        log = ProvenanceLog(capacity=3)
        for index in range(5):
            log.record(make_record(f"item-{index}", "rings"))
        assert len(log) == 3
        assert log.total_records == 5
        assert log.evicted_records == 2
        assert log.why("item-0") == []
        assert log.why("item-1") == []
        assert [record.item_id for record in log.records] == [
            "item-2", "item-3", "item-4",
        ]

    def test_eviction_spools_jsonl(self):
        spool = io.StringIO()
        log = ProvenanceLog(capacity=2, spool=spool)
        for index in range(4):
            log.record(make_record(f"item-{index}", "rings"))
        spool.seek(0)
        spooled = ProvenanceLog.read_jsonl(spool)
        assert [record.item_id for record in spooled] == ["item-0", "item-1"]

    def test_rotate_spools_everything_and_clears(self):
        spool = io.StringIO()
        log = ProvenanceLog(capacity=10, spool=spool)
        for index in range(3):
            log.record(make_record(f"item-{index}", "rings"))
        assert log.rotate() == 3
        assert len(log) == 0
        spool.seek(0)
        assert len(ProvenanceLog.read_jsonl(spool)) == 3

    def test_on_evict_hook_sees_records_in_order(self):
        evicted = []
        log = ProvenanceLog(capacity=2, on_evict=evicted.append)
        for index in range(4):
            log.record(make_record(f"item-{index}", "rings"))
        assert [record.item_id for record in evicted] == ["item-0", "item-1"]

    def test_blame_scans_fired_rules(self):
        log = ProvenanceLog(capacity=10)
        log.record(make_record(
            "a", "rings", stages=(rule_trace("rule-based", ("r1",), "rings"),)
        ))
        log.record(make_record(
            "b", "jeans", stages=(rule_trace("rule-based", ("r2",), "jeans"),)
        ))
        log.record(make_record(
            "c", "rings", stages=(rule_trace("rule-based", ("r1", "r2"), "rings"),)
        ))
        assert [record.item_id for record in log.blame("r1")] == ["a", "c"]
        summary = log.blame_summary("r1")
        assert summary["records"] == 2
        assert summary["wins"] == 2
        assert summary["labels"] == {"rings": 2}
        assert summary["items"] == ["a", "c"]

    def test_records_for_type_and_explain(self):
        log = ProvenanceLog(capacity=10)
        log.record(make_record("a", "rings"))
        log.record(make_record("b", "jeans"))
        assert [r.item_id for r in log.records_for_type("rings")] == ["a"]
        assert "item a" in log.explain("a")
        assert "no provenance retained" in log.explain("zzz")

    def test_write_jsonl_round_trip(self, tmp_path):
        log = ProvenanceLog(capacity=10)
        originals = [
            log.record(make_record(
                f"item-{i}", "rings",
                stages=(rule_trace("rule-based", ("r1",), "rings"),),
            ))
            for i in range(3)
        ]
        target = tmp_path / "prov.jsonl"
        assert log.write_jsonl(str(target)) == 3
        assert ProvenanceLog.read_jsonl(str(target)) == originals

    def test_spool_path_owned_handle(self, tmp_path):
        target = tmp_path / "spool.jsonl"
        log = ProvenanceLog(capacity=1, spool=str(target))
        log.record(make_record("a", "rings"))
        log.record(make_record("b", "rings"))
        log.close()
        assert [r.item_id for r in ProvenanceLog.read_jsonl(str(target))] == ["a"]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ProvenanceLog(capacity=0)


# ---------------------------------------------------------------------------
# RuleHealthTracker
# ---------------------------------------------------------------------------


class FakeEstimate:
    def __init__(self, precision, low=None, high=None, sample_size=10):
        self.precision = precision
        self.low = low if low is not None else max(0.0, precision - 0.1)
        self.high = high if high is not None else min(1.0, precision + 0.1)
        self.sample_size = sample_size


class FakeReport:
    def __init__(self, estimates):
        self.estimates = estimates


class TestRuleHealthTracker:
    def test_fire_rate_over_window(self):
        tracker = RuleHealthTracker(window=4, baseline_batches=1)
        tracker.observe_fired_map({"a": ("r1",), "b": ("r1", "r2"), "c": ()})
        assert tracker.fire_rate("r1") == pytest.approx(2 / 3)
        assert tracker.fire_rate("r2") == pytest.approx(1 / 3)
        assert tracker.fire_rate("never") == 0.0

    def test_fired_map_feed_leaves_win_rate_undefined(self):
        tracker = RuleHealthTracker(window=4, baseline_batches=1)
        tracker.observe_fired_map({"a": ("r1",)})
        assert tracker.win_rate("r1") is None

    def test_win_rate_from_provenance_records(self):
        tracker = RuleHealthTracker(window=4, baseline_batches=1)
        tracker.observe_record(make_record(
            "a", "rings", stages=(rule_trace("rule-based", ("r1",), "rings"),)
        ))
        tracker.observe_record(make_record(
            "b", "jeans", stages=(rule_trace("rule-based", ("r1",), "rings"),)
        ))
        tracker.finish_batch("b0")
        assert tracker.win_rate("r1") == pytest.approx(0.5)

    def test_observe_record_defers_until_finish_batch(self):
        tracker = RuleHealthTracker(window=4, baseline_batches=1)
        tracker.observe_record(make_record(
            "a", "rings", stages=(rule_trace("rule-based", ("r1",), "rings"),)
        ))
        # Nothing folded yet: the per-item path is a single list append.
        assert tracker.total_batches == 0
        assert tracker.fire_rate("r1") == 0.0
        batch = tracker.finish_batch("b0")
        assert batch.n_items == 1
        assert dict(batch.fires) == {"r1": 1}

    def test_overlap_counts_cofired_pairs(self):
        tracker = RuleHealthTracker(window=4, baseline_batches=1)
        tracker.observe_fired_map({
            "a": ("r1", "r2"),
            "b": ("r2", "r1"),
            "c": ("r1",),
        })
        assert dict(tracker.overlap_for("r1")) == {"r2": 2}
        assert dict(tracker.overlap_for("r2")) == {"r1": 2}

    def test_baseline_freezes_then_drift_alerts(self):
        tracker = RuleHealthTracker(
            window=8, baseline_batches=2, drift_min_delta=0.1, drift_tolerance=0.5
        )
        steady = {f"item-{i}": ("r1",) for i in range(10)}
        tracker.observe_fired_map(dict(steady), batch_id="base-0")
        assert tracker.baseline is None
        tracker.observe_fired_map(dict(steady), batch_id="base-1")
        assert tracker.baseline == {"r1": pytest.approx(1.0)}
        assert tracker.alerts == []

        # The rule stops firing entirely: a full-scale drift.
        quiet = {f"item-{i}": () for i in range(10)}
        tracker.observe_fired_map(quiet, batch_id="drifted")
        assert len(tracker.alerts) == 1
        alert = tracker.alerts[0]
        assert alert.kind == "fire-rate-drift"
        assert alert.rule_ids == ("r1",)
        assert alert.batch_id == "drifted"
        assert "r1" in tracker.drifted_rules
        assert tracker.health("r1").drifted

    def test_small_wobble_does_not_alert(self):
        tracker = RuleHealthTracker(
            window=8, baseline_batches=1, drift_min_delta=0.1, drift_tolerance=0.5
        )
        half = {f"item-{i}": (("r1",) if i % 2 else ()) for i in range(10)}
        tracker.observe_fired_map(half, batch_id="base")
        slightly_more = {
            f"item-{i}": (("r1",) if i % 2 or i == 0 else ()) for i in range(10)
        }
        tracker.observe_fired_map(slightly_more, batch_id="next")
        assert tracker.alerts == []

    def test_ingest_precision_flags_floor_breaches(self):
        tracker = RuleHealthTracker(precision_floor=0.92)
        report = FakeReport({
            "good": FakeEstimate(0.97, sample_size=20),
            "bad": FakeEstimate(0.60, sample_size=15),
            "worse": FakeEstimate(0.40, sample_size=8),
        })
        breaches = tracker.ingest_precision(report, batch_id="crowd-1")
        assert breaches == ["bad", "worse"]
        assert tracker.rules_below_floor() == ["bad", "worse"]
        assert len(tracker.alerts) == 1
        alert = tracker.alerts[0]
        assert alert.kind == "precision-floor"
        assert alert.rule_ids == ("bad", "worse")
        assert "0.92" in alert.detail

        health = tracker.health("bad")
        assert health.precision == pytest.approx(0.60)
        assert health.below_floor
        assert health.precision_sample == 15
        assert not tracker.health("good").below_floor

    def test_alert_callbacks_and_metrics_mirror(self):
        registry = MetricsRegistry()
        tracker = RuleHealthTracker(metrics=registry)
        seen = []
        tracker.on_alert.append(seen.append)
        tracker.ingest_precision(FakeReport({"bad": FakeEstimate(0.5)}))
        assert [alert.kind for alert in seen] == ["precision-floor"]
        series = registry.series("rule_quality_alerts_total")
        (name, counter), = series.items()
        assert "precision-floor" in name
        assert counter.value == 1

    def test_report_shape(self):
        tracker = RuleHealthTracker(window=4, baseline_batches=1)
        tracker.observe_fired_map({"a": ("r1",), "b": ("r1",)})
        report = tracker.report()
        assert set(report) == {"r1"}
        entry = report["r1"]
        assert entry["fires"] == 2
        assert entry["fire_rate"] == pytest.approx(1.0)
        assert entry["win_rate"] is None
        assert entry["drifted"] is False

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            RuleHealthTracker(window=0)
        with pytest.raises(ValueError):
            RuleHealthTracker(baseline_batches=0)
        with pytest.raises(ValueError):
            RuleHealthTracker(precision_floor=1.5)


# ---------------------------------------------------------------------------
# QualityTelemetry facade + Chimera wiring
# ---------------------------------------------------------------------------


def build_chimera():
    """(chimera, {target type: rule id}) — rule ids are auto-assigned."""
    chimera = Chimera.build(seed=3)
    rules = parse_rules("""
        rings? -> rings
        (motor|engine) oils? -> motor oil
        denim.*jeans? -> jeans
    """)
    chimera.add_whitelist_rules(rules)
    return chimera, {rule.target_type: rule.rule_id for rule in rules}


def batch_items(n=8):
    from repro.catalog.types import ProductItem

    titles = [
        "diamond ring gold",
        "castrol motor oil 5 quart",
        "relaxed denim jeans",
        "two gold rings boxed",
        "engine oil treatment",
        "unrelated gadget",
        "skinny denim jeans blue",
        "plain widget",
    ]
    return [
        ProductItem(item_id=f"q-{i:02d}", title=titles[i % len(titles)])
        for i in range(n)
    ]


class TestChimeraTelemetryWiring:
    def test_why_blame_require_enabled_telemetry(self):
        chimera, _ = build_chimera()
        with pytest.raises(RuntimeError):
            chimera.why("item")
        with pytest.raises(RuntimeError):
            chimera.blame("rule")

    def test_enable_records_disable_stops(self):
        chimera, rule_ids = build_chimera()
        quality = chimera.enable_quality_telemetry()
        assert chimera.rule_stage.record_provenance
        assert chimera.filter.record_provenance

        items = batch_items()
        result = chimera.classify_batch(items, batch_id="t-0")
        assert quality.provenance.total_records == len(items)
        assert quality.health.total_batches == 1
        classified = [r for r in result.results if r.classified]
        assert classified, "expected the rule corpus to classify something"
        some = classified[0]
        chain = chimera.why(some.item.item_id)
        assert chain and chain[-1].label == some.label
        # blame traces every firing back to its items.
        rings = rule_ids["rings"]
        blamed = chimera.blame(rings)
        assert blamed and all(
            rings in record.fired_rule_ids() for record in blamed
        )

        chimera.disable_quality_telemetry()
        assert not chimera.rule_stage.record_provenance
        before = quality.provenance.total_records
        chimera.classify_batch(batch_items(4))
        assert quality.provenance.total_records == before

    def test_auto_batch_ids_are_sequential(self):
        chimera, _ = build_chimera()
        quality = chimera.enable_quality_telemetry()
        chimera.classify_batch(batch_items(5))
        chimera.classify_batch(batch_items(5))
        batch_ids = {record.batch_id for record in quality.provenance.records}
        assert batch_ids == {"batch-0000", "batch-0001"}

    def test_observability_attach_quality_feeds_fired_maps(self):
        observability = Observability()
        quality = observability.attach_quality()
        observability.observe_fired({"a": ("r1",), "b": ("r1",)})
        assert quality.health.total_batches == 1
        assert quality.health.fire_rate("r1") == pytest.approx(1.0)
        # The metrics mirror got the same counts.
        series = observability.metrics.series("rule_fired_total")
        assert sum(counter.value for counter in series.values()) == 2


# ---------------------------------------------------------------------------
# Incident wiring
# ---------------------------------------------------------------------------


class TestRuleIncidents:
    def test_watch_quality_auto_opens_rule_incident(self):
        chimera, _ = build_chimera()
        tracker = RuleHealthTracker()
        manager = IncidentManager(chimera)
        manager.watch_quality(tracker)
        tracker.ingest_precision(
            FakeReport({"rings": FakeEstimate(0.5)}), batch_id="crowd-7"
        )
        assert len(manager.incidents) == 1
        incident = manager.incidents[0]
        assert incident.kind == "rule-quality"
        assert incident.rule_ids == ("rings",)
        assert incident.status == "open"
        assert any("[precision-floor]" in note and "crowd-7" in note
                   for note in incident.notes)

    def test_watch_quality_accepts_facade(self):
        chimera, _ = build_chimera()
        quality = QualityTelemetry()
        manager = IncidentManager(chimera)
        manager.watch_quality(quality)
        quality.ingest_precision(FakeReport({"rings": FakeEstimate(0.1)}))
        assert [incident.kind for incident in manager.incidents] == ["rule-quality"]

    def test_scale_down_disables_exactly_named_rules(self):
        chimera, rule_ids = build_chimera()
        rings = rule_ids["rings"]
        filter_rules = parse_rules("cheap \\w+ rings? -> NOT rings")
        chimera.add_blacklist_rules(filter_rules, to_filter=True)
        filter_id = filter_rules[0].rule_id
        manager = IncidentManager(chimera)
        incident = manager.open_rule_incident(
            (rings, filter_id, "no-such-rule"), reason="test"
        )
        manager.scale_down(incident)

        assert incident.status == "scaled-down"
        assert not chimera.rule_stage.rules.get(rings).enabled
        assert not chimera.filter.rules.get(filter_id).enabled
        # Untouched rules keep running (compositional containment).
        assert chimera.rule_stage.rules.get(rule_ids["jeans"]).enabled
        assert incident.disabled_rule_ids["rule-based"] == [rings]
        assert incident.disabled_rule_ids["filter"] == [filter_id]
        assert any("not found: no-such-rule" in note for note in incident.notes)

        manager.restore(incident)
        assert incident.status == "closed"
        assert chimera.rule_stage.rules.get(rings).enabled
        assert chimera.filter.rules.get(filter_id).enabled

    def test_scale_down_refuses_stage_failure(self):
        chimera, _ = build_chimera()
        manager = IncidentManager(chimera)
        incident = manager.open_stage_incident("rule-based")
        with pytest.raises(ValueError):
            manager.scale_down(incident)

    def test_rule_incident_requires_rule_ids(self):
        manager = IncidentManager(build_chimera()[0])
        with pytest.raises(ValueError):
            manager.open_rule_incident(())

    def test_watch_health_and_watch_quality_coexist(self):
        chimera, rule_ids = build_chimera()
        rings = rule_ids["rings"]
        tracker = RuleHealthTracker()
        manager = IncidentManager(chimera)
        manager.watch_health()
        manager.watch_quality(tracker)

        # Trip the rule-based stage breaker -> stage incident.
        breaker = chimera.health.breaker("rule-based")
        for _ in range(breaker.failure_threshold):
            chimera.health.record_failure("rule-based", RuntimeError("boom"))
        # And a telemetry degradation -> rule incident, side by side.
        tracker.ingest_precision(FakeReport({rings: FakeEstimate(0.2)}))

        kinds = sorted(incident.kind for incident in manager.incidents)
        assert kinds == ["rule-quality", "stage-failure"]
        rule_incident = next(
            i for i in manager.incidents if i.kind == "rule-quality"
        )
        manager.scale_down(rule_incident)
        assert not chimera.rule_stage.rules.get(rings).enabled


# ---------------------------------------------------------------------------
# Satellite: PrecisionMonitor bounded history
# ---------------------------------------------------------------------------


class TestPrecisionMonitorRetention:
    def test_history_is_bounded_with_rotation_hook(self):
        evicted = []
        monitor = PrecisionMonitor(window=2, retention=5, on_evict=evicted.append)
        for index in range(8):
            monitor.record(f"batch-{index}", float(index), 0.95, 0.8, 100)
        assert len(monitor.history) == 5
        assert monitor.evicted_batches == 3
        assert [stats.batch_id for stats in evicted] == [
            "batch-0", "batch-1", "batch-2",
        ]
        assert monitor.history[0].batch_id == "batch-3"
        # The quality window still works on the retained tail.
        assert monitor.latest.batch_id == "batch-7"

    def test_unbounded_when_retention_none(self):
        monitor = PrecisionMonitor(window=2, retention=None)
        for index in range(100):
            monitor.record(f"batch-{index}", float(index), 0.95, 0.8, 10)
        assert len(monitor.history) == 100
        assert monitor.evicted_batches == 0

    def test_retention_must_cover_window(self):
        with pytest.raises(ValueError):
            PrecisionMonitor(window=5, retention=3)


# ---------------------------------------------------------------------------
# Satellite: MetricsRegistry label cardinality
# ---------------------------------------------------------------------------


class TestMetricsCardinality:
    def test_rule_labels_bounded_with_other_bucket(self):
        registry = MetricsRegistry(max_rule_labels=4)
        fired = {f"item-{i}": tuple(f"rule-{j:02d}" for j in range(10))
                 for i in range(3)}
        registry.observe_fired(fired)
        series = registry.series("rule_fired_total")
        labels = {name for name in series}
        assert len(labels) <= 5  # 4 admitted + __other__
        assert any(OTHER_RULE_LABEL in name for name in labels)
        # Totals are conserved: every fire landed somewhere.
        assert sum(counter.value for counter in series.values()) == 30

    def test_admitted_labels_stay_stable_across_calls(self):
        registry = MetricsRegistry(max_rule_labels=2)
        registry.observe_fired({"a": ("r1", "r2")})
        registry.observe_fired({"b": ("r3", "r1")})
        series = registry.series("rule_fired_total")
        names = "".join(series)
        assert "r1" in names and "r2" in names
        # r3 arrived after the cap: folded to __other__, not admitted.
        assert "r3" not in names
        assert any(OTHER_RULE_LABEL in name for name in series)

    def test_default_cap_is_generous(self):
        assert MetricsRegistry().max_rule_labels == DEFAULT_MAX_RULE_LABELS


# ---------------------------------------------------------------------------
# CLI: repro monitor
# ---------------------------------------------------------------------------


class TestMonitorCli:
    def test_monitor_golden_corpus_smoke(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "health.json"
        rc = main([
            "monitor",
            "--rules", str(GOLDEN / "ruleset.json"),
            "--catalog", str(GOLDEN / "catalog.json"),
            "--batches", "2",
            "--baseline-batches", "1",
            "--json", str(out),
        ])
        assert rc == 0
        captured = capsys.readouterr()
        assert "rule health" in captured.out
        payload = json.loads(out.read_text())
        assert payload["rules"], "health JSON should cover at least one rule"
        sample = next(iter(payload["rules"].values()))
        assert "fire_rate" in sample and "drifted" in sample

    def test_monitor_synthesized_with_drift_flag(self, capsys):
        from repro.cli import main

        rc = main([
            "monitor",
            "--items", "80",
            "--batches", "4",
            "--baseline-batches", "1",
            "--training", "300",
            "--drift",
            "--seed", "5",
        ])
        assert rc == 0
        captured = capsys.readouterr()
        assert "rule health" in captured.out
        assert "injected head-vocabulary drift" in captured.err
