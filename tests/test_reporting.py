"""Tests for per-type batch metrics and crowd dictionary confirmation."""

import pytest

from repro.catalog.types import ProductItem
from repro.chimera.pipeline import BatchResult, ItemResult
from repro.crowd import CrowdBudget, CrowdSynonymJudge, WorkerPool
from repro.ie import DictionaryBuilder


def result(title, true_type, label):
    item = ProductItem(item_id=title[:24], title=title, true_type=true_type)
    return ItemResult(item=item, label=label)


class TestPerTypeMetrics:
    def test_breakdown(self):
        batch = BatchResult(results=[
            result("ring a", "rings", "rings"),
            result("ring b", "rings", "rings"),
            result("ring c", "rings", None),          # declined
            result("key ring", "keychains", "rings"),  # wrong
            result("rug", "area rugs", "area rugs"),
        ])
        metrics = batch.per_type_metrics()
        ring_precision, ring_recall, ring_count = metrics["rings"]
        assert ring_precision == pytest.approx(2 / 3)  # 2 of 3 "rings" labels
        assert ring_recall == pytest.approx(2 / 3)     # 2 of 3 actual rings
        assert ring_count == 3
        keychain_precision, keychain_recall, keychain_count = metrics["keychains"]
        assert keychain_recall == 0.0 and keychain_count == 1
        assert metrics["area rugs"] == (1.0, 1.0, 1)

    def test_aggregate_can_hide_per_type_burn(self):
        results = [result(f"x {i}", "rings", "rings") for i in range(18)]
        results += [result(f"y {i}", "keychains", "rings") for i in range(2)]
        batch = BatchResult(results=results)
        assert batch.true_precision() == 0.9  # looks okay in aggregate
        precision, recall, _ = batch.per_type_metrics()["keychains"]
        assert recall == 0.0  # but keychains are fully misrouted

    def test_empty_batch(self):
        assert BatchResult().per_type_metrics() == {}


class TestCrowdDictionaryConfirmation:
    def test_statistics(self, taxonomy):
        judge = CrowdSynonymJudge(taxonomy, WorkerPool(seed=3),
                                  budget=CrowdBudget(100_000), seed=4)
        yes = sum(judge.confirm_dictionary_entry("brand", "castrol")
                  for _ in range(50))
        no = sum(judge.confirm_dictionary_entry("brand", "premium")
                 for _ in range(50))
        assert yes >= 42
        assert no <= 8

    def test_drives_dictionary_builder(self, taxonomy):
        from repro.catalog import CatalogGenerator
        generator = CatalogGenerator(taxonomy, seed=71)
        corpus = [item.description for item in generator.generate_items(1200)]
        brands = set()
        for product_type in taxonomy:
            brands.update(product_type.brands)
        seeds = sorted(brands)[:3]
        builder = DictionaryBuilder(corpus, seeds=seeds, markers=("brand",))
        judge = CrowdSynonymJudge(taxonomy, WorkerPool(seed=5), seed=6)
        confirmed = builder.build(judge, attribute="brand", pages=4)
        found = confirmed - set(seeds)
        assert len(found & brands) >= 4
        # The crowd occasionally errs, but junk stays rare.
        assert len(found - brands) <= 3
