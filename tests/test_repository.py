"""Tests for the versioned rule repository (changelog, snapshots, rollback)."""

import itertools
import json
import os

import pytest

from repro.chimera import Chimera, IncidentManager
from repro.core import (
    DuplicateRuleError,
    RuleSet,
    UnknownRuleError,
    WhitelistRule,
)
from repro.core.registry import RuleRegistry
from repro.execution.incremental import IncrementalExecutor
from repro.observability.metrics import MetricsRegistry
from repro.repository import (
    ChangeEntry,
    ChangeLog,
    RepositoryError,
    RuleRepository,
    bind_chimera,
)
from repro.utils.clock import SimClock

_ids = itertools.count(1)


def wl(pattern: str, target: str = "rings") -> WhitelistRule:
    return WhitelistRule(pattern, target, rule_id=f"repo-{next(_ids):05d}")


# -- change log -------------------------------------------------------------------


class TestChangeLog:
    def test_append_and_replay(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        with ChangeLog(path) as log:
            log.append(ChangeEntry(seq=1, at=0.5, namespace="em", op="add",
                                   author="alice", rule_id="r1", revision=1,
                                   rule={"kind": "whitelist"}))
            log.append(ChangeEntry(seq=2, at=0.75, namespace="em", op="disable",
                                   author="bob", reason="noisy", rule_id="r1"))
        with ChangeLog(path) as log:
            assert len(log) == 2
            assert log.entries[0].rule == {"kind": "whitelist"}
            assert log.entries[1].reason == "noisy"
            assert log.next_seq == 3

    def test_append_only_seq_enforced(self, tmp_path):
        log = ChangeLog(str(tmp_path / "log.jsonl"))
        log.append(ChangeEntry(seq=1, at=0.0, namespace="em", op="add",
                               author="a", rule_id="r1", revision=1))
        with pytest.raises(ValueError, match="append-only"):
            log.append(ChangeEntry(seq=5, at=0.0, namespace="em", op="remove",
                                   author="a", rule_id="r1"))

    def test_torn_tail_truncated_on_reopen(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        with ChangeLog(path) as log:
            log.append(ChangeEntry(seq=1, at=0.0, namespace="em", op="add",
                                   author="a", rule_id="r1", revision=1))
        with open(path, "ab") as handle:
            handle.write(b'{"seq": 2, "at": 0.1, "ns": "em"')  # crash mid-append
        with ChangeLog(path) as log:
            assert len(log) == 1
            assert log.torn_bytes_repaired > 0
            log.append(ChangeEntry(seq=2, at=0.2, namespace="em", op="remove",
                                   author="a", rule_id="r1"))
        with ChangeLog(path) as log:
            assert [entry.op for entry in log.entries] == ["add", "remove"]

    def test_describe_lines(self):
        entry = ChangeEntry(seq=7, at=1.25, namespace="em", op="disable",
                            author="ops", reason="incident", rule_id="r9")
        text = entry.describe()
        assert "disable r9" in text and "ops" in text and "(incident)" in text


# -- repository core --------------------------------------------------------------


class TestRepository:
    def test_bind_records_existing_rules(self):
        ruleset = RuleSet([wl("rings?"), wl("bands?")], name="em")
        repo = RuleRepository()
        repo.bind("em", ruleset)
        assert repo.rule_ids("em") == sorted(r.rule_id for r in ruleset)
        assert all(entry.op == "add" for entry in repo.changes("em"))

    def test_double_bind_rejected(self):
        repo = RuleRepository()
        ruleset = RuleSet(name="em")
        repo.bind("em", ruleset)
        with pytest.raises(RepositoryError, match="already bound"):
            repo.bind("em", RuleSet(name="other"))

    def test_ruleset_mutations_are_recorded(self):
        ruleset = RuleSet(name="em")
        repo = RuleRepository()
        repo.bind("em", ruleset)
        rule = ruleset.add(wl("rings?"))
        with repo.attribution("alice", "tuning", provenance="ticket-7"):
            ruleset.disable(rule.rule_id)
        ops = [entry.op for entry in repo.changes("em")]
        assert ops == ["add", "disable"]
        disable = repo.changes("em")[-1]
        assert disable.author == "alice"
        assert disable.reason == "tuning"
        assert disable.provenance == "ticket-7"

    def test_attribution_scope_covers_direct_calls(self):
        # Ambient attribution applies to repository-driven mutations too,
        # not just changes arriving through the subscription feed —
        # explicit author/reason arguments still win over the scope.
        repo = RuleRepository()
        rule = wl("rings?")
        with repo.attribution("oncall", "drill", provenance="INC-7"):
            repo.add("em", rule)
            repo.set_enabled("em", rule.rule_id, False)
            repo.set_enabled("em", rule.rule_id, True, author="bob")
            repo.snapshot("mid")
        add, disable, enable, snap = repo.changes("em")
        assert (add.author, add.reason, add.provenance) == (
            "oncall", "drill", "INC-7")
        assert disable.author == "oncall"
        assert enable.author == "bob" and enable.provenance == "INC-7"
        assert snap.author == "oncall"
        # outside any scope, the repository's default author applies
        repo.set_enabled("em", rule.rule_id, False)
        assert repo.changes("em")[-1].author == repo.default_author

    def test_repo_mutations_reach_bound_ruleset_once(self):
        ruleset = RuleSet(name="em")
        repo = RuleRepository()
        repo.bind("em", ruleset)
        rule = wl("rings?")
        repo.add("em", rule, author="alice")
        assert rule.rule_id in ruleset
        repo.set_enabled("em", rule.rule_id, False, author="alice")
        assert not ruleset.is_enabled(rule.rule_id)
        # one log entry per mutation — no echo from the subscription feed
        assert [entry.op for entry in repo.changes("em")] == ["add", "disable"]
        repo.remove("em", rule.rule_id, author="alice")
        assert rule.rule_id not in ruleset

    def test_duplicate_and_unknown_rejected(self):
        repo = RuleRepository()
        rule = wl("rings?")
        repo.add("em", rule)
        with pytest.raises(DuplicateRuleError):
            repo.add("em", rule)
        with pytest.raises(UnknownRuleError):
            repo.remove("em", "nope")
        with pytest.raises(UnknownRuleError):
            repo.set_enabled("em", "nope", True)

    def test_namespaces_are_isolated(self):
        repo = RuleRepository()
        rule = wl("rings?")
        repo.add("em", rule)
        repo.add("ie", wl("rings?"))
        repo.set_enabled("em", rule.rule_id, False)
        assert not repo.is_enabled("em", rule.rule_id)
        assert repo.rule_ids("ie") != repo.rule_ids("em") or \
            repo.is_enabled("ie", repo.rule_ids("ie")[0])

    def test_metrics_recorded_per_namespace_and_op(self):
        metrics = MetricsRegistry()
        repo = RuleRepository(metrics=metrics)
        rule = wl("rings?")
        repo.add("em", rule)
        repo.set_enabled("em", rule.rule_id, False)
        counters = metrics.snapshot()["counters"]
        assert counters["repository_changes_total{ns=em,op=add}"] == 1
        assert counters["repository_changes_total{ns=em,op=disable}"] == 1


class TestSnapshotsAndRollback:
    def test_snapshot_diff_rollback_roundtrip(self):
        ruleset = RuleSet(name="em")
        repo = RuleRepository()
        repo.bind("em", ruleset)
        kept = ruleset.add(wl("rings?"))
        edited = ruleset.add(wl("bands?"))
        dropped = ruleset.add(wl("hoops?"))
        repo.snapshot("v1", author="alice")

        ruleset.disable(kept.rule_id)
        ruleset.replace(WhitelistRule("bands?|ring sets?", "rings",
                                      rule_id=edited.rule_id))
        ruleset.remove(dropped.rule_id)
        ruleset.add(wl("halos?"))

        diff = repo.diff("v1", None)["em"]
        assert len(diff.added) == 1
        assert diff.removed == (dropped.rule_id,)
        assert diff.replaced == (edited.rule_id,)
        assert diff.disabled == (kept.rule_id,)

        result = repo.rollback("v1", author="bob")
        assert (result.flips, result.replaced, result.added, result.removed) \
            == (1, 1, 1, 1)
        assert repo.diff("v1", None)["em"].empty
        assert ruleset.is_enabled(kept.rule_id)
        assert dropped.rule_id in ruleset
        assert ruleset.get(edited.rule_id).pattern == "bands?"

    def test_rollback_restores_snapshot_revisions(self):
        """Re-added rules come back at their recorded revision, so the
        (rule_id, revision) identity names the byte-identical payload."""
        repo = RuleRepository()
        rule = wl("rings?")
        repo.add("em", rule)
        revision = repo.revision("em", rule.rule_id)
        repo.snapshot("v1")
        repo.remove("em", rule.rule_id)
        repo.rollback("v1")
        assert repo.revision("em", rule.rule_id) == revision
        assert repo.diff("v1", None)["em"].empty

    def test_structural_sharing_no_payload_copies(self):
        """Snapshots store (rule_id, revision) pairs; N snapshots do not
        multiply stored payloads."""
        repo = RuleRepository()
        for _ in range(20):
            repo.add("em", wl("rings?"))
        payloads_before = len(repo._ns("em").payloads)
        for index in range(10):
            repo.snapshot(f"s{index}")
        assert len(repo._ns("em").payloads) == payloads_before
        for index in range(10):
            assert len(repo.get_snapshot(f"s{index}")["em"].entries) == 20

    def test_snapshot_names_immutable(self):
        repo = RuleRepository()
        repo.add("em", wl("rings?"))
        repo.snapshot("v1")
        with pytest.raises(RepositoryError, match="already exists"):
            repo.snapshot("v1")
        with pytest.raises(RepositoryError, match="unknown snapshot"):
            repo.rollback("v9")

    def test_blame_newest_first_with_provenance(self):
        repo = RuleRepository()
        rule = wl("rings?")
        repo.add("em", rule, author="alice", reason="seed")
        with repo.attribution("ops", "incident", provenance="incident-0001"):
            repo.set_enabled("em", rule.rule_id, False)
        entries = repo.blame(rule.rule_id)
        assert [entry.op for entry in entries] == ["disable", "add"]
        assert entries[0].provenance == "incident-0001"
        assert entries[1].author == "alice"
        assert repo.blame("never-seen") == []


class TestPersistence:
    def test_reopen_replays_identical_state(self, tmp_path):
        root = str(tmp_path / "store")
        with RuleRepository.open(root) as repo:
            ruleset = RuleSet(name="em")
            repo.bind("em", ruleset)
            a = ruleset.add(wl("rings?"))
            ruleset.add(wl("bands?"))
            repo.snapshot("v1")
            ruleset.disable(a.rule_id)
            state = {
                "ids": repo.rule_ids("em"),
                "revisions": [repo.revision("em", r) for r in repo.rule_ids("em")],
                "enabled": [repo.is_enabled("em", r) for r in repo.rule_ids("em")],
                "changes": len(repo.log),
            }
        with RuleRepository.open(root) as repo:
            assert repo.rule_ids("em") == state["ids"]
            assert [repo.revision("em", r) for r in repo.rule_ids("em")] \
                == state["revisions"]
            assert [repo.is_enabled("em", r) for r in repo.rule_ids("em")] \
                == state["enabled"]
            assert len(repo.log) == state["changes"]
            assert repo.snapshot_names() == ["v1"]
            # and rollback still works from replayed payloads
            repo.rollback("v1")
            assert repo.diff("v1", None)["em"].empty

    def test_rebind_after_reopen_is_idempotent(self, tmp_path):
        root = str(tmp_path / "store")
        rule = wl("rings?")
        with RuleRepository.open(root) as repo:
            ruleset = RuleSet([rule], name="em")
            repo.bind("em", ruleset)
            changes = len(repo.log)
        with RuleRepository.open(root) as repo:
            rebuilt = RuleSet([rule], name="em")
            repo.bind("em", rebuilt)
            # reconciliation found nothing new: no extra entries
            assert len(repo.log) == changes

    def test_import_registry_carries_audit_trail(self):
        registry = RuleRegistry(clock=SimClock())
        rule = wl("rings?")
        registry.submit(rule, actor="alice")
        registry.validate(rule.rule_id, 0.97, actor="lead")
        registry.deploy(rule.rule_id, actor="lead")
        repo = RuleRepository()
        assert repo.import_registry(registry, namespace="em") == 1
        assert repo.rule_ids("em") == [rule.rule_id]
        assert repo.is_enabled("em", rule.rule_id)
        audit_ops = [entry for entry in repo.changes("em")
                     if entry.op == "audit-import"]
        assert len(audit_ops) == len(registry.audit_log)
        assert any("deploy" in entry.reason for entry in audit_ops)


# -- acceptance: zero-evaluation rollback at scale --------------------------------


class TestZeroEvaluationRollback:
    def test_1k_rule_rollback_zero_evaluations_byte_identical(self):
        """Rolling a 1000-rule namespace back to a snapshot that only
        differs in enabled flags performs ZERO rule evaluations and
        restores a byte-identical fired map."""
        rules = [
            WhitelistRule(f"tok{i:04d}", "t", rule_id=f"bulk-{i:04d}")
            for i in range(1000)
        ]
        ruleset = RuleSet(rules, name="bulk")
        from repro.catalog.types import ProductItem
        items = [
            ProductItem(item_id=f"item-{i:04d}", title=f"tok{i % 1000:04d} thing")
            for i in range(300)
        ]
        executor = IncrementalExecutor.for_ruleset(ruleset, items=items)
        repo = RuleRepository()
        repo.bind("bulk", ruleset)
        baseline = json.dumps(executor.fired_map(), sort_keys=True)
        repo.snapshot("good", author="ops")

        for rule in rules[::3]:
            ruleset.disable(rule.rule_id)
        evaluations = executor.stats.rule_evaluations
        store_generation = executor.store.generation

        result = repo.rollback("good", author="ops", reason="bad deploy")
        assert result.flips == len(rules[::3])
        assert result.replaced == result.added == result.removed == 0
        # the incremental engine's zero-evaluation path: condition-truth is
        # untouched, enabled is a view filter
        assert executor.stats.rule_evaluations == evaluations
        assert executor.store.generation == store_generation
        assert json.dumps(executor.fired_map(), sort_keys=True) == baseline

    def test_scale_down_then_rollback_byte_identical(self):
        """The §2.2 sequence: incident scale-down, then repository rollback
        instead of a manual restore — fired map byte-identical, audit log
        blames the incident."""
        chimera = Chimera.build(seed=11)
        rules = [
            WhitelistRule(f"word{i:03d}", "t", rule_id=f"ops-{i:03d}")
            for i in range(40)
        ]
        chimera.add_whitelist_rules(rules)
        from repro.catalog.types import ProductItem
        items = [
            ProductItem(item_id=f"i-{i:03d}", title=f"word{i % 40:03d} object")
            for i in range(120)
        ]
        tracker = chimera.track_fired_map("rule-based", items=items)
        repo = RuleRepository()
        bind_chimera(repo, chimera)
        manager = IncidentManager(chimera, repository=repo)

        baseline = json.dumps(tracker.fired_map(), sort_keys=True)
        repo.snapshot("pre-incident", author="ops")
        evaluations = tracker.stats.rule_evaluations

        incident = manager.open_rule_incident(
            [rule.rule_id for rule in rules[:15]], reason="precision floor"
        )
        manager.scale_down(incident)
        assert json.dumps(tracker.fired_map(), sort_keys=True) != baseline

        result = repo.rollback("pre-incident", author="ops")
        assert result.flips == 15
        assert result.total_ops == 15
        assert tracker.stats.rule_evaluations == evaluations
        assert json.dumps(tracker.fired_map(), sort_keys=True) == baseline

        # every scale-down disable is blamed on the incident
        blamed = repo.blame(rules[0].rule_id)
        disable = next(entry for entry in blamed if entry.op == "disable")
        assert disable.author == "incident-manager"
        assert disable.provenance == incident.incident_id


# -- the repro repo CLI -----------------------------------------------------------


class TestRepoCli:
    @pytest.fixture()
    def store(self, tmp_path):
        from repro.core import save_ruleset

        root = str(tmp_path / "store")
        rules_path = str(tmp_path / "rules.json")
        save_ruleset(RuleSet([wl("rings?"), wl("bands?")], name="seed"),
                     rules_path)
        return root, rules_path

    def run(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_import_snapshot_log_blame(self, store, capsys):
        root, rules_path = store
        assert self.run("repo", "import", "--root", root, "--ns", "em",
                        rules_path, "--author", "alice") == 0
        assert self.run("repo", "snapshot", "--root", root, "v1",
                        "--author", "alice") == 0
        assert self.run("repo", "log", "--root", root) == 0
        out = capsys.readouterr().out
        assert "add" in out and "snapshot 'v1'" in out
        with RuleRepository.open(root) as repo:
            rule_id = repo.rule_ids("em")[0]
        assert self.run("repo", "blame", "--root", root, rule_id) == 0
        assert "alice" in capsys.readouterr().out

    def test_diff_and_rollback(self, store, capsys):
        root, rules_path = store
        self.run("repo", "import", "--root", root, "--ns", "em", rules_path)
        self.run("repo", "snapshot", "--root", root, "v1")
        with RuleRepository.open(root) as repo:
            repo.set_enabled("em", repo.rule_ids("em")[0], False,
                             author="ops", reason="noisy")
        assert self.run("repo", "diff", "--root", root, "v1", "HEAD") == 0
        assert "disabled" in capsys.readouterr().out
        assert self.run("repo", "rollback", "--root", root, "v1",
                        "--author", "ops") == 0
        assert "1 flips" in capsys.readouterr().out
        self.run("repo", "diff", "--root", root, "v1", "HEAD")
        assert "no differences" in capsys.readouterr().out

    def test_unknown_snapshot_is_an_error(self, store, capsys):
        root, rules_path = store
        self.run("repo", "import", "--root", root, "--ns", "em", rules_path)
        assert self.run("repo", "rollback", "--root", root, "missing") == 1
        assert "unknown snapshot" in capsys.readouterr().err
