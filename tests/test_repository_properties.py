"""Durability and rule-state properties for the repository layer.

Covers the bugfix sweep's regression surface: crash-safe atomic writes
and fsync'd appends (:mod:`repro.core.durability`), cross-ruleset rule
aliasing, token-based subscriptions, and the revision-watermark
versioned-identity guarantee under remove/re-add churn.
"""

import itertools
import json
import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RuleSet, WhitelistRule, load_ruleset, save_ruleset
from repro.core.durability import (
    JsonlAppender,
    atomic_write_json,
    atomic_write_text,
    read_jsonl,
    scan_jsonl,
)
from repro.repository import ChangeEntry, ChangeLog, RuleRepository

_ids = itertools.count(1)


def wl(pattern: str = "rings?", target: str = "rings") -> WhitelistRule:
    return WhitelistRule(pattern, target, rule_id=f"prop-{next(_ids):05d}")


# -- atomic writes ----------------------------------------------------------------


class TestAtomicWrite:
    def test_replaces_content_and_leaves_no_temp_files(self, tmp_path):
        path = str(tmp_path / "doc.json")
        for payload in ({"v": 1}, {"v": 2}, {"v": 3}):
            atomic_write_json(path, payload)
        with open(path) as handle:
            assert json.load(handle) == {"v": 3}
        assert os.listdir(tmp_path) == ["doc.json"]

    def test_unique_temp_names_no_interleaved_corruption(self, tmp_path):
        """Two in-flight writers never share a temp file (the old fixed
        ``f"{path}.tmp"`` name let them corrupt each other)."""
        import tempfile as tempfile_module

        path = str(tmp_path / "doc.json")
        seen = []
        original = tempfile_module.mkstemp

        def spy(*args, **kwargs):
            fd, name = original(*args, **kwargs)
            seen.append(name)
            return fd, name

        tempfile_module.mkstemp, saved = spy, tempfile_module.mkstemp
        try:
            atomic_write_text(path, "a")
            atomic_write_text(path, "b")
        finally:
            tempfile_module.mkstemp = saved
        assert len(seen) == 2 and seen[0] != seen[1]

    def test_failed_write_cleans_temp_and_keeps_old_content(self, tmp_path):
        path = str(tmp_path / "doc.json")
        atomic_write_text(path, "original")
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})
        with open(path) as handle:
            assert handle.read() == "original"
        assert os.listdir(tmp_path) == ["doc.json"]

    def test_ruleset_save_load_save_byte_identical(self, tmp_path):
        ruleset = RuleSet([wl("rings?"), wl("bands?", "rings")], name="rt")
        ruleset.disable(next(iter(ruleset)).rule_id)
        first = str(tmp_path / "first.json")
        second = str(tmp_path / "second.json")
        save_ruleset(ruleset, first)
        save_ruleset(load_ruleset(first), second)
        with open(first, "rb") as a, open(second, "rb") as b:
            assert a.read() == b.read()


# -- crash-kill during append -----------------------------------------------------


def _entry(seq: int) -> ChangeEntry:
    return ChangeEntry(seq=seq, at=float(seq), namespace="em", op="add",
                       author="a", rule_id=f"r{seq}", revision=seq,
                       rule={"pad": "x" * seq})


class TestCrashDuringAppend:
    def test_any_byte_truncation_leaves_log_readable(self, tmp_path):
        """Kill the appender at ANY byte offset: every complete record
        before the cut survives, the torn tail is ignored — the store is
        always readable at the previous durable state."""
        path = str(tmp_path / "log.jsonl")
        with ChangeLog(path) as log:
            for seq in range(1, 6):
                log.append(_entry(seq))
        with open(path, "rb") as handle:
            raw = handle.read()
        boundaries = [i for i, byte in enumerate(raw) if byte == ord("\n")]
        for cut in range(len(raw) + 1):
            crashed = str(tmp_path / "crashed.jsonl")
            with open(crashed, "wb") as handle:
                handle.write(raw[:cut])
            records, torn = scan_jsonl(crashed)
            complete = sum(1 for b in boundaries if b < cut)
            assert len(records) == complete
            assert [r["seq"] for r in records] == list(range(1, complete + 1))
            assert torn == cut - (boundaries[complete - 1] + 1 if complete else 0)

    def test_reopen_after_crash_continues_cleanly(self, tmp_path):
        """A ChangeLog reopened over a torn tail truncates it and appends
        on a clean line boundary — no record ever concatenates onto a
        torn fragment."""
        path = str(tmp_path / "log.jsonl")
        with ChangeLog(path) as log:
            log.append(_entry(1))
            log.append(_entry(2))
        size = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(b'{"seq": 3, "at": 3.0, "ns": "em", "op"')
        with ChangeLog(path) as log:
            assert log.torn_bytes_repaired > 0
            assert os.path.getsize(path) == size
            log.append(_entry(3))
        records, torn = scan_jsonl(path)
        assert torn == 0
        assert [r["seq"] for r in records] == [1, 2, 3]

    def test_repository_survives_crash_kill_mid_append(self, tmp_path):
        """End to end: crash-kill the repository between fsync'd appends;
        reopening replays exactly the acknowledged changes."""
        root = str(tmp_path / "store")
        with RuleRepository.open(root) as repo:
            for _ in range(5):
                repo.add("em", wl())
            acked = repo.rule_ids("em")
        log_path = os.path.join(root, "changelog.jsonl")
        with open(log_path, "ab") as handle:
            handle.write(b'{"seq": 6, "at": 9.9, "ns": "em", "op": "add"')
        with RuleRepository.open(root) as repo:
            assert repo.rule_ids("em") == acked
            assert repo.log.torn_bytes_repaired > 0

    def test_appender_records_are_one_line_each(self, tmp_path):
        path = str(tmp_path / "data.jsonl")
        with JsonlAppender(path) as appender:
            for index in range(10):
                appender.append({"i": index, "text": "x\ny"})
        records = read_jsonl(path)
        assert [r["i"] for r in records] == list(range(10))
        assert all(r["text"] == "x\ny" for r in records)


# -- rule aliasing regression (satellite 2) ---------------------------------------


class TestRuleAliasing:
    def test_two_rulesets_sharing_a_rule_do_not_alias(self):
        """Regression: two rule sets built from the same Rule object used
        to share its mutable ``enabled`` flag — disabling in one silently
        disabled it in the other."""
        rule = wl("rings?")
        a = RuleSet([rule], name="a")
        b = RuleSet([rule], name="b")
        a.disable(rule.rule_id)
        assert not a.is_enabled(rule.rule_id)
        assert b.is_enabled(rule.rule_id)  # b is unaffected
        assert rule.enabled  # the caller's object is unaffected too
        b_events = []
        b.subscribe(lambda event, r: b_events.append(event))
        a.enable(rule.rule_id)
        assert b_events == []  # a's mutations never leak into b's feed

    def test_registry_deployed_ruleset_does_not_alias_registry_state(self):
        from repro.core.registry import RuleRegistry

        registry = RuleRegistry()
        rule = wl("rings?")
        registry.submit(rule)
        registry.validate(rule.rule_id, 0.99)
        registry.deploy(rule.rule_id)
        deployed = registry.deployed_ruleset()
        deployed.disable(rule.rule_id)
        # the registry's own copy of the lifecycle state is untouched
        assert registry.get(rule.rule_id).enabled


# -- subscriptions (satellite 4) --------------------------------------------------


class TestSubscriptionTokens:
    def test_double_subscribe_unsubscribes_independently(self):
        ruleset = RuleSet(name="s")
        calls = []

        def listener(event, rule):
            calls.append(event)

        first = ruleset.subscribe(listener)
        second = ruleset.subscribe(listener)
        ruleset.add(wl())
        assert calls == ["added", "added"]
        first()  # removing one registration must not remove the other
        ruleset.add(wl())
        assert calls == ["added", "added", "added"]
        second()
        ruleset.add(wl())
        assert calls == ["added", "added", "added"]
        first()  # idempotent

    def test_unsubscribe_is_stable_under_other_unsubscribes(self):
        ruleset = RuleSet(name="s")
        seen = {"a": 0, "b": 0}
        unsub_a = ruleset.subscribe(lambda e, r: seen.__setitem__("a", seen["a"] + 1))
        ruleset.subscribe(lambda e, r: seen.__setitem__("b", seen["b"] + 1))
        unsub_a()
        ruleset.add(wl())
        assert seen == {"a": 0, "b": 1}


# -- revision watermark (satellite 3) ---------------------------------------------


class TestRevisionWatermark:
    def test_revisions_monotone_across_remove_readd(self):
        ruleset = RuleSet(name="w")
        rule = wl("rings?")
        ruleset.add(rule)
        r1 = ruleset.revision(rule.rule_id)
        ruleset.replace(rule)
        r2 = ruleset.revision(rule.rule_id)
        ruleset.remove(rule.rule_id)
        ruleset.add(rule)
        r3 = ruleset.revision(rule.rule_id)
        assert r1 < r2 < r3

    def test_revisions_dict_only_holds_live_rules(self):
        ruleset = RuleSet(name="w")
        for _ in range(50):
            rule = wl()
            ruleset.add(rule)
            ruleset.remove(rule.rule_id)
        keeper = wl()
        ruleset.add(keeper)
        assert set(ruleset._revisions) == {keeper.rule_id}

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.sampled_from(["add", "remove", "replace"]),
                    min_size=1, max_size=60),
           st.integers(min_value=0, max_value=2 ** 32 - 1))
    def test_versioned_identity_under_churn(self, script, seed):
        """Property: for every rule id, the sequence of revisions it is
        ever assigned is strictly increasing — across add, replace, AND
        remove/re-add — and ``_revisions`` tracks exactly the live ids."""
        rng = random.Random(seed)
        ruleset = RuleSet(name="churn")
        history = {}  # rule_id -> last revision ever seen
        pool = [f"churn-{i}" for i in range(6)]
        for op in script:
            rule_id = rng.choice(pool)
            rule = WhitelistRule("rings?", "rings", rule_id=rule_id)
            if op == "add" and rule_id not in ruleset:
                ruleset.add(rule)
            elif op == "remove" and rule_id in ruleset:
                ruleset.remove(rule_id)
                continue
            elif op == "replace" and rule_id in ruleset:
                ruleset.replace(rule)
            else:
                continue
            revision = ruleset.revision(rule_id)
            assert revision > history.get(rule_id, 0), \
                f"revision regressed for {rule_id}"
            history[rule_id] = revision
        assert set(ruleset._revisions) == {r.rule_id for r in ruleset}


# -- repository round-trip property ----------------------------------------------


class TestRepositoryRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 32 - 1))
    def test_random_histories_replay_exactly(self, tmp_path_factory, seed):
        """Property: any sequence of repository operations replays from
        the change log to the identical namespace state."""
        rng = random.Random(seed)
        root = str(tmp_path_factory.mktemp("repo") / "store")
        with RuleRepository.open(root) as repo:
            live = []
            for step in range(rng.randint(1, 30)):
                roll = rng.random()
                if roll < 0.5 or not live:
                    rule = WhitelistRule(
                        "rings?", "rings", rule_id=f"seeded-{seed}-{step}"
                    )
                    repo.add("em", rule)
                    live.append(rule.rule_id)
                elif roll < 0.7:
                    victim = rng.choice(live)
                    repo.remove("em", victim)
                    live.remove(victim)
                elif roll < 0.85:
                    repo.set_enabled("em", rng.choice(live), rng.random() < 0.5)
                else:
                    victim = rng.choice(live)
                    repo.replace("em", WhitelistRule(
                        "bands?", "rings", rule_id=victim
                    ))
            expected = {
                rule_id: (repo.revision("em", rule_id),
                          repo.is_enabled("em", rule_id),
                          repo.rule_payload("em", rule_id))
                for rule_id in repo.rule_ids("em")
            }
        with RuleRepository.open(root) as repo:
            actual = {
                rule_id: (repo.revision("em", rule_id),
                          repo.is_enabled("em", rule_id),
                          repo.rule_payload("em", rule_id))
                for rule_id in repo.rule_ids("em")
            }
        assert actual == expected
