"""Tests for the section 5.2 rule-generation pipeline."""

import pytest

from repro.catalog.generator import LabeledTitle
from repro.core import SequenceRule
from repro.rulegen import (
    RuleGenerator,
    confidence_score,
    greedy_biased_select,
    greedy_select,
    mine_frequent_sequences,
)


class TestSeqMine:
    TITLES = [
        ["denim", "carpenter", "jeans"],
        ["denim", "relaxed", "jeans"],
        ["denim", "jeans"],
        ["skinny", "jeans"],
    ]

    def test_frequent_singletons(self):
        frequent = mine_frequent_sequences(self.TITLES, min_support=0.5, max_length=1)
        assert frequent[("jeans",)] == 4
        assert frequent[("denim",)] == 3
        assert ("skinny",) not in frequent

    def test_frequent_pairs_in_order(self):
        frequent = mine_frequent_sequences(self.TITLES, min_support=0.5, max_length=2)
        assert frequent[("denim", "jeans")] == 3
        assert ("jeans", "denim") not in frequent

    def test_support_counts_titles_not_occurrences(self):
        titles = [["a", "a", "b"], ["a", "b"]]
        frequent = mine_frequent_sequences(titles, min_support=0.5, max_length=2)
        assert frequent[("a", "b")] == 2
        assert frequent[("a", "a")] == 1  # only the first title contains a..a

    def test_apriori_antimonotone(self):
        frequent = mine_frequent_sequences(self.TITLES, min_support=0.25, max_length=3)
        for sequence, count in frequent.items():
            for drop in range(len(sequence)):
                sub = sequence[:drop] + sequence[drop + 1 :]
                if sub:
                    assert frequent[sub] >= count

    def test_empty_input(self):
        assert mine_frequent_sequences([], 0.5) == {}

    def test_bad_support(self):
        with pytest.raises(ValueError):
            mine_frequent_sequences(self.TITLES, min_support=0.0)


class TestConfidence:
    def test_full_name_high(self):
        assert confidence_score(("denim", "jeans"), "jeans", 0.3) > 0.7

    def test_plural_singular_bridged(self):
        assert confidence_score(("jean",), "jeans", 0.2) > 0.7

    def test_no_name_tokens_low(self):
        assert confidence_score(("relaxed", "fit"), "jeans", 0.05) < 0.7

    def test_support_saturates(self):
        low = confidence_score(("relaxed", "fit"), "jeans", 0.01)
        high = confidence_score(("relaxed", "fit"), "jeans", 0.9)
        assert high > low
        assert high == confidence_score(("relaxed", "fit"), "jeans", 0.2)

    def test_bounds(self):
        with pytest.raises(ValueError):
            confidence_score((), "jeans", 0.5)
        with pytest.raises(ValueError):
            confidence_score(("a",), "jeans", 1.5)


def _rule(tokens, target, conf, rule_id):
    rule = SequenceRule(tokens, target, confidence=conf)
    rule.rule_id = rule_id
    return rule


class TestGreedySelect:
    def test_maximizes_new_coverage_times_confidence(self):
        rules = [
            _rule(("a",), "t", 0.9, "r1"),
            _rule(("b",), "t", 0.9, "r2"),
            _rule(("c",), "t", 0.9, "r3"),
        ]
        coverage = {"r1": {1, 2, 3}, "r2": {3, 4}, "r3": {1}}
        selected = greedy_select(rules, coverage, q=2)
        assert [r.rule_id for r in selected] == ["r1", "r2"]

    def test_stops_when_no_new_coverage(self):
        rules = [_rule(("a",), "t", 0.9, "r1"), _rule(("a", "b"), "t", 0.9, "r2")]
        coverage = {"r1": {1, 2}, "r2": {1, 2}}
        selected = greedy_select(rules, coverage, q=5)
        assert len(selected) == 1

    def test_confidence_breaks_coverage_ties(self):
        rules = [_rule(("a",), "t", 0.5, "r1"), _rule(("b",), "t", 0.9, "r2")]
        coverage = {"r1": {1}, "r2": {2}}
        selected = greedy_select(rules, coverage, q=1)
        assert selected[0].rule_id == "r2"

    def test_q_zero(self):
        assert greedy_select([_rule(("a",), "t", 0.9, "r1")], {"r1": {1}}, 0) == []


class TestGreedyBiased:
    def test_high_pool_exhausted_first(self):
        rules = [
            _rule(("hi",), "t", 0.9, "high1"),
            _rule(("lo",), "t", 0.3, "low1"),
            _rule(("lo2",), "t", 0.4, "low2"),
        ]
        coverage = {"high1": {1}, "low1": {1, 2, 3, 4}, "low2": {5}}
        high, low = greedy_biased_select(rules, coverage, q=2, alpha=0.7)
        # low1 covers more, but high1 is chosen first because it is high-conf.
        assert [r.rule_id for r in high] == ["high1"]
        assert len(low) == 1

    def test_low_pool_covers_residual_only(self):
        rules = [
            _rule(("hi",), "t", 0.9, "high1"),
            _rule(("lo",), "t", 0.3, "low1"),
        ]
        coverage = {"high1": {1, 2}, "low1": {1, 2}}  # fully shadowed
        high, low = greedy_biased_select(rules, coverage, q=5, alpha=0.7)
        assert [r.rule_id for r in high] == ["high1"]
        assert low == []

    def test_quota_shared(self):
        rules = [_rule((f"t{i}",), "t", 0.9, f"h{i}") for i in range(3)]
        rules += [_rule((f"u{i}",), "t", 0.3, f"l{i}") for i in range(3)]
        coverage = {f"h{i}": {i} for i in range(3)}
        coverage.update({f"l{i}": {10 + i} for i in range(3)})
        high, low = greedy_biased_select(rules, coverage, q=4, alpha=0.7)
        assert len(high) == 3 and len(low) == 1


class TestRuleGenerator:
    @pytest.fixture(scope="class")
    def generated(self, labeled_training):
        return RuleGenerator(min_support=0.05, q=50).generate(labeled_training)

    def test_shape(self, generated):
        assert generated.n_mined > generated.n_clean * 0 and generated.n_mined > 0
        assert generated.n_selected <= generated.n_clean <= generated.n_mined
        assert generated.types_covered > 10

    def test_high_confidence_above_alpha(self, generated):
        assert all(r.confidence >= 0.7 for r in generated.high_confidence)
        assert all(r.confidence < 0.7 for r in generated.low_confidence)

    def test_clean_rules_make_no_training_mistakes(self, generated, labeled_training):
        from repro.utils.text import contains_word_sequence, tokenize
        for rule in generated.rules[:40]:
            for example in labeled_training:
                if example.label != rule.target_type:
                    assert not contains_word_sequence(
                        tokenize(example.title), rule.token_sequence
                    )

    def test_rule_lengths(self, generated):
        assert all(2 <= len(r.token_sequence) <= 4 for r in generated.rules)

    def test_rules_for_type(self, generated):
        jeans_rules = generated.rules_for_type("jeans")
        assert jeans_rules
        assert all(r.target_type == "jeans" for r in jeans_rules)

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            RuleGenerator().generate([])

    def test_quota_respected(self, labeled_training):
        result = RuleGenerator(min_support=0.02, q=3).generate(labeled_training)
        from collections import Counter
        per_type = Counter(r.target_type for r in result.rules)
        assert all(count <= 3 for count in per_type.values())

    def test_dirty_rules_kept_without_clean_filter(self, labeled_training):
        clean = RuleGenerator(min_support=0.05, q=50, require_clean=True)
        dirty = RuleGenerator(min_support=0.05, q=50, require_clean=False)
        assert dirty.generate(labeled_training).n_clean >= clean.generate(labeled_training).n_clean
