"""Sharded rule induction: partition-theorem equivalence, exact thresholds.

The contract under test is byte-identity: for any worker count, any
partition, any ``local_support_factor``, the sharded generator's mined
sequences and final rule set equal the serial pipeline's exactly (rule
ids excluded — they are auto-assigned). The hypothesis properties here
drive that with adversarial corpora: duplicate titles, single-type
corpora, types too small to slice, empty slices.
"""

import itertools
from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.rulegen.corpus as corpus_module
from repro.catalog.generator import LabeledTitle
from repro.rulegen import RuleGenerator, ShardedRuleGenerator
from repro.rulegen.corpus import (
    CorpusIndex,
    mine_weighted_reps,
    tokens_contain,
)
from repro.rulegen.parallel import MineTask, RulegenShardPayload, _mine_shard
from repro.rulegen.select import (
    greedy_biased_select,
    greedy_biased_select_entries,
    greedy_select_entries,
)
from repro.rulegen.seqmine import exact_min_count, mine_frequent_sequences
from repro.utils.text import contains_word_sequence


def rule_key(result):
    """Id-free identity: what the rules are, not what they're named."""
    return [
        (rule.token_sequence, rule.target_type, rule.support, rule.confidence)
        for rule in result.rules
    ]


def full_key(result):
    return (rule_key(result), result.n_mined, result.n_clean,
            result.types_covered)


# A deliberately tiny closed vocabulary: shared sequences and duplicate
# titles are the common case, not the corner case.
WORDS = st.sampled_from(
    ["denim", "jeans", "slim", "fit", "sofa", "lamp", "oak", "desk"]
)
TITLES = st.lists(WORDS, min_size=1, max_size=5).map(" ".join)
LABELS = st.sampled_from(["pants", "furniture", "lighting"])
CORPORA = st.lists(st.tuples(TITLES, LABELS), min_size=1, max_size=20).map(
    lambda rows: [LabeledTitle(title=t, label=l) for t, l in rows]
)

TOKEN_ROWS = st.lists(
    st.lists(st.integers(min_value=0, max_value=5), min_size=0, max_size=5)
    .map(tuple),
    min_size=1,
    max_size=8,
)


class TestExactMinCount:
    """Satellite: exact integer thresholds, no float-ceiling artefacts."""

    def test_paper_scale(self):
        # The paper's 0.001 over 885K titles.
        assert exact_min_count(0.001, 885_000) == 885
        assert exact_min_count(0.01, 100_000) == 1_000

    def test_float_ceiling_artefacts(self):
        import math

        # 0.07 * 100 == 7.000000000000001 as floats; its ceiling silently
        # demands an eighth title. The exact path does not.
        assert math.ceil(0.07 * 100) == 8  # the artefact being regressed
        assert exact_min_count(0.07, 100) == 7
        assert exact_min_count(0.1, 10) == 1

    def test_boundaries(self):
        assert exact_min_count(0.5, 4) == 2
        assert exact_min_count(0.5, 5) == 3
        assert exact_min_count(1.0, 7) == 7
        # Fractional results round up.
        assert exact_min_count(0.3, 10) == 3
        assert exact_min_count(0.3, 11) == 4

    def test_floor_of_one(self):
        assert exact_min_count(0.001, 5) == 1
        assert exact_min_count(0.01, 10) == 1
        assert exact_min_count(0.2, 0) == 1

    def test_factor_stays_exact(self):
        # factor lowers the bar through the same exact path.
        assert exact_min_count(0.01, 300, factor=0.5) == 2  # ceil(1.5)
        assert exact_min_count(0.1, 10, factor=1.0) == 1
        assert exact_min_count(0.1, 100, factor=0.7) == 7
        assert exact_min_count(0.2, 100, factor=0.35) == 7

    def test_validation(self):
        for bad_support in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                exact_min_count(bad_support, 10)
        for bad_factor in (0.0, -1.0, 1.01):
            with pytest.raises(ValueError):
                exact_min_count(0.1, 10, factor=bad_factor)
        with pytest.raises(ValueError):
            exact_min_count(0.1, -1)

    @given(
        numerator=st.integers(min_value=1, max_value=1000),
        n_titles=st.integers(min_value=0, max_value=2000),
        factor_pct=st.integers(min_value=1, max_value=100),
    )
    def test_is_the_exact_ceiling(self, numerator, n_titles, factor_pct):
        min_support = numerator / 1000
        factor = factor_pct / 100
        count = exact_min_count(min_support, n_titles, factor)
        exact = (
            Fraction(str(min_support)) * Fraction(str(factor)) * n_titles
        )
        # Smallest integer >= exact, floored at 1: sufficient...
        assert count >= exact
        assert count >= 1
        # ...and necessary.
        if count > 1:
            assert count - 1 < exact


class TestTokensContain:
    @given(
        tokens=st.lists(st.integers(min_value=0, max_value=4), max_size=10),
        candidate=st.lists(st.integers(min_value=0, max_value=4), max_size=4),
    )
    def test_matches_reference_semantics(self, tokens, candidate):
        expected = contains_word_sequence(
            [str(t) for t in tokens], [str(c) for c in candidate]
        )
        assert tokens_contain(tokens, candidate) == expected
        assert (
            tokens_contain(tuple(tokens), tuple(candidate)) == expected
        )

    def test_edges(self):
        assert tokens_contain([1, 2, 3], [])
        assert tokens_contain([], [])
        assert not tokens_contain([], [1])
        # In-order, non-contiguous, with repeats consumed left to right.
        assert tokens_contain([1, 9, 2, 9, 1], [1, 2, 1])
        assert not tokens_contain([1, 2], [2, 1])
        assert not tokens_contain([1, 1], [1, 1, 1])


class TestWeightedMinerEquivalence:
    """mine_weighted_reps over deduplicated reps == serial row mining."""

    @staticmethod
    def expand(reps, weights):
        rows = []
        for rep, weight in zip(reps, weights):
            rows.extend([rep] * weight)
        return rows

    @given(
        reps=TOKEN_ROWS,
        weights_seed=st.lists(
            st.integers(min_value=1, max_value=3), min_size=8, max_size=8
        ),
        support_idx=st.integers(min_value=0, max_value=2),
    )
    @settings(deadline=None)
    def test_matches_serial_miner(self, reps, weights_seed, support_idx):
        min_support = [0.1, 0.25, 0.5][support_idx]
        weights = weights_seed[: len(reps)]
        n_rows = sum(weights)
        min_count = exact_min_count(min_support, n_rows)

        str_reps = [tuple(f"w{t}" for t in rep) for rep in reps]
        serial = mine_frequent_sequences(
            self.expand(str_reps, weights), min_support, max_length=4
        )

        # Integer tokens take the vectorized path...
        mined_int = mine_weighted_reps(reps, weights, min_count, 4)
        decoded = {
            tuple(f"w{t}" for t in seq): count
            for seq, (count, _) in mined_int.items()
        }
        assert decoded == serial
        # ...string tokens the pure-Python one. Same answer.
        mined_str = mine_weighted_reps(str_reps, weights, min_count, 4)
        assert {seq: count for seq, (count, _) in mined_str.items()} == serial
        # The id sets are the containing reps, exactly.
        for seq, (count, ids) in mined_int.items():
            containing = {
                rid for rid, rep in enumerate(reps)
                if tokens_contain(rep, seq)
            }
            assert ids == containing
            assert count == sum(weights[rid] for rid in containing)

    def test_empty_inputs(self):
        assert mine_weighted_reps([], [], 1, 4) == {}
        assert mine_weighted_reps([()], [1], 1, 4) == {}
        assert mine_weighted_reps([(1, 2)], [1], 1, 0) == {}


class TestPartitionTheorem:
    """Any partition of the reps, mined locally and merged with one exact
    recount, reproduces global mining byte-for-byte."""

    @given(
        reps=TOKEN_ROWS,
        weights_seed=st.lists(
            st.integers(min_value=1, max_value=3), min_size=8, max_size=8
        ),
        assignment_seed=st.lists(
            st.integers(min_value=0, max_value=3), min_size=8, max_size=8
        ),
        support_idx=st.integers(min_value=0, max_value=2),
        factor_idx=st.integers(min_value=0, max_value=1),
    )
    @settings(deadline=None)
    def test_local_mine_plus_recount_is_exact(
        self, reps, weights_seed, assignment_seed, support_idx, factor_idx
    ):
        min_support = [0.1, 0.25, 0.5][support_idx]
        factor = [1.0, 0.6][factor_idx]
        weights = weights_seed[: len(reps)]
        assignment = assignment_seed[: len(reps)]
        n_rows = sum(weights)
        global_min = exact_min_count(min_support, n_rows)

        global_mined = {
            seq: count
            for seq, (count, _) in mine_weighted_reps(
                reps, weights, global_min, 4
            ).items()
        }

        candidates = set()
        for slice_id in set(assignment):
            slice_reps = [
                rep for rep, s in zip(reps, assignment) if s == slice_id
            ]
            slice_weights = [
                w for w, s in zip(weights, assignment) if s == slice_id
            ]
            local_min = exact_min_count(
                min_support, sum(slice_weights), factor
            )
            candidates.update(
                mine_weighted_reps(slice_reps, slice_weights, local_min, 4)
            )

        # Every globally frequent sequence must surface in some slice
        # (the partition theorem); the recount then restores exact counts
        # and drops the locally-frequent-only noise.
        merged = {}
        for seq in candidates:
            count = sum(
                weight
                for rep, weight in zip(reps, weights)
                if tokens_contain(rep, seq)
            )
            if count >= global_min:
                merged[seq] = count
        assert merged == global_mined


SHARDED_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def assert_sharded_matches_serial(training, n_workers, factor, seed,
                                  min_support=0.2, **kwargs):
    serial = RuleGenerator(min_support=min_support, q=8).generate(training)
    sharded = ShardedRuleGenerator(
        min_support=min_support,
        q=8,
        n_workers=n_workers,
        local_support_factor=factor,
        min_slice_rows=1,
        max_slices_per_type=n_workers,
        seed=seed,
        **kwargs,
    ).generate(training)
    assert full_key(sharded) == full_key(serial)
    return sharded


class TestShardedEqualsSerial:
    """The tentpole contract: sharded(k workers, any partition) == serial."""

    @given(
        training=CORPORA,
        n_workers=st.integers(min_value=1, max_value=4),
        factor_idx=st.integers(min_value=0, max_value=2),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @SHARDED_SETTINGS
    def test_rule_sets_identical(self, training, n_workers, factor_idx, seed):
        factor = [1.0, 0.7, 0.5][factor_idx]
        assert_sharded_matches_serial(training, n_workers, factor, seed)

    @given(
        training=st.lists(TITLES, min_size=1, max_size=15).map(
            lambda titles: [
                LabeledTitle(title=t, label="pants") for t in titles
            ]
        ),
        n_workers=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @SHARDED_SETTINGS
    def test_single_type_corpora(self, training, n_workers, seed):
        assert_sharded_matches_serial(training, n_workers, 0.7, seed)

    def test_duplicate_titles(self):
        training = (
            [LabeledTitle(title="slim fit denim jeans", label="pants")] * 7
            + [LabeledTitle(title="oak desk lamp", label="lighting")] * 5
            + [LabeledTitle(title="oak sofa", label="furniture")] * 3
            # A title duplicated *across* labels: its rep is mixed, so
            # sequences unique to it must be filtered as unclean.
            + [
                LabeledTitle(title="oak desk", label="furniture"),
                LabeledTitle(title="oak desk", label="lighting"),
            ]
        )
        for n_workers in (1, 2, 3, 4):
            sharded = assert_sharded_matches_serial(
                training, n_workers, 0.6, seed=n_workers, min_support=0.1
            )
            assert sharded.n_workers == n_workers
        # The sliced path actually ran: reps exist and the planner cut them.
        assert sharded.n_tasks > len(
            {example.label for example in training}
        )

    def test_types_too_small_to_slice(self):
        # One type with a single title rides whole even at 4 workers.
        training = [
            LabeledTitle(title="slim fit jeans", label="pants"),
            LabeledTitle(title="oak desk lamp", label="lighting"),
            LabeledTitle(title="oak desk lamp fit", label="lighting"),
        ]
        sharded = assert_sharded_matches_serial(
            training, 4, 1.0, seed=0, min_support=0.5
        )
        assert sharded.n_shards <= 4

    def test_empty_shard_payload(self):
        task = MineTask(
            type_name="pants",
            slice_id=0,
            n_slices=2,
            lids=(),
            rep_tokens=(),
            weights=(),
            min_count=1,
            max_length=4,
            n_rows=0,
        )
        shard_id, reports = _mine_shard(
            RulegenShardPayload(shard_id=3, tasks=(task,))
        )
        assert shard_id == 3
        assert reports == [("pants", 0, {})]

    def test_process_pool_matches_serial(self):
        training = [
            LabeledTitle(title="slim fit denim jeans", label="pants"),
            LabeledTitle(title="slim denim jeans", label="pants"),
            LabeledTitle(title="denim jeans slim", label="pants"),
            LabeledTitle(title="oak desk lamp", label="lighting"),
            LabeledTitle(title="desk lamp oak", label="lighting"),
            LabeledTitle(title="oak sofa", label="furniture"),
        ]
        sharded = assert_sharded_matches_serial(
            training, 2, 0.8, seed=1, min_support=0.3, use_processes=True
        )
        assert sharded.mode == "processes"

    def test_dedupe_smoke(self):
        training = [
            LabeledTitle(title="slim fit denim jeans", label="pants"),
            LabeledTitle(title="slim denim jeans", label="pants"),
            LabeledTitle(title="fit denim jeans", label="pants"),
        ]
        plain = ShardedRuleGenerator(
            min_support=0.3, q=8, n_workers=2, min_slice_rows=1,
            max_slices_per_type=2,
        ).generate(training)
        deduped = ShardedRuleGenerator(
            min_support=0.3, q=8, n_workers=2, min_slice_rows=1,
            max_slices_per_type=2, dedupe=True,
        ).generate(training)
        kept = {tuple(rule.token_sequence) for rule in deduped.rules}
        assert kept <= {tuple(rule.token_sequence) for rule in plain.rules}
        assert deduped.n_deduped == plain.n_selected - deduped.n_selected

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedRuleGenerator(n_workers=0)
        with pytest.raises(ValueError):
            ShardedRuleGenerator(local_support_factor=0.0)
        with pytest.raises(ValueError):
            ShardedRuleGenerator(local_support_factor=1.5)
        with pytest.raises(ValueError):
            ShardedRuleGenerator(min_slice_rows=0)
        with pytest.raises(ValueError):
            ShardedRuleGenerator(max_slices_per_type=0)
        with pytest.raises(ValueError):
            ShardedRuleGenerator().generate([])


class TestDeterminism:
    def corpus(self):
        return [
            LabeledTitle(title=title, label=label)
            for title, label in [
                ("slim fit denim jeans", "pants"),
                ("slim denim jeans", "pants"),
                ("denim jeans", "pants"),
                ("fit denim jeans slim", "pants"),
                ("oak desk lamp", "lighting"),
                ("desk lamp", "lighting"),
                ("oak sofa desk", "furniture"),
            ]
        ]

    def test_same_seed_same_partition(self):
        training = self.corpus()
        index = CorpusIndex.from_labeled(training)

        def plan(seed):
            return ShardedRuleGenerator(
                min_support=0.2, n_workers=4, min_slice_rows=1,
                max_slices_per_type=4, seed=seed,
            )._plan_tasks(index)

        assert plan(7) == plan(7)
        # A different seed permutes slice membership...
        assert plan(7) != plan(8)
        # ...but the rule set is identical for every seed regardless.
        for seed in (7, 8):
            assert_sharded_matches_serial(training, 4, 0.7, seed)

    def test_worker_counts_all_identical(self):
        training = self.corpus()
        keys = set()
        for n_workers in (1, 2, 3, 4):
            result = assert_sharded_matches_serial(
                training, n_workers, 0.5, seed=3, min_support=0.2
            )
            keys.add(str(full_key(result)))
        assert len(keys) == 1


class TestCorpusIndexReuse:
    """Satellite: one postings build, many mining passes."""

    def training(self):
        return [
            LabeledTitle(title=title, label=label)
            for title, label in [
                ("slim fit denim jeans", "pants"),
                ("slim denim jeans", "pants"),
                ("slim denim jeans", "pants"),
                ("oak desk lamp", "lighting"),
                ("oak desk lamp", "lighting"),
                ("oak sofa", "furniture"),
            ]
        ]

    def test_postings_built_once_across_generates(self):
        training = self.training()
        index = CorpusIndex.from_labeled(training)
        assert index.row_postings_builds == 0
        generator = RuleGenerator(min_support=0.2, q=10)
        baseline = generator.generate(training)
        first = generator.generate(training, index=index)
        second = generator.generate(training, index=index)
        assert index.row_postings_builds == 1
        assert full_key(first) == full_key(baseline)
        assert full_key(second) == full_key(baseline)

    def test_mine_with_index_matches_without(self):
        training = self.training()
        index = CorpusIndex.from_labeled(training)
        with_index = mine_frequent_sequences(
            index.tokenized, 0.2, index=index
        )
        without = mine_frequent_sequences(index.tokenized, 0.2)
        assert with_index == without
        mine_frequent_sequences(index.tokenized, 0.4, index=index)
        assert index.row_postings_builds == 1

    def test_index_row_count_mismatch_rejected(self):
        index = CorpusIndex.from_labeled(self.training())
        with pytest.raises(ValueError):
            mine_frequent_sequences([("denim",)], 0.2, index=index)

    def test_sharded_accepts_prebuilt_index(self):
        training = self.training()
        index = CorpusIndex.from_labeled(training)
        direct = ShardedRuleGenerator(
            min_support=0.2, q=10, n_workers=2, min_slice_rows=1,
            max_slices_per_type=2,
        )
        assert full_key(direct.generate(training, index=index)) == full_key(
            direct.generate(training)
        )

    def test_unlabeled_index_rejected(self):
        index = CorpusIndex([("denim", "jeans")])
        with pytest.raises(ValueError):
            ShardedRuleGenerator().generate(
                [LabeledTitle(title="denim jeans", label="pants")],
                index=index,
            )


class TestCleanlinessTables:
    """has_impure_match (uniformity tables + fallback) vs brute force."""

    @given(training=CORPORA)
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force(self, training):
        index = CorpusIndex.from_labeled(training)
        rep_itokens = index.rep_itokens
        rep_label = index.rep_label
        for type_name in index.types:
            view = index.type_view(type_name)
            candidates = set()
            for rid in view.g_reps:
                tokens = rep_itokens[rid]
                for length in range(1, min(4, len(tokens)) + 1):
                    candidates.update(
                        itertools.combinations(tokens, length)
                    )
            for candidate in candidates:
                brute = any(
                    rep_label[rid] != type_name
                    and tokens_contain(rep_itokens[rid], candidate)
                    for rid in range(index.n_reps)
                )
                assert view.has_impure_match(candidate) == brute, (
                    type_name, index.decode(candidate),
                )

    def test_requires_labels(self):
        index = CorpusIndex([("denim", "jeans")], ["pants"])
        view = index.type_view("pants")
        index.labels = None
        with pytest.raises(ValueError):
            view.has_impure_match((0,))


class TestPurePythonFallback:
    """With numpy masked out, every structure and answer is unchanged."""

    def test_index_and_miner_match_numpy(self, monkeypatch):
        training = [
            LabeledTitle(title=title, label=label)
            for title, label in [
                ("slim fit denim jeans", "pants"),
                ("slim denim jeans", "pants"),
                ("denim jeans slim fit", "pants"),
                ("oak desk lamp", "lighting"),
                ("oak desk lamp", "lighting"),
                ("desk lamp oak", "lighting"),
                ("oak sofa", "furniture"),
                ("oak desk", "furniture"),
            ]
        ]
        vec_index = CorpusIndex.from_labeled(training)
        vec_result = RuleGenerator(min_support=0.2, q=10).generate(training)
        vec_sharded = ShardedRuleGenerator(
            min_support=0.2, q=10, n_workers=3, min_slice_rows=1,
            max_slices_per_type=3, local_support_factor=0.7,
        ).generate(training)

        monkeypatch.setattr(corpus_module, "_np", None)
        pure_index = CorpusIndex.from_labeled(training)
        assert pure_index.rep_postings == vec_index.rep_postings
        assert pure_index.token_uniform == vec_index.token_uniform
        assert pure_index.seq_uniform == vec_index.seq_uniform
        pure_sharded = ShardedRuleGenerator(
            min_support=0.2, q=10, n_workers=3, min_slice_rows=1,
            max_slices_per_type=3, local_support_factor=0.7,
        ).generate(training)
        assert full_key(pure_sharded) == full_key(vec_sharded)
        assert full_key(pure_sharded) == full_key(vec_result)


class TestWeightedEntrySelection:
    """Weighted rep-space selection == row-space selection == rule-space."""

    @given(
        pools=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # confidence idx
                st.lists(
                    st.integers(min_value=0, max_value=5),
                    min_size=0,
                    max_size=4,
                ),
            ),
            min_size=0,
            max_size=8,
        ),
        weights=st.lists(
            st.integers(min_value=1, max_value=3), min_size=6, max_size=6
        ),
        q=st.integers(min_value=0, max_value=6),
    )
    @settings(deadline=None)
    def test_rep_weights_equal_row_expansion(self, pools, weights, q):
        confidences = [0.45, 0.65, 0.8, 0.95]
        # rep i expands to rows offsets[i]..offsets[i]+weights[i]-1.
        offsets = [0]
        for weight in weights:
            offsets.append(offsets[-1] + weight)

        rep_entries = []
        row_entries = []
        for order, (conf_idx, rep_ids) in enumerate(pools):
            confidence = confidences[conf_idx]
            reps = set(rep_ids)
            rows = {
                row
                for rid in reps
                for row in range(offsets[rid], offsets[rid + 1])
            }
            rep_entries.append((confidence, order, reps, None))
            row_entries.append((confidence, order, rows, None))

        rep_high, rep_low = greedy_biased_select_entries(
            rep_entries, q, 0.7, weights
        )
        row_high, row_low = greedy_biased_select_entries(row_entries, q, 0.7)
        assert [e[1] for e in rep_high] == [e[1] for e in row_high]
        assert [e[1] for e in rep_low] == [e[1] for e in row_low]

        # Supplying precomputed totals (the mined counts) changes nothing.
        totals = {
            entry[1]: sum(weights[rid] for rid in entry[2])
            for entry in rep_entries
        }
        tot_high, tot_low = greedy_biased_select_entries(
            rep_entries, q, 0.7, weights, totals
        )
        assert [e[1] for e in tot_high] == [e[1] for e in row_high]
        assert [e[1] for e in tot_low] == [e[1] for e in row_low]

    def test_entries_match_rule_selection(self):
        from repro.core.rule import SequenceRule

        specs = [
            (("denim", "jeans"), 0.95, {0, 1, 2}),
            (("slim", "jeans"), 0.9, {1, 2, 3}),
            (("fit", "jeans"), 0.8, {3, 4}),
            (("oak", "jeans"), 0.6, {0, 4, 5}),
            (("sofa", "jeans"), 0.5, {2, 5}),
        ]
        rules = [
            SequenceRule(seq, "pants", support=0.5, confidence=confidence)
            for seq, confidence, _ in specs
        ]
        coverage = {
            rule.rule_id: rows for rule, (_, _, rows) in zip(rules, specs)
        }
        entries = [
            (confidence, order, set(rows), seq)
            for order, (seq, confidence, rows) in enumerate(specs)
        ]
        for q in range(len(specs) + 2):
            high, low = greedy_biased_select(rules, coverage, q, 0.7)
            entry_high, entry_low = greedy_biased_select_entries(
                entries, q, 0.7
            )
            assert [tuple(r.token_sequence) for r in high] == [
                e[3] for e in entry_high
            ]
            assert [tuple(r.token_sequence) for r in low] == [
                e[3] for e in entry_low
            ]

    def test_covered_preseed_equals_residual_maps(self):
        entries = [
            (0.9, 0, {0, 1, 2}, None),
            (0.85, 1, {2, 3}, None),
            (0.8, 2, {4}, None),
        ]
        covered = {0, 1}
        preseeded = greedy_select_entries(
            [(c, o, set(ids), p) for c, o, ids, p in entries],
            3,
            covered=set(covered),
        )
        residual = greedy_select_entries(
            [(c, o, set(ids) - covered, p) for c, o, ids, p in entries], 3
        )
        assert [e[1] for e in preseeded] == [e[1] for e in residual]
