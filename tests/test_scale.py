"""Scale sanity tests: the library stays correct and tractable when the
taxonomy and rule base grow toward paper-like proportions.

These run a few seconds each — they are the evidence that the laptop-scale
defaults generalize upward, not micro-benchmarks (those live in
``benchmarks/``).
"""

import random

import pytest

from repro.catalog import CatalogGenerator, build_seed_taxonomy, synthesize_types
from repro.core import SequenceRule
from repro.execution import IndexedExecutor, NaiveExecutor, RuleIndex
from repro.learning import MultinomialNaiveBayes
from repro.rulegen import RuleGenerator


@pytest.fixture(scope="module")
def big_taxonomy():
    taxonomy = build_seed_taxonomy()
    for product_type in synthesize_types(300, random.Random(7)):
        taxonomy.add(product_type)
    return taxonomy


class TestScale:
    def test_300_plus_type_generation(self, big_taxonomy):
        generator = CatalogGenerator(big_taxonomy, seed=1)
        items = generator.generate_items(3000)
        seen_types = {item.true_type for item in items}
        # Zipf weights: the head dominates, but the tail is visible.
        assert len(seen_types) > 80
        assert big_taxonomy.validate() == []

    def test_classifier_scales_to_many_types(self, big_taxonomy):
        generator = CatalogGenerator(big_taxonomy, seed=2)
        labeled = generator.generate_labeled(4000)
        titles = [example.title for example in labeled]
        labels = [example.label for example in labeled]
        classifier = MultinomialNaiveBayes().fit(titles, labels)
        test = generator.generate_labeled(500)
        predictions = classifier.predict_batch([t.title for t in test])
        accuracy = sum(
            1 for prediction, example in zip(predictions, test)
            if prediction[0].label == example.label
        ) / len(test)
        assert accuracy > 0.8

    def test_rulegen_at_scale(self, big_taxonomy):
        generator = CatalogGenerator(big_taxonomy, seed=3)
        training = generator.generate_labeled(5000)
        result = RuleGenerator(min_support=0.05, q=30).generate(training)
        assert result.types_covered > 60
        assert result.n_selected > 100

    def test_index_handles_ten_thousand_rules(self):
        rng = random.Random(9)
        alphabet = [f"tok{i}" for i in range(2000)]
        rules = [
            SequenceRule((rng.choice(alphabet), rng.choice(alphabet)), f"t{i % 50}")
            for i in range(10_000)
        ]
        generator = CatalogGenerator(build_seed_taxonomy(), seed=4)
        items = generator.generate_items(100)
        index = IndexedExecutor(rules)
        fired, stats = index.run(items)
        # Nothing should match (tokens are synthetic), and the index should
        # do almost no work despite 10K rules.
        assert stats.matches == 0
        assert stats.evaluations_per_item < 10

    def test_indexed_equals_naive_at_scale(self, big_taxonomy):
        generator = CatalogGenerator(big_taxonomy, seed=5)
        training = generator.generate_labeled(4000)
        rules = RuleGenerator(min_support=0.1, q=20).generate(training).rules
        items = generator.generate_items(150)
        naive_fired, _ = NaiveExecutor(rules).run(items)
        indexed_fired, _ = IndexedExecutor(rules).run(items)
        assert {k: sorted(v) for k, v in naive_fired.items()} == indexed_fired
