"""The scenario determinism contract, property-tested.

Same YAML + same seed ⇒ byte-identical health report (which embeds the
incident log and the fired-map digest) across independent runs, and the
fired digest is executor-independent where the spec allows (indexed vs
partitioned over identical rule state). Plus the unseeded-randomness
guard: no module under ``src/repro`` or ``examples/`` may call the
module-level ``random`` API — every draw must flow through an explicit
``random.Random(seed)``.
"""

import ast
import pathlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.scenario import loads, run_scenario

REPO = pathlib.Path(__file__).parent.parent


def make_spec_text(seed, batches, min_batch, mean_gap, with_drift,
                   with_churn, executor):
    lines = [
        "name: prop",
        f"seed: {seed}",
        "catalog:",
        "  obvious_rule_types: ['*']",
        "traffic:",
        f"  batches: {batches}",
        f"  mean_gap_hours: {mean_gap}",
        "  vendors:",
        "    - name: prop-vendor",
        f"      min_batch: {min_batch}",
        f"      max_batch: {min_batch + 10}",
        "executor:",
        f"  kind: {executor}",
    ]
    if with_drift:
        lines += [
            "drift:",
            "  - at_batch: 1",
            "    op: extend_slot",
            "    type: jeans",
            "    slot: fit",
            "    phrases: [paperbag, balloon fit]",
        ]
    if with_churn:
        lines += [
            "rule_churn:",
            "  - at_batch: 1",
            "    disable_count: 5",
            "    reenable_after: 1",
        ]
    return "\n".join(lines) + "\n"


class TestByteIdentity:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        batches=st.integers(min_value=2, max_value=3),
        min_batch=st.integers(min_value=15, max_value=30),
        with_drift=st.booleans(),
        with_churn=st.booleans(),
    )
    def test_same_yaml_same_seed_byte_identical(
            self, seed, batches, min_batch, with_drift, with_churn):
        text = make_spec_text(seed, batches, min_batch, 6.0,
                              with_drift, with_churn, "incremental")
        first = run_scenario(loads(text))
        second = run_scenario(loads(text))
        assert first.to_json() == second.to_json()
        assert first.fired_digest == second.fired_digest
        assert first.incidents == second.incidents

    @settings(max_examples=4, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        min_batch=st.integers(min_value=15, max_value=25),
    )
    def test_indexed_and_partitioned_fired_digests_agree(self, seed, min_batch):
        """Per-batch fired maps are executor-independent, so the digest
        chain must match between indexed and (fault-free) partitioned."""
        indexed = run_scenario(loads(make_spec_text(
            seed, 2, min_batch, 6.0, False, False, "indexed")))
        partitioned = run_scenario(loads(make_spec_text(
            seed, 2, min_batch, 6.0, False, False, "partitioned")))
        assert indexed.fired_digest == partitioned.fired_digest

    def test_seed_cli_override_equals_spec_seed(self):
        """`--seed S` must behave exactly like writing `seed: S` in YAML."""
        base = make_spec_text(0, 2, 20, 6.0, True, False, "incremental")
        edited = run_scenario(loads(base.replace("seed: 0", "seed: 77")))
        overridden = run_scenario(loads(base), seed=77)
        assert edited.to_json() == overridden.to_json()

    def test_faulted_partitioned_run_is_deterministic(self):
        text = (
            "name: faulted\n"
            "seed: 9\n"
            "catalog:\n"
            "  obvious_rule_types: ['*']\n"
            "traffic:\n"
            "  batches: 2\n"
            "  vendors:\n"
            "    - name: v\n"
            "      min_batch: 25\n"
            "      max_batch: 35\n"
            "executor:\n"
            "  kind: partitioned\n"
            "  n_workers: 4\n"
            "faults:\n"
            "  plan:\n"
            "    - kind: crash\n"
            "      worker: 0\n"
            "  random:\n"
            "    rate: 0.2\n"
        )
        first = run_scenario(loads(text))
        second = run_scenario(loads(text))
        assert first.to_json() == second.to_json()
        assert first.faults["triggered"] > 0


class TestUnseededRandomnessGuard:
    """The satellite audit, frozen as a test: module-level ``random.*``
    calls (seeded implicitly by the process) are banned everywhere the
    runner can reach. Only ``random.Random(seed)`` construction is
    allowed."""

    ROOTS = ("src/repro", "examples")

    @staticmethod
    def offending_calls(tree):
        for node in ast.walk(tree):
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "random"
                    and node.attr != "Random"):
                yield node

    def test_no_module_level_random_anywhere_the_runner_touches(self):
        offenders = []
        for root in self.ROOTS:
            for path in sorted((REPO / root).rglob("*.py")):
                tree = ast.parse(path.read_text(), filename=str(path))
                for node in self.offending_calls(tree):
                    offenders.append(
                        f"{path.relative_to(REPO)}:{node.lineno} "
                        f"random.{node.attr}"
                    )
        assert not offenders, (
            "module-level random API used (breaks scenario replay):\n"
            + "\n".join(offenders)
        )

    def test_guard_detects_a_violation(self):
        tree = ast.parse("import random\nx = random.choice([1, 2])\n")
        assert list(self.offending_calls(tree))

    def test_guard_permits_seeded_construction(self):
        tree = ast.parse("import random\nrng = random.Random(7)\n")
        assert not list(self.offending_calls(tree))
