"""Scenario report diffing and wall-clock exit conditions.

Two satellites of the durable-service work: ``repro scenario diff``
(compare two health-report JSONs structurally) and the
``max_batch_latency_ms`` / ``max_wall_seconds`` exit checks (the only
wall-clock measurements allowed anywhere near a report — they live in
``exit_checks`` and never perturb the deterministic report body).
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.scenario import (
    diff_reports,
    load_report,
    loads,
    render_diff,
    run_scenario,
)

_SMALL_SPEC = """
name: diff-probe
description: Tiny two-batch run for diff tests.
seed: 31
catalog:
  obvious_rule_types: ["*"]
traffic:
  batches: 2
  vendors:
    - name: probe
      min_batch: 20
      max_batch: 30
executor:
  kind: incremental
exit:
  min_batches: 2
"""


@pytest.fixture(scope="module")
def report_a():
    return run_scenario(loads(_SMALL_SPEC)).to_dict()


@pytest.fixture(scope="module")
def report_b():
    return run_scenario(loads(_SMALL_SPEC.replace("seed: 31", "seed: 99"))).to_dict()


class TestDiffReports:
    def test_self_diff_is_clean(self, report_a):
        diff = diff_reports(report_a, report_a)
        assert diff["fired_digest"]["match"]
        assert diff["totals"] == {}
        assert diff["exit_checks"] == {}
        assert diff["incidents"]["count"]["delta"] == 0
        text = render_diff(diff)
        assert "MATCH" in text and "totals: identical" in text

    def test_seed_change_shows_up(self, report_a, report_b):
        diff = diff_reports(report_a, report_b)
        assert not diff["fired_digest"]["match"]
        assert diff["identity"]["seed"] == {"left": 31, "right": 99}
        assert "items" in diff["totals"] or "classified" in diff["totals"]
        for entry in diff["totals"].values():
            assert entry["delta"] == pytest.approx(
                entry["right"] - entry["left"], abs=1e-6
            )
        assert "DIFFER" in render_diff(diff)

    def test_exit_check_changes_tracked(self, report_a):
        mutated = json.loads(json.dumps(report_a))
        mutated["exit_checks"][0]["passed"] = False
        mutated["exit_checks"][0]["actual"] = 0
        mutated["exit_checks"].append(
            {"name": "extra", "expected": 1, "actual": 1, "passed": True}
        )
        diff = diff_reports(report_a, mutated)
        assert "min_batches" in diff["exit_checks"]
        assert diff["exit_checks"]["extra"]["left"] is None
        rendered = render_diff(diff)
        assert "exit checks that changed" in rendered
        assert "(absent)" in rendered

    def test_incident_rule_membership(self, report_a):
        mutated = json.loads(json.dumps(report_a))
        mutated["incidents"] = [{
            "ordinal": 1, "kind": "rule-health", "status": "open",
            "opened_at": 1.0, "affected_types": [],
            "rule_ids": ["wl-boots-0001"],
        }]
        diff = diff_reports(report_a, mutated)
        assert diff["incidents"]["count"]["delta"] == 1
        assert diff["incidents"]["rules_only_right"] == ["wl-boots-0001"]
        assert diff["incidents"]["rules_only_left"] == []

    def test_load_report_rejects_non_reports(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text('{"foo": 1}')
        with pytest.raises(ValueError, match="not a scenario report"):
            load_report(str(path))


class TestDiffCli:
    def test_identical_rc0_different_rc2(self, report_a, report_b, tmp_path,
                                         capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(report_a))
        b.write_text(json.dumps(report_b))
        assert cli_main(["scenario", "diff", str(a), str(a)]) == 0
        assert cli_main(["scenario", "diff", str(a), str(b)]) == 2
        out = capsys.readouterr().out
        assert "MATCH" in out and "DIFFER" in out

    def test_json_output(self, report_a, tmp_path, capsys):
        a = tmp_path / "a.json"
        a.write_text(json.dumps(report_a))
        assert cli_main(["scenario", "diff", str(a), str(a), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["fired_digest"]["match"] is True

    def test_missing_second_path_errors(self, report_a, tmp_path, capsys):
        a = tmp_path / "a.json"
        a.write_text(json.dumps(report_a))
        assert cli_main(["scenario", "diff", str(a)]) == 1
        assert "two health JSON" in capsys.readouterr().err


class TestWallClockExit:
    def test_generous_budgets_pass_without_touching_report_body(self):
        plain = run_scenario(loads(_SMALL_SPEC)).to_dict()
        walled = run_scenario(loads(
            _SMALL_SPEC
            + "  max_batch_latency_ms: 60000\n  max_wall_seconds: 300\n"
        )).to_dict()
        checks = {c["name"]: c for c in walled["exit_checks"]}
        assert checks["max_batch_latency_ms"]["passed"]
        assert checks["max_wall_seconds"]["passed"]
        assert 0 < checks["max_batch_latency_ms"]["actual"] < 60000
        # Everything except the wall checks (and the spec fingerprint,
        # which hashes the spec text) is byte-identical to the plain run.
        walled["exit_checks"] = [
            c for c in walled["exit_checks"]
            if c["name"] not in ("max_batch_latency_ms", "max_wall_seconds")
        ]
        walled["fingerprint"] = plain["fingerprint"]
        assert json.dumps(walled, sort_keys=True) \
            == json.dumps(plain, sort_keys=True)

    def test_blown_latency_budget_fails_the_run(self):
        report = run_scenario(loads(
            _SMALL_SPEC + "  max_batch_latency_ms: 0.000001\n"
        ))
        checks = {c.name: c.passed for c in report.exit_checks}
        assert checks["max_batch_latency_ms"] is False
        assert report.passed is False

    def test_wall_budget_stops_scheduling_early(self):
        spec_text = _SMALL_SPEC.replace("batches: 2", "batches: 6").replace(
            "min_batches: 2", "min_batches: 0"
        ) + "  max_wall_seconds: 0.000001\n"
        report = run_scenario(loads(spec_text))
        assert report.totals["batches"] < 6

    def test_spec_validation_rejects_bad_values(self):
        from repro.scenario import SpecError

        with pytest.raises(SpecError):
            loads(_SMALL_SPEC + "  max_batch_latency_ms: nope\n")
        with pytest.raises(SpecError):
            loads(_SMALL_SPEC + "  max_wall_seconds: true\n")
