"""The scenario runner and the shipped library.

Tier-1 runs the ``smoke``-tagged scenarios plus targeted event-loop
checks; the full 14-scenario library runs under ``-m slow`` (the CI
scenario matrix) so tier-1 wall-clock stays flat.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.scenario import ScenarioError, loads, run_scenario
from repro.scenario.library import (
    SMOKE_TAG,
    library_paths,
    load_library,
    load_library_scenario,
)

SMOKE_NAMES = sorted(
    name for name, spec in
    ((s.name, s) for s in load_library())
    if SMOKE_TAG in spec.tags
)
ALL_NAMES = sorted(library_paths())


class TestSmokeScenarios:
    @pytest.mark.parametrize("name", SMOKE_NAMES)
    def test_smoke_scenario_passes_its_exit_conditions(self, name):
        report = run_scenario(load_library_scenario(name))
        failed = [c.to_dict() for c in report.exit_checks if not c.passed]
        assert report.passed, f"{name} failed exit checks: {failed}"

    def test_report_shape_is_complete(self):
        report = run_scenario(load_library_scenario(SMOKE_NAMES[0]))
        data = report.to_dict()
        for key in ("scenario", "seed", "fingerprint", "executor", "passed",
                    "totals", "batches", "precision_trajectory", "incidents",
                    "alerts", "drift_events", "taxonomy_changes", "crowd",
                    "faults", "rules", "fired_digest", "exit_checks"):
            assert key in data
        assert data["totals"]["items"] > 0
        assert data["totals"]["items_per_sim_hour"] > 0
        assert len(data["precision_trajectory"]) == data["totals"]["batches"]
        json.dumps(data)  # JSON-safe throughout


@pytest.mark.slow
class TestFullLibrary:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_library_scenario_passes_its_exit_conditions(self, name):
        spec = load_library_scenario(name)
        report = run_scenario(spec)
        failed = [c.to_dict() for c in report.exit_checks if not c.passed]
        assert report.passed, f"{name} failed exit checks: {failed}"

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_library_scenario_is_deterministic(self, name):
        spec = load_library_scenario(name)
        first = run_scenario(spec)
        second = run_scenario(spec)
        assert first.to_json() == second.to_json()


class TestEventLoop:
    def test_seed_override_changes_the_run(self):
        spec = load_library_scenario("baseline-steady-state")
        default = run_scenario(spec)
        overridden = run_scenario(spec, seed=spec.seed + 1)
        assert default.seed != overridden.seed
        assert default.to_json() != overridden.to_json()

    def test_unknown_drift_type_raises_scenario_error(self):
        spec = loads(
            "name: bad\n"
            "traffic:\n"
            "  batches: 2\n"
            "drift:\n"
            "  - at_batch: 0\n"
            "    op: shift_heads\n"
            "    type: no-such-type\n"
            "    heads: [x]\n"
        )
        with pytest.raises(ScenarioError, match="no-such-type"):
            run_scenario(spec)

    def test_unknown_obvious_rule_type_raises(self):
        spec = loads(
            "name: bad\n"
            "catalog:\n"
            "  obvious_rule_types: [no-such-type]\n"
        )
        with pytest.raises(ScenarioError, match="no-such-type"):
            run_scenario(spec)

    def test_rule_churn_disables_and_reenables(self):
        spec = loads(
            "name: churny\n"
            "seed: 5\n"
            "catalog:\n"
            "  obvious_rule_types: ['*']\n"
            "traffic:\n"
            "  batches: 3\n"
            "rule_churn:\n"
            "  - at_batch: 0\n"
            "    disable_count: 10\n"
            "    reenable_after: 2\n"
            "exit:\n"
            "  min_rules_disabled: 10\n"
        )
        report = run_scenario(spec)
        assert report.passed
        assert report.rules["disabled"] >= 10

    def test_taxonomy_split_report_row(self):
        report = run_scenario(load_library_scenario("taxonomy-split-work-pants"))
        rows = report.taxonomy_changes
        assert len(rows) == 1
        assert rows[0]["op"] == "split"
        assert "cargo pants" in rows[0]["detail"]
        assert rows[0]["disabled"] >= 1

    def test_taxonomy_merge_retargets_rules(self):
        spec = loads(
            "name: mergey\n"
            "seed: 6\n"
            "catalog:\n"
            "  obvious_rule_types: ['*']\n"
            "traffic:\n"
            "  batches: 2\n"
            "taxonomy_changes:\n"
            "  - at_batch: 1\n"
            "    op: merge\n"
            "    types: [area rugs, bath rugs]\n"
            "    merged: rugs\n"
            "exit:\n"
            "  min_taxonomy_changes: 1\n"
        )
        report = run_scenario(spec)
        assert report.passed
        row = report.taxonomy_changes[0]
        assert row["op"] == "merge"
        assert row["invalidated"] >= 2
        assert row["retargeted"] == row["invalidated"]
        assert row["disabled"] == 0

    def test_incident_ordinals_are_run_local(self):
        """Incident ids come from a process-global counter; reports must
        use per-run ordinals so two runs in one process stay identical."""
        spec = load_library_scenario("vendor-vocabulary-storm")
        first = run_scenario(spec)
        second = run_scenario(spec)
        assert first.incidents == second.incidents
        assert [i["ordinal"] for i in first.incidents] == list(
            range(1, len(first.incidents) + 1)
        )


class TestScenarioCli:
    def test_list_smoke(self, capsys):
        assert cli_main(["scenario", "list", "--tag", "smoke"]) == 0
        out = capsys.readouterr().out
        for name in SMOKE_NAMES:
            assert name in out

    def test_list_json(self, capsys):
        assert cli_main(["scenario", "list", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {row["name"] for row in rows} == set(ALL_NAMES)

    def test_run_writes_report_and_renders(self, tmp_path, capsys):
        out = tmp_path / "health.json"
        code = cli_main([
            "scenario", "run", "baseline-steady-state", "--out", str(out),
        ])
        assert code == 0
        rendered = capsys.readouterr().out
        assert "baseline-steady-state" in rendered
        assert "[PASS]" in rendered
        data = json.loads(out.read_text())
        assert data["scenario"] == "baseline-steady-state"

    def test_run_twice_is_byte_identical(self, tmp_path):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            assert cli_main([
                "scenario", "run", "baseline-steady-state",
                "--quiet", "--out", str(path),
            ]) == 0
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_report_rerenders_saved_json(self, tmp_path, capsys):
        out = tmp_path / "health.json"
        cli_main(["scenario", "run", "baseline-steady-state",
                  "--quiet", "--out", str(out)])
        capsys.readouterr()
        assert cli_main(["scenario", "report", str(out)]) == 0
        assert "[PASS]" in capsys.readouterr().out

    def test_run_unknown_scenario_errors(self, capsys):
        assert cli_main(["scenario", "run", "no-such-scenario"]) == 1
        assert "unknown" in capsys.readouterr().err

    def test_run_spec_from_file_path(self, tmp_path, capsys):
        spec_path = tmp_path / "mini.yaml"
        spec_path.write_text(
            "name: mini\n"
            "catalog:\n"
            "  obvious_rule_types: ['*']\n"
            "traffic:\n"
            "  batches: 2\n"
            "exit:\n"
            "  min_batches: 2\n"
        )
        assert cli_main(["scenario", "run", str(spec_path)]) == 0
        assert "[PASS]" in capsys.readouterr().out
