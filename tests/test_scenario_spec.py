"""Scenario spec loading and validation, plus the YAML fallback parser.

The shipped library must parse identically under PyYAML and the
dependency-free fallback in :mod:`repro.scenario.yamlio` — a file the two
parsers disagree on would silently break the determinism contract on a
bare install.
"""

import pathlib

import pytest

from repro.scenario import ScenarioSpec, SpecError, YamlError, loads
from repro.scenario.library import SMOKE_TAG, library_paths, load_library
from repro.scenario.yamlio import fallback_load

try:
    import yaml as pyyaml
except ImportError:  # pragma: no cover - exercised on bare installs
    pyyaml = None

GOLDEN_SCENARIOS = pathlib.Path(__file__).parent / "golden" / "scenarios"

MINIMAL = """
name: tiny
traffic:
  batches: 2
"""


def all_spec_paths():
    paths = list(library_paths().values())
    paths.extend(str(p) for p in sorted(GOLDEN_SCENARIOS.glob("*.yaml")))
    return paths


class TestYamlFallback:
    def test_scalars(self):
        text = "a: 1\nb: 2.5\nc: true\nd: null\ne: plain text\nf: 'quoted: text'"
        assert fallback_load(text) == {
            "a": 1, "b": 2.5, "c": True, "d": None,
            "e": "plain text", "f": "quoted: text",
        }

    def test_nested_blocks_and_lists(self):
        text = (
            "outer:\n"
            "  inner:\n"
            "    - name: x\n"
            "      n: 1\n"
            "    - name: y\n"
            "  flags: [a, b]\n"
            "  map: {k: v, n: 3}\n"
        )
        assert fallback_load(text) == {
            "outer": {
                "inner": [{"name": "x", "n": 1}, {"name": "y"}],
                "flags": ["a", "b"],
                "map": {"k": "v", "n": 3},
            }
        }

    def test_comments_stripped_outside_strings(self):
        text = "a: 1  # trailing\n# full line\nb: 'kept # inside'\n"
        assert fallback_load(text) == {"a": 1, "b": "kept # inside"}

    def test_rejects_tabs_in_indentation(self):
        with pytest.raises(YamlError, match="tabs"):
            fallback_load("a:\n\tb: 1")

    def test_rejects_duplicate_keys(self):
        with pytest.raises(YamlError, match="duplicate"):
            fallback_load("a: 1\na: 2")

    def test_error_carries_line_number(self):
        with pytest.raises(YamlError) as exc:
            fallback_load("ok: 1\nbroken junk without colon\n")
        assert exc.value.line == 2

    @pytest.mark.skipif(pyyaml is None, reason="PyYAML not installed")
    @pytest.mark.parametrize("path", all_spec_paths(),
                             ids=lambda p: pathlib.Path(p).stem)
    def test_fallback_agrees_with_pyyaml_on_every_shipped_spec(self, path):
        text = pathlib.Path(path).read_text()
        assert fallback_load(text) == pyyaml.safe_load(text)


class TestSpecValidation:
    def test_minimal_spec_defaults(self):
        spec = loads(MINIMAL)
        assert spec.name == "tiny"
        assert spec.traffic.batches == 2
        assert spec.executor.kind == "incremental"
        assert spec.seed == 0
        assert len(spec.exit) == 0

    def test_unknown_top_key_is_an_error(self):
        with pytest.raises(SpecError, match="unknown keys"):
            loads("name: x\nbogus: 1\n")

    def test_name_is_required(self):
        with pytest.raises(SpecError, match="name.*required"):
            loads("traffic:\n  batches: 2\n")

    def test_event_past_last_batch_is_an_error(self):
        with pytest.raises(SpecError, match="past the last"):
            loads(
                "name: x\n"
                "traffic:\n"
                "  batches: 2\n"
                "drift:\n"
                "  - at_batch: 5\n"
                "    op: surge_department\n"
                "    department: home\n"
            )

    def test_fault_plan_requires_partitioned_executor(self):
        with pytest.raises(SpecError, match="partitioned"):
            loads(
                "name: x\n"
                "faults:\n"
                "  plan:\n"
                "    - kind: crash\n"
                "      worker: 0\n"
            )

    def test_burst_must_name_a_declared_vendor(self):
        with pytest.raises(SpecError, match="unknown vendor"):
            loads(
                "name: x\n"
                "traffic:\n"
                "  batches: 3\n"
                "  vendors:\n"
                "    - name: a\n"
                "  bursts:\n"
                "    - at_batch: 1\n"
                "      vendor: ghost\n"
            )

    def test_split_needs_two_new_types(self):
        with pytest.raises(SpecError, match="split needs"):
            loads(
                "name: x\n"
                "traffic:\n"
                "  batches: 3\n"
                "taxonomy_changes:\n"
                "  - at_batch: 1\n"
                "    op: split\n"
                "    type: jeans\n"
                "    into:\n"
                "      only-one: [a]\n"
            )

    def test_even_crowd_votes_rejected(self):
        with pytest.raises(SpecError, match="odd"):
            loads("name: x\ncrowd:\n  votes_per_pair: 4\n")

    def test_unknown_exit_key_rejected(self):
        with pytest.raises(SpecError, match="unknown keys"):
            loads("name: x\nexit:\n  min_bananas: 3\n")

    def test_drift_op_requires_its_fields(self):
        with pytest.raises(SpecError, match="extend_slot needs"):
            loads(
                "name: x\n"
                "drift:\n"
                "  - at_batch: 0\n"
                "    op: extend_slot\n"
                "    type: jeans\n"
            )

    def test_fingerprint_is_stable_and_seed_independent_fields_change_it(self):
        spec_a = loads(MINIMAL)
        spec_b = loads(MINIMAL)
        assert spec_a.fingerprint() == spec_b.fingerprint()
        assert spec_a.fingerprint() != loads(
            MINIMAL.replace("batches: 2", "batches: 3")
        ).fingerprint()

    def test_to_dict_is_json_safe_and_key_complete(self):
        import json

        spec = loads(MINIMAL)
        data = spec.to_dict()
        json.dumps(data)  # must not raise
        assert set(data) == set(ScenarioSpec.TOP_KEYS)


class TestLibrary:
    def test_library_has_at_least_twelve_scenarios(self):
        assert len(library_paths()) >= 12

    def test_every_library_spec_loads_and_declares_exits(self):
        specs = load_library()
        for spec in specs:
            assert spec.name
            assert spec.description
            assert len(spec.exit) >= 1, f"{spec.name} declares no exit conditions"

    def test_smoke_subset_is_nonempty_and_small(self):
        smoke = [s for s in load_library() if SMOKE_TAG in s.tags]
        assert 2 <= len(smoke) <= 6

    def test_library_names_match_file_stems(self):
        for stem, path in library_paths().items():
            from repro.scenario import load_scenario

            assert load_scenario(path).name == stem
