"""Tests for the vertical-search and clustering substrates."""

import pytest

from repro.catalog import CatalogGenerator, build_seed_taxonomy
from repro.catalog.types import ProductItem
from repro.clustering import (
    CannotLinkRule,
    MustLinkRule,
    RuleConstrainedClusterer,
)
from repro.em import RuleBasedMatcher, block_pairs, generate_em_dataset, parse_em_rule
from repro.em.records import Record
from repro.search import (
    BlacklistResultRule,
    BoostRule,
    QueryRewriteRule,
    SearchEngine,
)


def item(item_id, title, true_type=""):
    return ProductItem(item_id=item_id, title=title, true_type=true_type)


CORPUS = [
    item("i1", "castrol motor oil 5 quart", "motor oil"),
    item("i2", "engine oil synthetic blend", "motor oil"),
    item("i3", "truck oil conventional", "motor oil"),
    item("i4", "premium oil filter cartridge", "oil filters"),
    item("i5", "shaw area rug 5x7", "area rugs"),
    item("i6", "gold diamond ring", "rings"),
]


class TestSearchEngine:
    @pytest.fixture()
    def engine(self):
        return SearchEngine(CORPUS)

    def test_basic_retrieval_ranked(self, engine):
        results = engine.search("motor oil")
        assert results
        assert results[0].item.item_id == "i1"
        assert all(a.score >= b.score for a, b in zip(results, results[1:]))

    def test_rewrite_rule_expands_recall(self, engine):
        before = {r.item.item_id: r.score for r in engine.search("motor oil")}
        engine.add_rewrite(QueryRewriteRule("motor", ("engine", "truck")))
        after = {r.item.item_id: r.score for r in engine.search("motor oil")}
        # The synonym items score much higher once the query is expanded.
        assert after["i2"] > before["i2"]
        assert after["i3"] > before["i3"]
        top3 = [r.item.item_id for r in engine.search("motor oil", top_k=3)]
        assert set(top3) == {"i1", "i2", "i3"}

    def test_rewrite_only_triggers_on_term(self, engine):
        engine.add_rewrite(QueryRewriteRule("motor", ("engine",)))
        assert engine.expand_query("area rug") == ["area", "rug"]

    def test_blacklist_rule_drops_trap_results(self, engine):
        engine.add_rewrite(QueryRewriteRule("motor", ("engine", "truck")))
        assert any(r.item.item_id == "i4"
                   for r in engine.search("motor oil", top_k=10))
        engine.add_blacklist(BlacklistResultRule("oil", "oil filters?"))
        ids = {r.item.item_id for r in engine.search("motor oil", top_k=10)}
        assert "i4" not in ids

    def test_blacklist_inactive_for_other_queries(self, engine):
        engine.add_blacklist(BlacklistResultRule("oil", "oil filters?"))
        ids = {r.item.item_id for r in engine.search("premium cartridge")}
        assert "i4" in ids

    def test_boost_rule_reorders(self, engine):
        results = engine.search("oil")
        engine.add_boost(BoostRule("oil", "oil filters", factor=50.0))
        boosted = engine.search("oil")
        assert boosted[0].item.true_type == "oil filters"
        assert results[0].item.item_id != boosted[0].item.item_id

    def test_recall_at(self, engine):
        engine.add_rewrite(QueryRewriteRule("motor", ("engine", "truck")))
        engine.add_blacklist(BlacklistResultRule("motor", "oil filters?"))
        assert engine.recall_at("motor oil", "motor oil", k=3) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SearchEngine([])
        with pytest.raises(ValueError):
            QueryRewriteRule("x", ())
        with pytest.raises(ValueError):
            BoostRule("x", "t", factor=0)

    def test_on_generated_catalog(self):
        generator = CatalogGenerator(build_seed_taxonomy(), seed=31)
        engine = SearchEngine(generator.generate_items(2000))
        engine.add_rewrite(QueryRewriteRule(
            "motor", tuple(build_seed_taxonomy().get("motor oil").slot("vehicle"))))
        engine.add_blacklist(BlacklistResultRule("motor", "oil filters?"))
        assert engine.recall_at("motor oil", "motor oil", k=5) >= 0.8


def record(record_id, title, entity="", **fields):
    payload = {"title": title}
    payload.update(fields)
    return Record(record_id=record_id, fields=payload, entity_id=entity)


class TestClustering:
    def test_components_from_matches(self):
        records = [record(f"r{i}", f"thing {i}") for i in range(4)]
        matches = {frozenset(("r0", "r1")), frozenset(("r2", "r3"))}
        clusters = RuleConstrainedClusterer().cluster(records, matches)
        assert {frozenset(c) for c in clusters} == {
            frozenset({"r0", "r1"}), frozenset({"r2", "r3"})}

    def test_must_link_merges(self):
        records = [record("r0", "acme widget alpha"),
                   record("r1", "acme widget alpha deluxe")]
        rule = MustLinkRule("jaccard(a.title, b.title) >= 0.5")
        clusters = RuleConstrainedClusterer(must_link=[rule]).cluster(
            records, set(), candidate_pairs=[(records[0], records[1])])
        assert clusters == [{"r0", "r1"}]

    def test_cannot_link_cuts_direct_edge(self):
        records = [record("r0", "new gadget", condition="new"),
                   record("r1", "new gadget", condition="refurbished")]
        rule = CannotLinkRule("jaccard(a.title, b.title) >= 0.5")
        clusterer = RuleConstrainedClusterer(cannot_link=[rule])
        clusters = clusterer.cluster(
            records, {frozenset(("r0", "r1"))},
            candidate_pairs=[(records[0], records[1])])
        assert {frozenset(c) for c in clusters} == {
            frozenset({"r0"}), frozenset({"r1"})}

    def test_cannot_link_beats_must_link(self):
        records = [record("r0", "same title"), record("r1", "same title")]
        must = MustLinkRule("jaccard(a.title, b.title) >= 0.5")
        cannot = CannotLinkRule("jaccard(a.title, b.title) >= 0.5")
        clusters = RuleConstrainedClusterer(
            must_link=[must], cannot_link=[cannot]
        ).cluster(records, set(), candidate_pairs=[(records[0], records[1])])
        assert len(clusters) == 2

    def test_transitive_forbidden_pair_split(self):
        # r0-r1 and r1-r2 matched; r0-r2 forbidden -> component must split.
        records = [record("r0", "alpha beta", kind="x"),
                   record("r1", "alpha beta gamma"),
                   record("r2", "beta gamma", kind="y")]
        cannot = CannotLinkRule("a.kind = b.kind")
        # kinds differ -> use an explicit pair test instead:
        cannot = CannotLinkRule("jaccard(a.title, b.title) >= 0.3")
        clusterer = RuleConstrainedClusterer(cannot_link=[cannot])
        clusters = clusterer.cluster(
            records,
            {frozenset(("r0", "r1")), frozenset(("r1", "r2"))},
            candidate_pairs=[(records[0], records[2])],
        )
        membership = {rid: i for i, c in enumerate(clusters) for rid in c}
        assert membership["r0"] != membership["r2"]

    def test_end_to_end_with_em(self):
        generator = CatalogGenerator(build_seed_taxonomy(), seed=41)
        dataset = generate_em_dataset(generator, n_entities=150, seed=41)
        pairs = block_pairs(dataset.records)
        matcher = RuleBasedMatcher([
            parse_em_rule("jaccard(a.title, b.title) >= 0.7 & a.type = b.type -> match"),
        ])
        matches = matcher.match(pairs)
        clusterer = RuleConstrainedClusterer()
        clusters = clusterer.cluster(dataset.records, matches, candidate_pairs=pairs)
        report = clusterer.evaluate(clusters, dataset, candidate_pairs=pairs)
        assert report.pair_precision > 0.7
        assert report.pair_recall >= 0.35
        assert report.cannot_link_violations == 0
