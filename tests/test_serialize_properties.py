"""Hypothesis round-trip properties for rule serialization.

Every registered (serializable) rule class must survive
``rule_to_dict → json → rule_from_dict`` with its logic, metadata, and
match behaviour intact — rules outlive processes, so the wire form is the
contract workers and rule stores depend on.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.types import ProductItem
from repro.core.prepared import prepare
from repro.core.rule import (
    AttributeRule,
    BlacklistRule,
    PredicateRule,
    RegexRule,
    Rule,
    SequenceRule,
    ValueConstraintRule,
    WhitelistRule,
)
from repro.core.serialize import (
    UnserializableRuleError,
    rule_from_dict,
    rule_to_dict,
    rules_from_dicts,
    rules_to_dicts,
)

SERIALIZABLE = (WhitelistRule, BlacklistRule, SequenceRule, AttributeRule,
                ValueConstraintRule)

words = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=2, max_size=8)
type_names = words
# A safe regex subset: alternations of literal words, optional plural.
patterns = st.lists(words, min_size=1, max_size=3).map(
    lambda ws: "|".join(ws)
)
metadata = st.fixed_dictionaries({
    "rule_id": st.integers(min_value=0, max_value=10**6).map(lambda n: f"r-{n}"),
    "author": words,
    "created_at": st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    "confidence": st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    "provenance": st.sampled_from(["manual", "learned", "imported"]),
})

whitelists = st.builds(
    lambda p, t, m: WhitelistRule(p, t, **m), patterns, type_names, metadata)
blacklists = st.builds(
    lambda p, t, m: BlacklistRule(p, t, **m), patterns, type_names, metadata)
sequences = st.builds(
    lambda tokens, t, support, m: SequenceRule(tokens, t, support=support, **m),
    st.lists(words, min_size=1, max_size=4),
    type_names,
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    metadata,
)
attributes = st.builds(
    lambda a, t, m: AttributeRule(a, t, **m), words, type_names, metadata)
values = st.builds(
    lambda a, v, allowed, m: ValueConstraintRule(a, v, allowed, **m),
    words, words, st.lists(type_names, min_size=1, max_size=3), metadata)

any_rule = st.one_of(whitelists, blacklists, sequences, attributes, values)

items = st.builds(
    lambda title_words, attrs: ProductItem(
        item_id="x", title=" ".join(title_words), attributes=attrs
    ),
    st.lists(words, min_size=0, max_size=6),
    st.dictionaries(words, words, max_size=3),
)


def roundtrip(rule):
    """Through the full wire format: dict → JSON text → dict → rule."""
    return rule_from_dict(json.loads(json.dumps(rule_to_dict(rule))))


@settings(max_examples=60, deadline=None)
@given(rule=any_rule, enabled=st.booleans())
def test_roundtrip_preserves_identity_and_metadata(rule, enabled):
    rule.enabled = enabled
    clone = roundtrip(rule)
    assert type(clone) is type(rule)
    assert clone.rule_id == rule.rule_id
    assert clone.author == rule.author
    assert clone.created_at == rule.created_at
    assert clone.confidence == rule.confidence
    assert clone.provenance == rule.provenance
    assert clone.enabled == rule.enabled
    assert clone.target_type == rule.target_type


@settings(max_examples=60, deadline=None)
@given(rule=any_rule, probe_items=st.lists(items, min_size=1, max_size=8))
def test_roundtrip_preserves_match_behaviour(rule, probe_items):
    clone = roundtrip(rule)
    for thing in probe_items:
        assert clone.matches(thing) == rule.matches(thing)
        prepared = prepare(thing)
        assert clone.matches_prepared(prepared) == rule.matches_prepared(prepared)


@settings(max_examples=60, deadline=None)
@given(rule=any_rule)
def test_double_roundtrip_is_stable(rule):
    once = rule_to_dict(rule)
    twice = rule_to_dict(roundtrip(rule))
    assert once == twice


@settings(max_examples=40, deadline=None)
@given(rules=st.lists(any_rule, max_size=6))
def test_bulk_roundtrip_preserves_order(rules):
    clones = rules_from_dicts(json.loads(json.dumps(rules_to_dicts(rules))))
    assert [c.rule_id for c in clones] == [r.rule_id for r in rules]
    assert [type(c) for c in clones] == [type(r) for r in rules]


def _concrete_rule_classes():
    """Every concrete Rule subclass reachable from the core package."""
    import repro.core.language  # noqa: F401 -- registers its Rule subclasses

    found = set()
    frontier = [Rule]
    while frontier:
        cls = frontier.pop()
        subclasses = cls.__subclasses__()
        frontier.extend(subclasses)
        # RegexRule is an intermediate base; Rule and it are not concrete.
        if cls not in (Rule, RegexRule):
            found.add(cls)
    return found


def test_every_registered_rule_class_is_covered():
    """No rule class can be added without a serialization decision.

    Each concrete class must either round-trip (and be exercised by the
    properties above) or be explicitly documented as unserializable.
    """
    from repro.core.language import ConstraintRule

    # Clause-carrying rules hold closures; the DSL text is their stable form.
    documented_unserializable = {PredicateRule, ConstraintRule}
    assert _concrete_rule_classes() == set(SERIALIZABLE) | documented_unserializable


def test_predicate_rules_refuse_to_serialize():
    from repro.core.rule import Clause

    bomb = PredicateRule([Clause("always", lambda item: True)], "t", rule_id="p-1")
    try:
        rule_to_dict(bomb)
    except UnserializableRuleError as err:
        assert "PredicateRule" in str(err)
    else:
        raise AssertionError("expected UnserializableRuleError")


def test_sequence_support_defaults_when_absent():
    payload = rule_to_dict(SequenceRule(("area", "rug"), "area rugs", support=0.7))
    del payload["support"]
    assert rule_from_dict(payload).support == 0.0
