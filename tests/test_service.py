"""Unit and console coverage for the durable streaming service.

Companion to ``test_service_resume.py`` (which owns the crash-kill
identity property). Here: the checkpoint store's offset/rollback
mechanics, the series ring, the metrics snapshot/delta sampling API
(sampling must never perturb the registry), the HTTP console routes,
the disk-only dashboard, and the serve/dashboard/scenario-diff CLI.
"""

from __future__ import annotations

import json
import os
import urllib.error
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.observability.metrics import MetricsRegistry
from repro.service import (
    CheckpointStore,
    SeriesStore,
    ServiceConfig,
    ServiceHttpServer,
    StreamService,
    render_dashboard,
)
from repro.service.checkpoint import CHECKPOINT_VERSION, truncate_file
from repro.service.series import load_series


# -- checkpoint store ----------------------------------------------------------


class TestCheckpointStore:
    def test_save_load_roundtrip(self, tmp_path):
        with CheckpointStore(str(tmp_path), fsync=False) as store:
            assert store.load() is None
            store.save({"version": CHECKPOINT_VERSION, "ordinal": 3})
            assert store.load()["ordinal"] == 3

    def test_version_mismatch_raises(self, tmp_path):
        with CheckpointStore(str(tmp_path), fsync=False) as store:
            store.save({"version": 999})
            with pytest.raises(ValueError, match="version"):
                store.load()

    def test_journal_append_and_offsets(self, tmp_path):
        with CheckpointStore(str(tmp_path), fsync=False) as store:
            assert store.journal_offset() == 0
            store.append_batch({"ordinal": 1})
            first = store.journal_offset()
            store.append_batch({"ordinal": 2})
            assert store.journal_offset() > first
            assert [r["ordinal"] for r in store.read_journal()] == [1, 2]

    def test_truncate_rolls_back_unacknowledged_tail(self, tmp_path):
        root = str(tmp_path)
        with CheckpointStore(root, fsync=False) as store:
            store.append_batch({"ordinal": 1})
            keep = store.journal_offset()
            store.append_batch({"ordinal": 2})
        with CheckpointStore(root, fsync=False) as store:
            dropped = store.truncate({"journal": keep})
            assert dropped["journal"] > 0
            assert dropped["spool"] == 0 and dropped["series"] == 0
            assert [r["ordinal"] for r in store.read_journal()] == [1]

    def test_truncate_after_journal_open_is_refused(self, tmp_path):
        with CheckpointStore(str(tmp_path), fsync=False) as store:
            store.append_batch({"ordinal": 1})
            with pytest.raises(RuntimeError, match="before the journal"):
                store.truncate({"journal": 0})

    def test_truncate_file_edge_cases(self, tmp_path):
        missing = str(tmp_path / "nope.jsonl")
        assert truncate_file(missing, 0) == 0
        with pytest.raises(FileNotFoundError):
            truncate_file(missing, 5)
        path = str(tmp_path / "log.jsonl")
        with open(path, "w") as handle:
            handle.write("x" * 10)
        with pytest.raises(ValueError, match="ahead of its logs"):
            truncate_file(path, 11)
        assert truncate_file(path, 10) == 0
        assert truncate_file(path, 4) == 6


# -- series store --------------------------------------------------------------


class TestSeriesStore:
    def test_ring_and_reload(self, tmp_path):
        path = str(tmp_path / "series.jsonl")
        with SeriesStore(path, window=3, fsync=False) as series:
            for ordinal in range(5):
                series.append({"ordinal": ordinal, "items": ordinal * 10})
            assert series.total_samples == 5
            assert [s["ordinal"] for s in series.tail(10)] == [2, 3, 4]
            assert series.column("items", 2) == [30.0, 40.0]
        # Reopen: the durable file replays the full history; the ring
        # keeps only the window.
        with SeriesStore(path, window=3, fsync=False) as series:
            assert series.total_samples == 5
            assert [s["ordinal"] for s in series.tail(10)] == [2, 3, 4]
        assert len(load_series(path)) == 5
        assert [s["ordinal"] for s in load_series(path, window=2)] == [3, 4]

    def test_rejects_bad_window_and_count(self, tmp_path):
        path = str(tmp_path / "series.jsonl")
        with pytest.raises(ValueError):
            SeriesStore(path, window=0)
        with SeriesStore(path, window=2, fsync=False) as series:
            with pytest.raises(ValueError):
                series.tail(-1)
            assert series.tail(0) == []


# -- metrics sampling (satellite: snapshot/delta must not perturb) -------------


class TestMetricsSampling:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("batches").inc()
        registry.counter("items", vendor="northstar").inc(40)
        registry.gauge("open_incidents").set(2)
        registry.histogram("latency").observe(0.25)
        return registry

    def test_delta_reports_interval_increase(self):
        registry = self._populated()
        prev = registry.snapshot()
        registry.counter("batches").inc(2)
        registry.histogram("latency").observe(0.75)
        delta = registry.delta(prev)
        assert delta["counters"]["batches"] == 2
        assert delta["counters"]["items{vendor=northstar}"] == 0
        assert delta["histograms"]["latency"]["count"] == 1
        assert delta["histograms"]["latency"]["sum"] == pytest.approx(0.75)
        assert delta["gauges"]["open_incidents"] == 2

    def test_sampling_leaves_values_untouched(self):
        """A poller may snapshot/delta every batch without resetting anything."""
        registry = self._populated()
        before = registry.snapshot()
        prev = registry.snapshot()
        for _ in range(10):
            registry.delta(prev)
            prev = registry.snapshot()
        assert registry.snapshot() == before
        assert registry.counter("batches").value == 1
        assert registry.histogram("latency").count == 1

    def test_dump_load_roundtrip_continues_accumulating(self):
        registry = self._populated()
        clone = MetricsRegistry.load(registry.dump())
        assert clone.snapshot() == registry.snapshot()
        assert clone.dump() == registry.dump()
        clone.counter("batches").inc()
        assert clone.counter("batches").value \
            == registry.counter("batches").value + 1


# -- live console + dashboard --------------------------------------------------


@pytest.fixture(scope="module")
def live_service(tmp_path_factory):
    """One running 4-batch service shared by the read-only console tests."""
    root = str(tmp_path_factory.mktemp("service-live") / "run")
    service = StreamService(root, fsync=False)
    service.start()
    service.run_to(4)
    yield service
    service.close()


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read())


class TestHttpConsole:
    @pytest.fixture(scope="class")
    def server(self, live_service):
        with ServiceHttpServer(live_service) as server:
            yield server

    def test_health(self, server):
        status, doc = _get(server.url + "/health")
        assert status == 200
        assert doc["status"] == "ok" and doc["ordinal"] == 4
        assert "rule-based" in doc["stages"]

    def test_metrics(self, server):
        status, doc = _get(server.url + "/metrics")
        assert status == 200
        assert any(k.startswith("classify") or k for k in doc["counters"])

    def test_incidents_and_series(self, server):
        status, incidents = _get(server.url + "/incidents")
        assert status == 200 and isinstance(incidents, list)
        status, samples = _get(server.url + "/series?n=2")
        assert status == 200 and len(samples) == 2
        assert samples[-1]["ordinal"] == 4

    def test_rule_view_and_404(self, server):
        status, doc = _get(server.url + "/rules/svc-wl-0001")
        assert status == 200
        assert doc["stage"] == "rule-based" and doc["enabled"] is True
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/rules/no-such-rule")
        assert excinfo.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/no-such-route")
        assert excinfo.value.code == 404

    def test_index(self, server):
        status, doc = _get(server.url + "/")
        assert status == 200 and "/health" in doc["endpoints"]


class TestDashboard:
    def test_renders_from_disk(self, live_service):
        text = render_dashboard(live_service.root)
        assert "ordinal 4" in text
        assert "items/batch" in text and "coverage" in text

    def test_missing_root(self, tmp_path):
        text = render_dashboard(str(tmp_path / "empty"))
        assert "has the service run?" in text


# -- config fingerprint guard --------------------------------------------------


def test_resume_with_mismatched_config_raises(tmp_path):
    root = str(tmp_path / "run")
    service = StreamService(root, fsync=False)
    service.start()
    service.run_to(1)
    service.close()
    conflicting = StreamService(
        root, config=ServiceConfig(seed=99), fsync=False
    )
    with pytest.raises(ValueError, match="fingerprint mismatch"):
        conflicting.start()
    conflicting.close()


# -- CLI -----------------------------------------------------------------------


class TestServiceCli:
    def test_dashboard_out(self, live_service, tmp_path, capsys):
        out = str(tmp_path / "dash.txt")
        assert cli_main(
            ["dashboard", "--root", live_service.root, "--out", out]
        ) == 0
        with open(out) as handle:
            assert "repro stream service" in handle.read()

    def test_serve_runs_batches_then_exits(self, tmp_path, capsys):
        root = str(tmp_path / "run")
        assert cli_main(
            ["serve", "--root", root, "--batches", "2",
             "--no-fsync", "--quiet"]
        ) == 0
        captured = capsys.readouterr()
        assert "serving" in captured.err
        assert os.path.exists(os.path.join(root, "checkpoint.json"))
