"""Crash-kill-resume durability for the streaming service.

The acceptance bar from the durable-service work: a daemon SIGKILL'd at
*any* batch boundary — or with a torn journal/spool tail from a write
the crash interrupted — resumes and finishes with the exact identity an
uninterrupted run reaches (digest chain, tracker windows, incident log,
provenance counts, byte for byte). ``SimulatedCrash`` stands in for the
kill; the harness's cleanup releases OS handles only, never flushes.

Fault model: only bytes past the last *checkpointed* offset may be torn.
The checkpoint records each append-only file's durable length; tearing
acknowledged bytes below that offset is storage corruption, which the
resume path must refuse (see ``test_torn_acknowledged_bytes_refused``).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.checkpoint import (
    CHECKPOINT_NAME,
    JOURNAL_NAME,
    SPOOL_NAME,
)
from repro.service.daemon import StreamService
from repro.service.harness import (
    crash_resume_identity,
    identity_equal,
    run_service,
    uninterrupted_identity,
)
from repro.testing.faults import CrashPlan, SimulatedCrash, tear_file

BATCHES = 5
CRASH_POINTS = (
    "journal-appended",
    "classified",
    "before-checkpoint",
    "after-checkpoint",
)


def _read_checkpoint(root: str) -> dict:
    import json

    with open(os.path.join(root, CHECKPOINT_NAME)) as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def reference(tmp_path_factory) -> dict:
    """The uninterrupted 5-batch identity every kill scenario must match."""
    root = str(tmp_path_factory.mktemp("service-ref") / "run")
    return uninterrupted_identity(root, BATCHES, fsync=False)


@pytest.fixture(scope="module")
def reference_12(tmp_path_factory) -> dict:
    """A longer run that naturally opens a rule incident (seq 1)."""
    root = str(tmp_path_factory.mktemp("service-ref12") / "run")
    identity = uninterrupted_identity(root, 12, fsync=False)
    assert identity["incident_seq"] >= 1, "fixture expects a natural incident"
    return identity


class TestKillAtEveryBarrier:
    @pytest.mark.parametrize("crash_at", CRASH_POINTS)
    def test_mid_run_kill_resumes_identically(
        self, crash_at, reference, tmp_path
    ):
        resumed = crash_resume_identity(
            str(tmp_path / "run"), BATCHES, crash_at,
            crash_on_hit=2, fsync=False,
        )
        assert identity_equal(resumed, reference)

    def test_kill_on_first_batch(self, reference, tmp_path):
        resumed = crash_resume_identity(
            str(tmp_path / "run"), BATCHES, "journal-appended",
            crash_on_hit=1, fsync=False,
        )
        assert identity_equal(resumed, reference)

    def test_kill_on_final_checkpoint(self, reference, tmp_path):
        resumed = crash_resume_identity(
            str(tmp_path / "run"), BATCHES, "after-checkpoint",
            crash_on_hit=BATCHES, fsync=False,
        )
        assert identity_equal(resumed, reference)

    @given(
        crash_at=st.sampled_from(CRASH_POINTS),
        on_hit=st.integers(min_value=1, max_value=BATCHES),
    )
    @settings(max_examples=6, deadline=None)
    def test_property_any_barrier_any_batch(
        self, crash_at, on_hit, reference, tmp_path_factory
    ):
        root = str(
            tmp_path_factory.mktemp("service-kill")
            / f"{crash_at}-{on_hit}"
        )
        resumed = crash_resume_identity(
            root, BATCHES, crash_at, crash_on_hit=on_hit, fsync=False
        )
        assert identity_equal(resumed, reference)

    def test_kill_during_incident_run(self, reference_12, tmp_path):
        """Resume restores open incidents, disabled rules, repo pinning."""
        resumed = crash_resume_identity(
            str(tmp_path / "run"), 12, "journal-appended",
            crash_on_hit=9, fsync=False,
        )
        assert identity_equal(resumed, reference_12)
        assert resumed["incident_seq"] >= 1


class TestTornWrites:
    def test_torn_journal_tail(self, reference, tmp_path):
        """A half-written journal line past the checkpoint is discarded."""

        def mangle(root: str) -> None:
            tear_file(
                os.path.join(root, JOURNAL_NAME), garbage=b'{"half":'
            )

        resumed = crash_resume_identity(
            str(tmp_path / "run"), BATCHES, "journal-appended",
            crash_on_hit=3, fsync=False, mangle_after_crash=mangle,
        )
        assert identity_equal(resumed, reference)

    def test_torn_spool_tail(self, reference, tmp_path):
        """Provenance bytes the crash never acknowledged may be torn."""

        def mangle(root: str) -> None:
            spool = os.path.join(root, SPOOL_NAME)
            checkpointed = _read_checkpoint(root)["offsets"]["spool"]
            size = os.path.getsize(spool) if os.path.exists(spool) else 0
            if size > checkpointed:
                tear_file(
                    spool,
                    keep_bytes=checkpointed + (size - checkpointed) // 2,
                    garbage=b'{"torn',
                )

        resumed = crash_resume_identity(
            str(tmp_path / "run"), BATCHES, "classified",
            crash_on_hit=3, fsync=False, mangle_after_crash=mangle,
        )
        assert identity_equal(resumed, reference)

    def test_torn_acknowledged_bytes_refused(self, tmp_path):
        """Tearing *below* the checkpointed offset is corruption: raise."""
        root = str(tmp_path / "run")
        run_service(root, 3, fsync=False)

        offsets = _read_checkpoint(root)["offsets"]
        tear_file(
            os.path.join(root, JOURNAL_NAME),
            keep_bytes=max(0, offsets["journal"] - 10),
        )
        service = StreamService(root, fsync=False)
        with pytest.raises(ValueError, match="ahead of its logs"):
            service.start()
        service.close()


class TestDoubleKill:
    def test_two_sequential_kills(self, reference, tmp_path):
        """A resume that itself dies must still converge on the identity."""
        root = str(tmp_path / "run")

        def _killed_run(plan: CrashPlan) -> None:
            service = StreamService(
                root, fsync=False, crash_plan=plan
            )
            try:
                service.start()
                service.run_to(BATCHES)
            except SimulatedCrash:
                pass
            finally:
                # SIGKILL semantics: drop handles, flush nothing.
                service.store.close()
                if getattr(service, "series", None) is not None:
                    service.series.close()
                if hasattr(service, "provenance"):
                    service.provenance.close()
                if hasattr(service, "repository"):
                    service.repository.log.close()

        _killed_run(CrashPlan(crash_at="before-checkpoint", on_hit=2))
        _killed_run(CrashPlan(crash_at="journal-appended", on_hit=2))
        resumed = run_service(root, BATCHES, fsync=False)
        assert identity_equal(resumed, reference)


class TestCrashPrimitives:
    def test_crash_plan_counts_hits(self):
        plan = CrashPlan(crash_at="here", on_hit=2)
        plan.reached("here")
        plan.reached("elsewhere")
        with pytest.raises(SimulatedCrash) as excinfo:
            plan.reached("here")
        assert excinfo.value.point == "here"
        assert plan.hit == ["here", "elsewhere", "here"]
        # Disarmed after firing: the resumed run sails past the barrier.
        plan.reached("here")

    def test_crash_plan_unarmed_is_inert(self):
        plan = CrashPlan()
        for _ in range(5):
            plan.reached("anywhere")
        assert len(plan.hit) == 5

    def test_crash_plan_rejects_bad_on_hit(self):
        with pytest.raises(ValueError):
            CrashPlan(crash_at="x", on_hit=0)

    def test_tear_file_halves_final_line(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        with open(path, "w") as handle:
            handle.write('{"a": 1}\n{"b": 2222222222}\n')
        original = os.path.getsize(path)
        size = tear_file(path)
        assert size < original
        with open(path, "rb") as handle:
            data = handle.read()
        assert data.startswith(b'{"a": 1}\n')
        assert not data.endswith(b"\n")

    def test_tear_file_exact_offset_plus_garbage(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        with open(path, "w") as handle:
            handle.write('{"a": 1}\n')
        size = tear_file(path, keep_bytes=4, garbage=b"XX")
        assert size == 6
        with open(path, "rb") as handle:
            assert handle.read() == b'{"a"XX'
