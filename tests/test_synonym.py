"""Tests for the section 5.1 synonym-discovery tool."""

import pytest

from repro.analyst import SimulatedAnalyst
from repro.core import RuleParseError
from repro.synonym import (
    ContextModel,
    DiscoverySession,
    RocchioFeedback,
    SynonymTool,
    parse_syn_rule,
)
from repro.synonym.context import ContextMatch, extract_matches
from repro.synonym.generalize import generalized_regexes, golden_regex
from repro.utils.vectors import SparseVector


class TestParseSynRule:
    def test_basic(self):
        spec = parse_syn_rule(r"(motor | engine | \syn) oils? -> motor oil")
        assert spec.golden == ("motor", "engine")
        assert spec.before == ""
        assert spec.after == " oils?"
        assert spec.target_type == "motor oil"

    def test_spaces_in_disjunctions_tightened(self):
        spec = parse_syn_rule(r"(abrasive | \syn) (wheels? | discs?) -> abrasive wheels & discs")
        assert spec.after == " (wheels?|discs?)"

    def test_prefix_context(self):
        spec = parse_syn_rule(r"big (boys? | \syn) shorts? -> shorts")
        assert spec.before == "big "
        assert spec.golden == ("boys?",)

    def test_requires_marker(self):
        with pytest.raises(RuleParseError):
            parse_syn_rule("(motor|engine) oils? -> motor oil")

    def test_marker_outside_parens(self):
        with pytest.raises(RuleParseError):
            parse_syn_rule(r"\syn oils? -> motor oil")

    def test_requires_arrow(self):
        with pytest.raises(RuleParseError):
            parse_syn_rule(r"(a | \syn) b")

    def test_expanded_pattern(self):
        spec = parse_syn_rule(r"(motor | engine | \syn) oils? -> motor oil")
        pattern = spec.expanded_pattern(("truck", "motor"))
        assert pattern == "(motor|engine|truck) oils?"


class TestGeneralizedRegexes:
    def test_lengths(self):
        spec = parse_syn_rule(r"(motor | \syn) oils? -> motor oil")
        patterns = generalized_regexes(spec, max_words=3)
        assert len(patterns) == 3
        assert patterns[0].search("castrol truck oil 5 quart").group("syn") == "truck"
        match = patterns[1].search("full synthetic motor oil")
        assert match.group("syn") == "synthetic motor"

    def test_golden_regex_captures(self):
        spec = parse_syn_rule(r"(motor | engine | \syn) oils? -> motor oil")
        match = golden_regex(spec).search("castrol engine oil")
        assert match.group("syn") == "engine"


class TestContextExtraction:
    def test_windows(self):
        spec = parse_syn_rule(r"(motor | \syn) oils? -> motor oil")
        matches = extract_matches(
            ["brand premium truck oil five quart deal"],
            generalized_regexes(spec, max_words=1),
            context_size=2,
        )
        truck = [m for m in matches if m.candidate == "truck"]
        assert truck
        assert truck[0].prefix == ("brand", "premium")
        assert truck[0].suffix == ("oil", "five")

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError):
            ContextModel([])

    def test_idf_downweights_ubiquitous_tokens(self):
        matches = [
            ContextMatch("a", ("common", "rare1"), ()),
            ContextMatch("b", ("common", "rare2"), ()),
        ]
        model = ContextModel(matches)
        vector = model.prefix_vector(matches[0])
        assert vector["common"] == 0.0  # in every match -> idf 0
        assert vector["rare1"] > 0


class TestRocchio:
    def test_accepted_pulls_rejected_pushes(self):
        feedback = RocchioFeedback(
            SparseVector({"x": 1.0}), SparseVector({"x": 1.0}),
            alpha=1.0, beta=1.0, gamma=1.0,
        )
        accepted = [(SparseVector({"y": 1.0}), SparseVector())]
        rejected = [(SparseVector({"x": 0.5}), SparseVector())]
        feedback.update(accepted, rejected)
        assert feedback.prefix["y"] == 1.0
        assert feedback.prefix["x"] == 0.5  # 1.0 - 0.5

    def test_negative_components_clipped(self):
        feedback = RocchioFeedback(SparseVector({"x": 0.2}), SparseVector())
        feedback.update([], [(SparseVector({"x": 5.0}), SparseVector())])
        assert feedback.prefix["x"] == 0.0


class TestSynonymTool:
    @pytest.fixture(scope="class")
    def corpus(self):
        from repro.catalog import CatalogGenerator, build_seed_taxonomy
        gen = CatalogGenerator(build_seed_taxonomy(), seed=55)
        return [item.title for item in gen.generate_items(5000)]

    def test_golden_excluded_from_candidates(self, corpus):
        tool = SynonymTool(r"(motor | engine | \syn) oils? -> motor oil", corpus)
        assert "motor" not in tool.remaining
        assert "engine" not in tool.remaining

    def test_true_synonyms_rank_above_noise(self, corpus):
        tool = SynonymTool(r"(motor | engine | \syn) oils? -> motor oil", corpus)
        ranking = tool.current_ranking()
        vehicle_words = {"truck", "car", "suv", "van", "motorcycle", "atv",
                         "boat", "auto", "automotive", "vehicle", "scooter"}
        top20 = {c.phrase for c in ranking[:20]}
        assert len(top20 & vehicle_words) >= 5

    def test_feedback_shrinks_remaining(self, corpus):
        tool = SynonymTool(r"(motor | engine | \syn) oils? -> motor oil", corpus)
        page = tool.next_page(5)
        tool.feedback([page[0].phrase], [c.phrase for c in page[1:]])
        assert page[0].phrase in tool.accepted
        assert len(tool.remaining) == tool.n_candidates - 5

    def test_feedback_rejects_unknown_phrase(self, corpus):
        tool = SynonymTool(r"(motor | engine | \syn) oils? -> motor oil", corpus)
        with pytest.raises(KeyError):
            tool.feedback(["never a candidate"], [])

    def test_expanded_rule_contains_accepted(self, corpus):
        tool = SynonymTool(r"(motor | engine | \syn) oils? -> motor oil", corpus)
        page = tool.next_page(3)
        tool.feedback([page[0].phrase], [])
        assert page[0].phrase in tool.expanded_rule_pattern()

    def test_no_matches_rejected(self):
        with pytest.raises(ValueError):
            SynonymTool(r"(qqq | \syn) zzz -> nothing", ["unrelated title"])


class TestDiscoverySession:
    def test_finds_vehicle_family(self, taxonomy):
        from repro.catalog import CatalogGenerator
        gen = CatalogGenerator(taxonomy, seed=66)
        corpus = [item.title for item in gen.generate_items(6000)]
        tool = SynonymTool(r"(motor | engine | \syn) oils? -> motor oil", corpus)
        analyst = SimulatedAnalyst(taxonomy, seed=1, synonym_judgement_accuracy=1.0)
        report = DiscoverySession(tool, analyst, slot="vehicle", patience=2).run()
        family = set(taxonomy.get("motor oil").slot("vehicle"))
        found = set(report.synonyms_found)
        assert len(found & family) >= 6
        assert found <= family  # perfect analyst accepts only true members
        assert report.first_find_iteration == 1

    def test_enough_stops_early(self, taxonomy):
        from repro.catalog import CatalogGenerator
        gen = CatalogGenerator(taxonomy, seed=66)
        corpus = [item.title for item in gen.generate_items(4000)]
        tool = SynonymTool(r"(motor | engine | \syn) oils? -> motor oil", corpus)
        analyst = SimulatedAnalyst(taxonomy, seed=1, synonym_judgement_accuracy=1.0)
        report = DiscoverySession(tool, analyst, slot="vehicle", enough=3).run()
        assert len(report.synonyms_found) >= 3
        assert report.iterations <= 3

    def test_review_minutes_scales(self):
        from repro.synonym.session import DiscoveryReport
        report = DiscoveryReport(rule_source="r", target_type="t",
                                 candidates_reviewed=40)
        assert report.review_minutes(seconds_per_candidate=6.0) == 4.0
