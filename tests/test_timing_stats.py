"""Timing/stats bugfix sweep: merge semantics and retry accounting.

The audit this PR ships found two sharp edges in the stats layer:

1. ``ExecutionStats.merge`` silently mixed additive CPU totals with the
   non-additive driver wall clock — callers had to know to fix up
   ``wall_time`` by hand. ``merge`` now takes an explicit ``wall=`` mode
   (keep / sum / max) and documents which fields are additive.
2. The partitioned executor's retry path had an undocumented (and
   previously untested) invariant: a retried shard's *failed* attempts run
   real work (a corrupt-output attempt executes the full shard before the
   driver rejects it), and that work must never leak into the merged
   ``prepare_time`` / ``match_time``. These tests pin the invariant with a
   deterministic TickClock: every timing assertion is exact, not a range.
"""

import pytest

from repro.catalog.types import ProductItem
from repro.core import AttributeRule, SequenceRule, parse_rules
from repro.execution import NaiveExecutor, PartitionedExecutor
from repro.execution.executor import ExecutionStats
from repro.execution.resilience import RetryPolicy
from repro.testing import FaultPlan, VirtualSleeper
from repro.utils.clock import TickClock


def item(title, **attrs):
    return ProductItem(
        item_id=f"i-{abs(hash(title)) % 10**8}", title=title, attributes=attrs
    )


RULES = parse_rules("""
    rings? -> rings
    (motor|engine) oils? -> motor oil
    denim.*jeans? -> jeans
""") + [
    SequenceRule(("area", "rug"), "area rugs"),
    AttributeRule("isbn", "books"),
]

ITEMS = [
    item("diamond ring gold"),
    item("castrol motor oil 5 quart"),
    item("relaxed denim jeans"),
    item("shaw area rug 5x7"),
    item("mystery novel", isbn="978"),
    item("unrelated gadget"),
    item("two gold rings boxed"),
    item("engine oil filter"),
    item("blue denim jeans 32x30"),
]

BASELINE, _ = NaiveExecutor(RULES).run(ITEMS)

N_WORKERS = 3
STEP = 0.25


def run_partitioned(plan=None, clock=None):
    executor = PartitionedExecutor(
        RULES,
        n_workers=N_WORKERS,
        fault_plan=plan,
        retry_policy=RetryPolicy(
            max_attempts=3, base_delay=0.01, multiplier=2.0,
            max_delay=1.0, jitter=0.5,
        ),
        sleep=VirtualSleeper(),
        clock=clock,
    )
    return executor.run_detailed(ITEMS)


class TestMergeSemantics:
    def make(self, **overrides):
        stats = ExecutionStats(
            items=2, rule_evaluations=10, matches=3, wall_time=5.0,
            prepare_time=1.0, match_time=2.0, retries=1, skipped_items=1,
            skipped_item_ids=["x"], cache_hits=4, cache_misses=2,
            invalidations=1, delta_rules=1, delta_items=2,
        )
        for key, value in overrides.items():
            setattr(stats, key, value)
        return stats

    def test_additive_fields_sum(self):
        a, b = self.make(), self.make()
        a.merge(b)
        assert a.items == 4
        assert a.rule_evaluations == 20
        assert a.matches == 6
        assert a.prepare_time == 2.0
        assert a.match_time == 4.0
        assert a.retries == 2
        assert a.skipped_items == 2
        assert a.skipped_item_ids == ["x", "x"]
        assert a.cache_hits == 8 and a.cache_misses == 4
        assert a.invalidations == 2
        assert a.delta_rules == 2 and a.delta_items == 4

    def test_wall_keep_is_default(self):
        a, b = self.make(wall_time=5.0), self.make(wall_time=7.0)
        a.merge(b)
        assert a.wall_time == 5.0  # untouched: the caller owns elapsed time

    def test_wall_sum_composes_serially(self):
        a, b = self.make(wall_time=5.0), self.make(wall_time=7.0)
        a.merge(b, wall="sum")
        assert a.wall_time == 12.0

    def test_wall_max_composes_in_parallel(self):
        a, b = self.make(wall_time=5.0), self.make(wall_time=7.0)
        a.merge(b, wall="max")
        assert a.wall_time == 7.0
        b.merge(a, wall="max")
        assert b.wall_time == 7.0

    def test_invalid_wall_mode_rejected(self):
        with pytest.raises(ValueError, match="wall must be one of"):
            self.make().merge(self.make(), wall="average")


class TestPartitionedTimingInvariant:
    """Retried shards must not double-count prepare/match CPU totals.

    Every in-process shard run reads the TickClock exactly three times
    (start, after prepare, end), so each *accepted* attempt contributes
    exactly ``prepare=STEP, match=STEP``; the driver's own shard-prepare
    pass reads it twice (``driver_prepare_time == STEP``). The totals
    below are therefore exact equalities — any leak from a rejected
    attempt would show up as an extra STEP.
    """

    def expected_prepare(self):
        return (N_WORKERS + 1) * STEP  # one per accepted shard + driver pass

    def expected_match(self):
        return N_WORKERS * STEP

    def test_healthy_run_timing(self):
        result = run_partitioned(clock=TickClock(step=STEP))
        assert result.fired == BASELINE
        assert result.driver_prepare_time == pytest.approx(STEP)
        assert result.stats.prepare_time == pytest.approx(self.expected_prepare())
        assert result.stats.match_time == pytest.approx(self.expected_match())
        for report in result.reports:
            assert report.prepare_time == pytest.approx(STEP)
            assert report.match_time == pytest.approx(STEP)
            assert report.wall_time == pytest.approx(2 * STEP)

    def test_corrupt_retry_does_not_double_count(self):
        # A corrupt fault RUNS the real shard (full prepare + match) and
        # then mangles the output; the driver rejects it and retries on
        # the next worker. That rejected attempt's CPU time must not
        # appear anywhere in the merged totals.
        plan = FaultPlan().corrupt(shard=1, attempt=0, detail="alien-item")
        result = run_partitioned(plan=plan, clock=TickClock(step=STEP))
        assert result.fired == BASELINE  # retry recovered the shard
        assert result.total_retries == 1
        assert result.stats.retries == 1
        assert result.stats.prepare_time == pytest.approx(self.expected_prepare())
        assert result.stats.match_time == pytest.approx(self.expected_match())
        retried = [r for r in result.reports if r.retries]
        assert len(retried) == 1 and retried[0].shard_id == 1
        # The retried shard's report shows the accepted attempt's timing
        # only — identical to its never-failed peers.
        assert retried[0].prepare_time == pytest.approx(STEP)
        assert retried[0].match_time == pytest.approx(STEP)

    def test_crash_retry_timing_matches_healthy_run(self):
        # Crashes never execute the shard at all; with VirtualSleeper the
        # backoff is virtual too, so the CPU totals match a healthy run.
        plan = FaultPlan().crash(shard=0, attempt=0)
        result = run_partitioned(plan=plan, clock=TickClock(step=STEP))
        assert result.fired == BASELINE
        assert result.stats.prepare_time == pytest.approx(self.expected_prepare())
        assert result.stats.match_time == pytest.approx(self.expected_match())

    def test_skipped_shard_contributes_no_time(self):
        # Shard 2 fails all attempts: its work is dropped, so the merged
        # prepare total is one shard short (plus the driver pass).
        plan = FaultPlan().crash(shard=2)
        result = run_partitioned(plan=plan, clock=TickClock(step=STEP))
        assert result.degraded and result.skipped_shards == [2]
        assert result.stats.prepare_time == pytest.approx(N_WORKERS * STEP)
        assert result.stats.match_time == pytest.approx((N_WORKERS - 1) * STEP)
        skipped = [r for r in result.reports if not r.ok]
        assert skipped[0].prepare_time == 0.0
        assert skipped[0].match_time == 0.0

    def test_driver_owns_wall_time(self):
        # wall_time is the driver's elapsed clock, not the sum of shard
        # walls: with the TickClock it is strictly greater than any one
        # shard's wall and not equal to their sum plus driver prepare.
        result = run_partitioned(clock=TickClock(step=STEP))
        shard_wall_sum = sum(r.wall_time for r in result.reports)
        assert result.stats.wall_time > max(r.wall_time for r in result.reports)
        assert result.stats.wall_time != pytest.approx(
            shard_wall_sum + result.driver_prepare_time
        )
