"""Tests for repro.utils stats, sampling, vectors, and clock."""

import random

import pytest

from repro.utils.clock import SimClock
from repro.utils.sampling import (
    reservoir_sample,
    split_train_test,
    stratified_sample,
    weighted_choice,
)
from repro.utils.stats import (
    f1_score,
    harmonic_mean,
    mean,
    sample_size_for_margin,
    wilson_interval,
)
from repro.utils.vectors import SparseVector, cosine_similarity, mean_vector


class TestWilson:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(92, 100)
        assert low < 0.92 < high

    def test_extremes(self):
        low, high = wilson_interval(0, 10)
        assert low == 0.0 and high < 0.5
        low, high = wilson_interval(10, 10)
        assert low > 0.6 and high == 1.0

    def test_narrower_with_more_trials(self):
        low1, high1 = wilson_interval(50, 100)
        low2, high2 = wilson_interval(500, 1000)
        assert (high2 - low2) < (high1 - low1)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_harmonic_mean_zero(self):
        assert harmonic_mean(0.0, 0.9) == 0.0

    def test_f1(self):
        assert f1_score(1.0, 1.0) == 1.0
        assert abs(f1_score(0.5, 1.0) - 2 / 3) < 1e-9

    def test_sample_size(self):
        assert sample_size_for_margin(0.05) == 385
        with pytest.raises(ValueError):
            sample_size_for_margin(0.0)


class TestSampling:
    def test_reservoir_size(self):
        rng = random.Random(0)
        sample = reservoir_sample(range(1000), 10, rng)
        assert len(sample) == 10
        assert all(0 <= value < 1000 for value in sample)

    def test_reservoir_small_stream(self):
        rng = random.Random(0)
        assert sorted(reservoir_sample(range(3), 10, rng)) == [0, 1, 2]

    def test_reservoir_deterministic(self):
        a = reservoir_sample(range(100), 5, random.Random(7))
        b = reservoir_sample(range(100), 5, random.Random(7))
        assert a == b

    def test_reservoir_roughly_uniform(self):
        counts = [0] * 10
        for seed in range(400):
            for value in reservoir_sample(range(10), 3, random.Random(seed)):
                counts[value] += 1
        assert max(counts) < 2.0 * min(counts)

    def test_stratified(self):
        items = [("a", i) for i in range(10)] + [("b", i) for i in range(2)]
        sample = stratified_sample(items, key=lambda x: x[0], per_stratum=3,
                                   rng=random.Random(0))
        a_count = sum(1 for s in sample if s[0] == "a")
        b_count = sum(1 for s in sample if s[0] == "b")
        assert a_count == 3 and b_count == 2

    def test_weighted_choice_respects_zero(self):
        rng = random.Random(0)
        for _ in range(50):
            assert weighted_choice({"x": 1.0, "y": 0.0}, rng) == "x"

    def test_split_train_test(self):
        train, test = split_train_test(list(range(100)), 0.2, random.Random(0))
        assert len(train) == 80 and len(test) == 20
        assert sorted(train + test) == list(range(100))


class TestSparseVector:
    def test_zero_values_dropped(self):
        assert len(SparseVector({"a": 0.0, "b": 1.0})) == 1

    def test_normalized_unit_length(self):
        vec = SparseVector({"a": 3.0, "b": 4.0}).normalized()
        assert abs(vec.norm() - 1.0) < 1e-9

    def test_zero_vector_normalizes_to_zero(self):
        assert SparseVector().normalized().norm() == 0.0

    def test_cosine(self):
        a = SparseVector({"x": 1.0})
        b = SparseVector({"x": 2.0})
        c = SparseVector({"y": 1.0})
        assert abs(cosine_similarity(a, b) - 1.0) < 1e-9
        assert cosine_similarity(a, c) == 0.0

    def test_mean_vector(self):
        m = mean_vector([SparseVector({"a": 2.0}), SparseVector({"b": 4.0})])
        assert m["a"] == 1.0 and m["b"] == 2.0

    def test_mean_empty(self):
        assert len(mean_vector([])) == 0

    def test_add_subtract(self):
        a = SparseVector({"x": 1.0, "y": 2.0})
        b = SparseVector({"y": 2.0})
        assert a.subtract(b)["y"] == 0.0
        assert a.add(b)["y"] == 4.0


class TestSimClock:
    def test_advances(self):
        clock = SimClock()
        clock.advance(hours=12)
        assert clock.now == 0.5
        assert clock.day == 0
        clock.advance(days=1)
        assert clock.day == 1

    def test_rejects_backwards(self):
        with pytest.raises(ValueError):
            SimClock().advance(days=-1)

    def test_stamps(self):
        clock = SimClock()
        clock.advance(days=2)
        clock.stamp("deploy")
        assert clock.history == [(2.0, "deploy")]
