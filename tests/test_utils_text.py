"""Tests for repro.utils.text."""

import pytest

from repro.utils.text import (
    STOPWORDS,
    char_ngrams,
    contains_word_sequence,
    join_phrases,
    ngrams,
    normalize_text,
    tokenize,
    window,
)


class TestNormalizeText:
    def test_lowercases(self):
        assert normalize_text("Wedding Band") == "wedding band"

    def test_strips_punctuation_but_keeps_hyphens_and_dots(self):
        assert normalize_text("13-293snb, 38x30!") == "13-293snb 38x30"

    def test_collapses_whitespace(self):
        assert normalize_text("a   b\t c") == "a b c"

    def test_empty(self):
        assert normalize_text("") == ""


class TestTokenize:
    def test_basic(self):
        assert tokenize("Diamond Accent Ring") == ["diamond", "accent", "ring"]

    def test_drops_stopwords_by_default(self):
        assert "in" not in tokenize("ring in 10kt white gold")

    def test_keeps_stopwords_when_asked(self):
        assert "in" in tokenize("ring in gold", drop_stopwords=False)

    def test_strips_edge_punctuation_from_tokens(self):
        tokens = tokenize("38in. x 30in. indigo")
        assert "38in" in tokens and "30in" in tokens

    def test_preserves_intra_word_hyphen(self):
        assert "pick-up" in tokenize("pick-up truck")

    def test_empty_title(self):
        assert tokenize("") == []


class TestNgrams:
    def test_bigrams(self):
        assert list(ngrams(["a", "b", "c"], 2)) == [("a", "b"), ("b", "c")]

    def test_n_longer_than_input(self):
        assert list(ngrams(["a"], 3)) == []

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            list(ngrams(["a"], 0))


class TestCharNgrams:
    def test_basic(self):
        assert char_ngrams("abcd", 3) == ["abc", "bcd"]

    def test_spaces_become_separators(self):
        grams = char_ngrams("ab cd", 3)
        assert "b_c" in grams

    def test_short_input(self):
        assert char_ngrams("ab", 3) == ["ab"]

    def test_empty(self):
        assert char_ngrams("", 3) == []

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            char_ngrams("abc", 0)


class TestContainsWordSequence:
    def test_in_order_non_contiguous(self):
        assert contains_word_sequence(["denim", "blue", "jeans"], ["denim", "jeans"])

    def test_order_matters(self):
        assert not contains_word_sequence(["jeans", "denim"], ["denim", "jeans"])

    def test_exact_token_match_only(self):
        assert not contains_word_sequence(["jeans"], ["jean"])

    def test_repeated_tokens(self):
        assert contains_word_sequence(["a", "b", "a"], ["a", "a"])
        assert not contains_word_sequence(["a", "b"], ["a", "a"])

    def test_empty_sequence(self):
        assert contains_word_sequence(["x"], [])


class TestWindow:
    def test_prefix_suffix(self):
        tokens = list("abcdefg")
        prefix, suffix = window(tokens, 3, 4, 2)
        assert prefix == ["b", "c"]
        assert suffix == ["e", "f"]

    def test_clipped_at_edges(self):
        prefix, suffix = window(["a", "b"], 0, 1, 5)
        assert prefix == []
        assert suffix == ["b"]


def test_join_phrases():
    assert join_phrases(["motor", "engine"]) == "motor|engine"


def test_stopwords_are_lowercase():
    assert all(word == word.lower() for word in STOPWORDS)
