"""Tests for the rule workbench and the IE dictionary builder."""

import pytest

from repro.analyst import SimulatedAnalyst
from repro.catalog import CatalogGenerator, build_seed_taxonomy
from repro.core import BlacklistRule, RuleSet, WhitelistRule, parse_rules
from repro.ie import DictionaryBuilder
from repro.workbench import RuleWorkbench


@pytest.fixture()
def workbench(taxonomy, generator):
    # Over-sample keychains so the "key ring" trap appears repeatedly in
    # the development set (it must, for blacklist suggestions to trigger).
    generator.set_type_weight("keychains", 6.0)
    development = generator.generate_items(2500)
    deployed = RuleSet(parse_rules("""
        keychains? -> keychains
        key rings? -> keychains
    """), name="deployed")
    analyst = SimulatedAnalyst(taxonomy, seed=5, verification_accuracy=1.0)
    return RuleWorkbench(development, deployed=deployed, analyst=analyst, seed=5)


class TestRuleWorkbench:
    def test_preview_counts_and_samples(self, workbench):
        rule = WhitelistRule("(motor|engine) oils?", "motor oil")
        preview = workbench.preview(rule)
        assert preview.matched > 0
        assert 0 < len(preview.sample_titles) <= 5
        assert preview.candidate_fraction < 0.3

    def test_preview_precision_estimate(self, workbench):
        clean = WhitelistRule("area rugs?", "area rugs")
        preview = workbench.preview(clean)
        assert preview.estimated_precision == 1.0
        dirty = WhitelistRule("rings?", "rings")  # hits key rings too
        preview = workbench.preview(dirty, verify_sample=200)
        assert preview.estimated_precision is not None
        assert preview.estimated_precision < 1.0

    def test_conflicts_with_deployed(self, workbench):
        # "rings?" hits key-ring titles that deployed keychain rules claim.
        rule = WhitelistRule("rings?", "rings")
        conflicts = workbench.conflicts(rule)
        assert conflicts, "deployed key-ring rules should conflict"

    def test_no_conflicts_for_disjoint_rule(self, workbench):
        rule = WhitelistRule("area rugs?", "area rugs")
        assert workbench.conflicts(rule) == []

    def test_blacklist_suggestions_hit_the_trap(self, workbench):
        rule = WhitelistRule("rings?", "rings")
        suggestions = workbench.suggest_blacklists(rule)
        assert any("key ring" in s for s in suggestions)
        assert all(s.endswith("-> NOT rings") for s in suggestions)

    def test_suggestions_empty_for_clean_rule(self, workbench):
        rule = WhitelistRule("area rugs?", "area rugs")
        assert workbench.suggest_blacklists(rule) == []

    def test_render(self, workbench):
        rule = WhitelistRule("rings?", "rings")
        text = workbench.preview(rule, verify_sample=100).render()
        assert "matches" in text and "precision" in text

    def test_blacklist_rules_skip_precision(self, workbench):
        rule = BlacklistRule("key rings?", "rings")
        preview = workbench.preview(rule)
        assert preview.estimated_precision is None
        assert preview.conflicting_rules == []

    def test_empty_dev_set_rejected(self):
        with pytest.raises(ValueError):
            RuleWorkbench([])


class TestDictionaryBuilder:
    CORPUS = [
        "brand: castrol premium motor oil",
        "brand: castrol synthetic blend",
        "brand: pennzoil conventional oil",
        "brand: pennzoil 5 quart",
        "by valvoline for trucks",
        "by valvoline high mileage",
        "castrol bottle on shelf",          # non-marker occurrence
        "premium quality motor oil deal",   # noise
        "premium quality engine flush",
    ]

    def test_candidates_ranked_by_concentration(self):
        builder = DictionaryBuilder(self.CORPUS, seeds=["mobil"])
        phrases = [c.phrase for c in builder.candidates(top=5)]
        assert "pennzoil" in phrases
        assert "valvoline" in phrases
        # "premium" occurs after "brand:" never and often elsewhere.
        assert "premium" not in phrases[:3]

    def test_seeds_excluded(self):
        builder = DictionaryBuilder(self.CORPUS, seeds=["castrol"])
        assert all(c.phrase != "castrol" for c in builder.candidates())

    def test_concentration_math(self):
        builder = DictionaryBuilder(self.CORPUS, seeds=["mobil"])
        by_phrase = {c.phrase: c for c in builder.candidates(top=50)}
        castrol = by_phrase["castrol"]
        assert castrol.marker_occurrences == 2
        assert castrol.total_occurrences == 3
        assert castrol.concentration == pytest.approx(2 / 3)

    def test_needs_seeds(self):
        with pytest.raises(ValueError):
            DictionaryBuilder(self.CORPUS, seeds=[])

    def test_build_with_analyst_on_catalog(self, taxonomy):
        generator = CatalogGenerator(taxonomy, seed=61)
        corpus = [item.description for item in generator.generate_items(1500)]
        brands = set()
        for product_type in taxonomy:
            brands.update(product_type.brands)
        seeds = sorted(brands)[:3]
        builder = DictionaryBuilder(corpus, seeds=seeds, markers=("brand",))
        analyst = SimulatedAnalyst(taxonomy, seed=62,
                                   synonym_judgement_accuracy=1.0)
        confirmed = builder.build(analyst, attribute="brand", pages=6)
        found = confirmed - set(seeds)
        assert len(found & brands) >= 5
        assert found <= brands  # perfect analyst accepts only real brands
